//! The 3-Hamming index transformations (paper Appendices C and D).
//!
//! The 3D abstraction: a move is a sorted triple `(z, x, y)` with
//! `z < x < y < n`. Triples are grouped into *plans* by their smallest
//! index `z`; plan `z` is a 2-Hamming layout over the remaining
//! `n' = n − z − 1` positions. Enumeration is lexicographic, consistent
//! with [`crate::mapping2d`].
//!
//! * Plan `z` holds `C(n−1−z, 2)` triples; plans `≥ z` hold `C(n−z, 3)`.
//! * **ℕ→ℕ³** (App. C): given `f`, let `Y = m − f` be the number of
//!   elements from `f` onward. The plan is found by *minimizing* `k` such
//!   that `C(k, 3) ≥ Y`; then `z = n − k` and the within-plan remainder is
//!   unranked with the 2D mapping. The paper solves the cubic with
//!   Newton–Raphson (its Algorithm 1, see [`crate::newton`]); we keep that
//!   variant ([`unrank3_newton`]) alongside an exact integer one
//!   ([`unrank3`]).
//! * **ℕ³→ℕ** (App. D): rank by plan prefix + 2D rank. The paper also
//!   prints a "geometric construction" (`f1 − n1 − n2 − n3 − n4`); the
//!   literal formulas as typeset do **not** invert Appendix C for all
//!   inputs (see [`paper_literal`] and DESIGN.md §6) — the derivation-
//!   consistent form below is the one the rest of the crate uses.

use crate::mapping2d::{rank2, unrank2};
use crate::newton::min_k_cubic;

/// Neighborhood size `m = n(n−1)(n−2)/6` of the 3-Hamming neighborhood.
#[inline]
pub fn size3(n: u64) -> u64 {
    // u128 intermediate: n up to ~2^21 keeps the product within u64, but
    // callers may probe larger n when sizing multi-GPU partitions.
    (n as u128 * (n - 1) as u128 * (n - 2) as u128 / 6) as u64
}

/// Number of triples in plans `0..z`, i.e. `C(n,3) − C(n−z,3)`.
#[inline]
fn before_plan(n: u64, z: u64) -> u64 {
    size3(n) - size3(n - z)
}

/// ℕ³→ℕ: rank of the sorted triple `(z, x, y)`, `z < x < y < n`.
#[inline]
pub fn rank3(n: u64, z: u64, x: u64, y: u64) -> u64 {
    debug_assert!(z < x && x < y && y < n, "rank3 needs z<x<y<n, got ({z},{x},{y}) n={n}");
    let np = n - z - 1;
    before_plan(n, z) + rank2(np, x - z - 1, y - z - 1)
}

/// ℕ→ℕ³, exact integer version: inverse of [`rank3`].
/// Requires `index < size3(n)`; returns `(z, x, y)` with `z < x < y`.
#[inline]
pub fn unrank3(n: u64, index: u64) -> (u64, u64, u64) {
    let m = size3(n);
    debug_assert!(index < m, "unrank3 index {index} out of range (m={m})");
    // Y = elements from `index` onward (inclusive). Smallest k with
    // C(k,3) >= Y locates the plan: z = n - k.
    let y_count = m - index;
    let k = min_k_exact(y_count);
    let z = n - k;
    let f2 = index - before_plan(n, z);
    let np = n - z - 1;
    let (i, j) = unrank2(np, f2);
    (z, i + z + 1, j + z + 1)
}

/// ℕ→ℕ³ via the paper's Newton–Raphson plan search (Fig. 10's
/// `newtonGPU`). Functionally identical to [`unrank3`] because the float
/// root is re-anchored with integer comparisons, exactly as a robust GPU
/// kernel must do; the pure-float variant without fix-up is what the
/// precision ablation probes separately.
#[inline]
pub fn unrank3_newton(n: u64, index: u64) -> (u64, u64, u64) {
    let m = size3(n);
    debug_assert!(index < m);
    let y_count = m - index;
    let k = min_k_cubic(y_count); // Newton + integer fix-up
    let z = n - k;
    let f2 = index - before_plan(n, z);
    let np = n - z - 1;
    let (i, j) = unrank2(np, f2);
    (z, i + z + 1, j + z + 1)
}

/// Exact plan search: smallest `k` with `C(k,3) ≥ y`, by integer bisection
/// seeded from the cube root. No floating point anywhere.
#[inline]
fn min_k_exact(y: u64) -> u64 {
    debug_assert!(y >= 1);
    let c3 = |k: u64| k as u128 * (k - 1) as u128 * (k - 2) as u128 / 6;
    // C(k,3) ≈ k³/6 ⇒ k ≈ cbrt(6y). Seed and fix up; the error of the
    // float seed is at most one or two for y < 2^63.
    let mut k = crate::newton::icbrt(y.saturating_mul(6)).max(3);
    while c3(k) < y as u128 {
        k += 1;
    }
    while k > 3 && c3(k - 1) >= y as u128 {
        k -= 1;
    }
    k
}

/// The literal Appendix D formulas, preserved for the record.
///
/// The paper computes the rank as `f1 − n1 − n2 − n3 − n4` from a
/// geometric construction over a `(n−2)×(n−2)` matrix per plan. As
/// typeset, the `n3`/`n4` terms do not invert Appendix C's enumeration for
/// all triples (e.g. `n=5`, triple `(1,2,3)`: literal result 4, correct
/// rank 6). The test `appendix_d_literal_disagrees` pins this down; see
/// DESIGN.md §6.
pub mod paper_literal {
    use super::size3;

    /// Appendix D, eqs. (10)–(11), transcribed verbatim (wrapping
    /// arithmetic where the text underflows).
    pub fn rank3_literal(n: u64, z: u64, x: u64, y: u64) -> i128 {
        let n = n as i128;
        let (z, x, y) = (z as i128, x as i128, y as i128);
        let k = n - 1 - z;
        let m = size3(n as u64) as i128;
        let nb_before = m - (k + 1) * k * (k - 1) / 6;
        let f1 = z * (n - 2) * (n - 2) + (x - 1) * (n - 2) + (y - 2);
        let n1 = z * (n - 2) * (n - 2) - nb_before;
        let n2 = z * (n - 2);
        let n3 = (y - z) * (n - k - 1);
        let n4 = (y - z) * (y - z - 1) / 2;
        f1 - n1 - n2 - n3 - n4
    }

    /// How many triples of an `n`-dimensional 3-Hamming neighborhood the
    /// literal formula ranks correctly (used by tests & DESIGN.md §6).
    pub fn literal_agreement_count(n: u64) -> (u64, u64) {
        let mut agree = 0;
        let mut total = 0;
        for z in 0..n {
            for x in (z + 1)..n {
                for y in (x + 1)..n {
                    let correct = super::rank3(n, z, x, y) as i128;
                    if rank3_literal(n, z, x, y) == correct {
                        agree += 1;
                    }
                    total += 1;
                }
            }
        }
        (agree, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping2d::size2;

    /// Reference enumeration: lexicographic sorted triples.
    fn reference_triples(n: u64) -> Vec<(u64, u64, u64)> {
        let mut v = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    v.push((a, b, c));
                }
            }
        }
        v
    }

    #[test]
    fn sizes() {
        assert_eq!(size3(3), 1);
        assert_eq!(size3(5), 10);
        assert_eq!(size3(73), 62_196);
        assert_eq!(size3(117), 260_130);
    }

    #[test]
    fn rank_matches_reference_enumeration() {
        for n in [3u64, 4, 5, 6, 9, 17, 30] {
            for (f, &(a, b, c)) in reference_triples(n).iter().enumerate() {
                assert_eq!(rank3(n, a, b, c), f as u64, "n={n} triple=({a},{b},{c})");
            }
        }
    }

    #[test]
    fn unrank_is_inverse_small_n() {
        for n in [3u64, 5, 8, 20, 73] {
            for f in 0..size3(n) {
                let (a, b, c) = unrank3(n, f);
                assert!(a < b && b < c && c < n, "n={n} f={f} -> ({a},{b},{c})");
                assert_eq!(rank3(n, a, b, c), f, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn newton_variant_matches_exact_on_full_range() {
        for n in [5u64, 73, 117] {
            for f in 0..size3(n) {
                assert_eq!(unrank3_newton(n, f), unrank3(n, f), "n={n} f={f}");
            }
        }
    }

    #[test]
    fn unrank_extremes_and_large_n() {
        let n = 1517u64;
        let m = size3(n);
        assert_eq!(unrank3(n, 0), (0, 1, 2));
        assert_eq!(unrank3(n, m - 1), (n - 3, n - 2, n - 1));
        for f in [1, 2, n, m / 3, m / 2, m - n, m - 2] {
            let (a, b, c) = unrank3(n, f);
            assert_eq!(rank3(n, a, b, c), f, "n={n} f={f}");
        }
        // Far beyond any practical instance: C(2^20, 3) ≈ 1.9e17.
        let n = 1u64 << 20;
        let m = size3(n);
        for f in [0, 1, m / 2, m - 2, m - 1] {
            let (a, b, c) = unrank3(n, f);
            assert_eq!(rank3(n, a, b, c), f);
        }
    }

    #[test]
    fn plan_boundaries_are_exact() {
        // First and last element of every plan for a moderate n.
        let n = 57u64;
        for z in 0..(n - 2) {
            let first = before_plan(n, z);
            let plan_len = size2(n - z - 1);
            let (a, b, c) = unrank3(n, first);
            assert_eq!((a, b, c), (z, z + 1, z + 2), "first of plan {z}");
            let (a, b, c) = unrank3(n, first + plan_len - 1);
            assert_eq!((a, b, c), (z, n - 2, n - 1), "last of plan {z}");
        }
    }

    #[test]
    fn appendix_d_literal_disagrees() {
        // The worked counter-example from DESIGN.md §6.
        let lit = paper_literal::rank3_literal(5, 1, 2, 3);
        let correct = rank3(5, 1, 2, 3);
        assert_eq!(correct, 6);
        assert_ne!(lit, correct as i128, "literal App. D formula unexpectedly correct");
        // Measured: the literal formula as typeset agrees on *no* triple of
        // a small neighborhood under any of the obvious coordinate
        // conventions — consistent with one mis-typeset subtraction term
        // (each candidate reading is off by a small index-dependent amount).
        let (agree, total) = paper_literal::literal_agreement_count(7);
        assert!(agree < total, "agreement {agree}/{total}");
        let (agree5, total5) = paper_literal::literal_agreement_count(5);
        assert!(agree5 < total5);
    }
}
