//! Property-based tests of the index mappings: the bijection laws that
//! make the GPU thread-id ↔ move correspondence sound (paper §III).

use lnls_neighborhood::combinadic::{rank_combinadic, unrank_combinadic};
use lnls_neighborhood::mapping2d::{rank2, size2, unrank2};
use lnls_neighborhood::mapping3d::{rank3, size3, unrank3, unrank3_newton};
use lnls_neighborhood::{
    binomial, lex_advance, FlipMove, KHamming, Neighborhood, OneHamming, ThreeHamming, TwoHamming,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// unrank2 ∘ rank2 = id over random pairs and sizes.
    #[test]
    fn rank2_unrank2_roundtrip(n in 2u64..5000, seed in any::<u64>()) {
        let i = seed % (n - 1);
        let j = i + 1 + (seed >> 32) % (n - i - 1);
        let f = rank2(n, i, j);
        prop_assert!(f < size2(n));
        prop_assert_eq!(unrank2(n, f), (i, j));
    }

    /// rank2 ∘ unrank2 = id over random flat indices.
    #[test]
    fn unrank2_rank2_roundtrip(n in 2u64..5000, x in any::<u64>()) {
        let f = x % size2(n);
        let (i, j) = unrank2(n, f);
        prop_assert!(i < j && j < n);
        prop_assert_eq!(rank2(n, i, j), f);
    }

    /// The 3D mapping round-trips over random triples.
    #[test]
    fn rank3_unrank3_roundtrip(n in 3u64..2000, seed in any::<u64>()) {
        let a = seed % (n - 2);
        let b = a + 1 + (seed >> 24) % (n - a - 2);
        let c = b + 1 + (seed >> 48) % (n - b - 1);
        let f = rank3(n, a, b, c);
        prop_assert!(f < size3(n));
        prop_assert_eq!(unrank3(n, f), (a, b, c));
    }

    /// …and over random flat indices, with the Newton variant agreeing.
    #[test]
    fn unrank3_rank3_roundtrip(n in 3u64..2000, x in any::<u64>()) {
        let f = x % size3(n);
        let (a, b, c) = unrank3(n, f);
        prop_assert!(a < b && b < c && c < n);
        prop_assert_eq!(rank3(n, a, b, c), f);
        prop_assert_eq!(unrank3_newton(n, f), (a, b, c));
    }

    /// The combinadic generalization round-trips for every k ≤ 4.
    #[test]
    fn combinadic_roundtrip(n in 4u64..1000, k in 1usize..=4, x in any::<u64>()) {
        let f = x % binomial(n, k as u64);
        let mut out = [0u32; 4];
        unrank_combinadic(n, f, &mut out[..k]);
        prop_assert!(out[..k].windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(rank_combinadic(n, &out[..k]), f);
    }

    /// Adjacent indices map to adjacent combinations (order preserved).
    #[test]
    fn unranking_preserves_lexicographic_order(n in 4u64..300, k in 1usize..=4, x in any::<u64>()) {
        let m = binomial(n, k as u64);
        // n = k has a single combination: no successor to compare with.
        prop_assume!(m >= 2);
        let f = x % (m - 1);
        let mut a = [0u32; 4];
        let mut b = [0u32; 4];
        unrank_combinadic(n, f, &mut a[..k]);
        unrank_combinadic(n, f + 1, &mut b[..k]);
        prop_assert!(a[..k] < b[..k], "order violated at f={}", f);
        // lex_advance agrees with unranking the successor.
        let mut c = a;
        prop_assert!(lex_advance(&mut c[..k], n as u32));
        prop_assert_eq!(&c[..k], &b[..k]);
    }

    /// The Neighborhood trait objects agree with the raw mappings.
    #[test]
    fn neighborhood_trait_consistency(n in 4usize..500, x in any::<u64>()) {
        let h1 = OneHamming::new(n);
        let h2 = TwoHamming::new(n);
        let h3 = ThreeHamming::new(n);
        let f1 = x % h1.size();
        let f2 = x % h2.size();
        let f3 = x % h3.size();
        prop_assert_eq!(h1.rank(&h1.unrank(f1)), f1);
        prop_assert_eq!(h2.rank(&h2.unrank(f2)), f2);
        prop_assert_eq!(h3.rank(&h3.unrank(f3)), f3);
        // KHamming agrees with the specialized types.
        prop_assert_eq!(KHamming::new(n, 2).unrank(f2), h2.unrank(f2));
        prop_assert_eq!(KHamming::new(n, 3).unrank(f3), h3.unrank(f3));
    }

    /// try_rank rejects exactly the malformed moves.
    #[test]
    fn try_rank_validates(n in 3usize..200, a in any::<u32>(), b in any::<u32>()) {
        let h = TwoHamming::new(n);
        let (a, b) = (a % (n as u32 * 2), b % (n as u32 * 2));
        if a < b {
            let mv = FlipMove::two(a, b);
            let expect_ok = (b as usize) < n;
            prop_assert_eq!(h.try_rank(&mv).is_some(), expect_ok);
        }
        // Wrong arity is always rejected.
        prop_assert!(h.try_rank(&FlipMove::one(0)).is_none());
    }
}

/// Mixed-radius unions: the flat index space is a bijection onto the
/// disjoint union of its parts, in ascending-radius order.
mod union_properties {
    use super::*;
    use lnls_neighborhood::UnionHamming;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn union_roundtrip(n in 5usize..60, x in any::<u64>()) {
            let u = UnionHamming::ladder123(n);
            let idx = x % u.size();
            let mv = u.unrank(idx);
            prop_assert_eq!(u.rank(&mv), idx);
            prop_assert!(mv.k() >= 1 && mv.k() <= 3);
        }

        #[test]
        fn union_size_is_sum_of_parts(n in 5usize..200) {
            let u = UnionHamming::ladder123(n);
            let expect = binomial(n as u64, 1) + binomial(n as u64, 2) + binomial(n as u64, 3);
            prop_assert_eq!(u.size(), expect);
        }

        #[test]
        fn union_enumeration_is_sorted_by_radius(n in 5usize..24) {
            let u = UnionHamming::ladder123(n);
            let mut last_k = 0usize;
            let mut count = 0u64;
            let mut sorted = true;
            u.for_each_move_in(0, u.size(), &mut |_idx, mv| {
                sorted &= mv.k() >= last_k;
                last_k = mv.k();
                count += 1;
                true
            });
            prop_assert!(sorted, "radius decreased during enumeration");
            prop_assert_eq!(count, u.size());
        }

        /// Range enumeration agrees with unranking for arbitrary windows,
        /// including windows straddling segment boundaries.
        #[test]
        fn union_range_windows_agree_with_unrank(n in 5usize..30, a in any::<u64>(), b in any::<u64>()) {
            let u = UnionHamming::ladder123(n);
            let (mut lo, mut hi) = (a % u.size(), b % (u.size() + 1));
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            let mut expect = lo;
            let mut ok = true;
            u.for_each_move_in(lo, hi, &mut |idx, mv| {
                ok &= idx == expect && mv == u.unrank(idx);
                expect += 1;
                true
            });
            prop_assert!(ok, "window enumeration diverged");
            prop_assert_eq!(expect, hi);
        }
    }
}
