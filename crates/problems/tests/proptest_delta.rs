//! Property-based tests: every bundled problem's incremental evaluation
//! equals full evaluation for arbitrary moves and random walks.

use lnls_core::{BinaryProblem, BitString, IncrementalEval};
use lnls_neighborhood::{KHamming, Neighborhood};
use lnls_problems::{IsingLattice, Knapsack, MaxCut, MaxSat, NkLandscape, OneMax, Qubo};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Check delta == full for a random move, plus state consistency after a
/// committed walk.
fn check_problem<P: IncrementalEval>(p: &P, seed: u64, walk: &[u64]) -> Result<(), TestCaseError> {
    let n = p.dim();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = BitString::random(&mut rng, n);
    let mut st = p.init_state(&s);
    prop_assert_eq!(p.state_fitness(&st), p.evaluate(&s));
    for &x in walk {
        let k = (x % 4 + 1) as usize;
        let hood = KHamming::new(n, k.min(n));
        let mv = hood.unrank(x % hood.size());
        let mut s2 = s.clone();
        s2.apply(&mv);
        prop_assert_eq!(p.neighbor_fitness(&mut st, &s, &mv), p.evaluate(&s2));
        p.apply_move(&mut st, &s, &mv);
        s = s2;
        prop_assert_eq!(p.state_fitness(&st), p.evaluate(&s));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn onemax_delta_exact(n in 4usize..80, seed in any::<u64>(), walk in prop::collection::vec(any::<u64>(), 1..12)) {
        check_problem(&OneMax::new(n), seed, &walk)?;
    }

    #[test]
    fn qubo_delta_exact(n in 4usize..40, seed in any::<u64>(), walk in prop::collection::vec(any::<u64>(), 1..12)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Qubo::random(&mut rng, n, 10, 0.5);
        check_problem(&p, seed, &walk)?;
    }

    #[test]
    fn maxsat_delta_exact(
        n in 4usize..40,
        m in 1usize..120,
        seed in any::<u64>(),
        walk in prop::collection::vec(any::<u64>(), 1..12),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = MaxSat::random(&mut rng, n.max(4), m);
        check_problem(&p, seed, &walk)?;
    }

    #[test]
    fn nk_delta_exact(
        n in 6usize..40,
        k_epi in 0usize..5,
        seed in any::<u64>(),
        walk in prop::collection::vec(any::<u64>(), 1..12),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = NkLandscape::random(&mut rng, n, k_epi.min(n - 1), 100);
        check_problem(&p, seed, &walk)?;
    }

    #[test]
    fn maxcut_delta_exact(
        n in 4usize..36,
        seed in any::<u64>(),
        walk in prop::collection::vec(any::<u64>(), 1..12),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = MaxCut::random(&mut rng, n, 0.4, 9);
        check_problem(&p, seed, &walk)?;
    }

    #[test]
    fn knapsack_delta_exact(
        n in 4usize..40,
        seed in any::<u64>(),
        walk in prop::collection::vec(any::<u64>(), 1..12),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Knapsack::random(&mut rng, n, 12, 6);
        check_problem(&p, seed, &walk)?;
    }

    #[test]
    fn ising_delta_exact(
        l in 2usize..7,
        hmax in 0i64..3,
        seed in any::<u64>(),
        walk in prop::collection::vec(any::<u64>(), 1..12),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = IsingLattice::random_pm(&mut rng, l, hmax);
        check_problem(&p, seed, &walk)?;
    }

    /// Max-Cut: the cut is symmetric under complementing the partition,
    /// and bounded by the total edge weight.
    #[test]
    fn maxcut_symmetry_and_bound(n in 4usize..30, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = MaxCut::random(&mut rng, n, 0.5, 7);
        let s = BitString::random(&mut rng, n);
        let mut comp = s.clone();
        for i in 0..n {
            comp.apply(&lnls_neighborhood::FlipMove::one(i as u32));
        }
        prop_assert_eq!(g.evaluate(&s), g.evaluate(&comp), "complement symmetry");
        prop_assert!(g.cut_value(&s) >= 0 || g.edge_count() > 0);
    }

    /// Ising: energy is symmetric under global spin flip when h ≡ 0, and
    /// the ferromagnet's ground energy −2L² lower-bounds every state.
    #[test]
    fn ising_global_flip_symmetry(l in 2usize..7, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = IsingLattice::random_pm(&mut rng, l, 0);
        let n = l * l;
        let s = BitString::random(&mut rng, n);
        let mut comp = s.clone();
        for i in 0..n {
            comp.apply(&lnls_neighborhood::FlipMove::one(i as u32));
        }
        prop_assert_eq!(g.evaluate(&s), g.evaluate(&comp), "Z2 symmetry");
        let ferro = IsingLattice::ferromagnet(l);
        prop_assert!(ferro.evaluate(&s) >= -2 * (n as i64));
    }

    /// Knapsack: fitness of any feasible selection is −value; the DP
    /// optimum lower-bounds every penalized fitness.
    #[test]
    fn knapsack_dp_lower_bound(n in 4usize..14, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = Knapsack::random(&mut rng, n, 9, 5);
        let opt = k.optimum_value();
        for mask in 0u32..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
            let s = BitString::from_bits(&bits);
            prop_assert!(k.evaluate(&s) >= -opt, "penalized fitness beat the DP optimum");
            if k.feasible(&s) {
                prop_assert_eq!(k.evaluate(&s), -k.value_of(&s));
            }
        }
    }

    /// MaxSat fitness is bounded by the clause count; OneMax by n.
    #[test]
    fn fitness_bounds(n in 4usize..40, m in 1usize..80, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sat = MaxSat::random(&mut rng, n.max(4), m);
        let s = BitString::random(&mut rng, n.max(4));
        let f = sat.evaluate(&s);
        prop_assert!(f >= 0 && f <= m as i64);
        let om = OneMax::new(n);
        let s = BitString::random(&mut rng, n);
        let f = om.evaluate(&s);
        prop_assert!(f >= 0 && f <= n as i64);
    }
}
