//! 0/1 knapsack as penalized pseudo-Boolean minimization: pick a subset
//! of items (bit `i` = item `i` packed) maximizing total value subject
//! to a weight capacity. Infeasible selections are admitted but charged
//! a linear penalty, the standard way to hand constrained problems to
//! an unconstrained binary local search:
//!
//! `f(s) = −Σ value_i·s_i + penalty · max(0, Σ weight_i·s_i − capacity)`
//!
//! With `penalty > max_i(value_i / weight_i)` every optimal solution of
//! the penalized problem is feasible, so the encodings agree. A
//! dynamic-programming exact solver is included for cross-checks.

use lnls_core::{BinaryProblem, BitString, IncrementalEval};
use lnls_neighborhood::FlipMove;
use rand::Rng;

/// A 0/1 knapsack instance with a linear overweight penalty.
#[derive(Clone, Debug)]
pub struct Knapsack {
    values: Vec<i64>,
    weights: Vec<i64>,
    capacity: i64,
    penalty: i64,
}

impl Knapsack {
    /// Build from parallel `values` / `weights` arrays.
    ///
    /// The penalty rate is set to `max(value_i) + 1`. With that rate,
    /// while a selection is overweight, dropping *any* packed item
    /// strictly improves fitness (it removes at least one unit of
    /// overweight, worth more than any single item's value), so every
    /// penalized optimum is feasible and coincides with the constrained
    /// optimum. A rate based on value/weight ratios — the tempting
    /// cheaper choice — is *not* sufficient: an item barely exceeding
    /// the capacity can then beat the empty knapsack.
    ///
    /// # Panics
    /// Panics on length mismatch, non-positive weights or values, or a
    /// negative capacity.
    pub fn new(values: Vec<i64>, weights: Vec<i64>, capacity: i64) -> Self {
        assert_eq!(values.len(), weights.len(), "values/weights length mismatch");
        assert!(capacity >= 0, "negative capacity");
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        assert!(values.iter().all(|&v| v > 0), "values must be positive");
        let penalty = values.iter().copied().max().unwrap_or(0) + 1;
        Self { values, weights, capacity, penalty }
    }

    /// Random instance: `n` items, weights in `[1, wmax]`, values
    /// correlated with weights (`value = weight + U[1, spread]`), the
    /// classic "weakly correlated" generator; capacity is half the total
    /// weight (the hardest regime).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize, wmax: i64, spread: i64) -> Self {
        let weights: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=wmax)).collect();
        let values: Vec<i64> = weights.iter().map(|&w| w + rng.gen_range(1..=spread)).collect();
        let capacity = weights.iter().sum::<i64>() / 2;
        Self::new(values, weights, capacity)
    }

    /// The penalty rate in use.
    pub fn penalty_rate(&self) -> i64 {
        self.penalty
    }

    /// Total weight of a selection.
    pub fn weight_of(&self, s: &BitString) -> i64 {
        (0..self.values.len()).filter(|&i| s.get(i)).map(|i| self.weights[i]).sum()
    }

    /// Total value of a selection (ignoring feasibility).
    pub fn value_of(&self, s: &BitString) -> i64 {
        (0..self.values.len()).filter(|&i| s.get(i)).map(|i| self.values[i]).sum()
    }

    /// True if the selection fits in the capacity.
    pub fn feasible(&self, s: &BitString) -> bool {
        self.weight_of(s) <= self.capacity
    }

    /// Exact optimum value by dynamic programming over capacity —
    /// O(n·capacity); use on small instances for verification.
    pub fn optimum_value(&self) -> i64 {
        let cap = self.capacity as usize;
        let mut dp = vec![0i64; cap + 1];
        for (i, &w) in self.weights.iter().enumerate() {
            let w = w as usize;
            if w > cap {
                continue;
            }
            for c in (w..=cap).rev() {
                dp[c] = dp[c].max(dp[c - w] + self.values[i]);
            }
        }
        dp[cap]
    }
}

/// Persisted as the parallel value/weight arrays plus the capacity —
/// the penalty rate is a pure function of the values, so `new` rebuilds
/// it identically. Needed so knapsack fleet jobs (LNS repair included)
/// survive checkpoint/restore.
impl lnls_core::Persist for Knapsack {
    fn write(&self, out: &mut Vec<u8>) {
        self.values.write(out);
        self.weights.write(out);
        lnls_core::Persist::write(&self.capacity, out);
    }
    fn read(r: &mut lnls_core::Reader<'_>) -> Result<Self, lnls_core::PersistError> {
        let values: Vec<i64> = r.read()?;
        let weights: Vec<i64> = r.read()?;
        let capacity: i64 = r.read()?;
        // `Knapsack::new` asserts its invariants; corrupt input must
        // error instead, so re-check them first.
        if values.len() != weights.len() {
            return Err(lnls_core::PersistError::new(format!(
                "knapsack arrays disagree: {} values vs {} weights",
                values.len(),
                weights.len()
            )));
        }
        if values.len() > 1 << 24 {
            return Err(lnls_core::PersistError::new(format!(
                "implausible knapsack size {}",
                values.len()
            )));
        }
        if capacity < 0 {
            return Err(lnls_core::PersistError::new(format!(
                "negative knapsack capacity {capacity}"
            )));
        }
        if values.iter().any(|&v| v <= 0) || weights.iter().any(|&w| w <= 0) {
            return Err(lnls_core::PersistError::new(
                "knapsack values and weights must be positive",
            ));
        }
        Ok(Knapsack::new(values, weights, capacity))
    }
}

impl lnls_core::PersistTag for Knapsack {
    const TAG: &'static str = "knapsack";
}

/// Incremental state: running total value and weight.
#[derive(Clone, Debug)]
pub struct KnapsackState {
    value: i64,
    weight: i64,
}

impl Knapsack {
    #[inline]
    fn fitness_of(&self, value: i64, weight: i64) -> i64 {
        -value + self.penalty * (weight - self.capacity).max(0)
    }
}

impl BinaryProblem for Knapsack {
    fn dim(&self) -> usize {
        self.values.len()
    }

    fn evaluate(&self, s: &BitString) -> i64 {
        self.fitness_of(self.value_of(s), self.weight_of(s))
    }

    fn name(&self) -> String {
        format!("knapsack-{}c{}", self.values.len(), self.capacity)
    }

    fn target_fitness(&self) -> Option<i64> {
        None // optimum unknown in general; searches run to budget
    }
}

impl IncrementalEval for Knapsack {
    type State = KnapsackState;

    fn init_state(&self, s: &BitString) -> KnapsackState {
        KnapsackState { value: self.value_of(s), weight: self.weight_of(s) }
    }

    fn state_fitness(&self, state: &KnapsackState) -> i64 {
        self.fitness_of(state.value, state.weight)
    }

    fn neighbor_fitness(&self, state: &mut KnapsackState, s: &BitString, mv: &FlipMove) -> i64 {
        let mut value = state.value;
        let mut weight = state.weight;
        for &b in mv.bits() {
            let i = b as usize;
            if s.get(i) {
                value -= self.values[i];
                weight -= self.weights[i];
            } else {
                value += self.values[i];
                weight += self.weights[i];
            }
        }
        self.fitness_of(value, weight)
    }

    fn apply_move(&self, state: &mut KnapsackState, s: &BitString, mv: &FlipMove) {
        for &b in mv.bits() {
            let i = b as usize;
            if s.get(i) {
                state.value -= self.values[i];
                state.weight -= self.weights[i];
            } else {
                state.value += self.values[i];
                state.weight += self.weights[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_neighborhood::{KHamming, LexMoves, Neighborhood};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Knapsack {
        // values 6,10,12; weights 1,2,3; capacity 5 → optimum 22 (items 1,2)
        Knapsack::new(vec![6, 10, 12], vec![1, 2, 3], 5)
    }

    #[test]
    fn hand_checked_fitness() {
        let k = tiny();
        let none = BitString::zeros(3);
        assert_eq!(k.evaluate(&none), 0);
        let all = BitString::from_bits(&[true, true, true]);
        // weight 6 > 5 → penalized; value 28, overweight 1
        assert_eq!(k.evaluate(&all), -28 + k.penalty_rate());
        assert!(!k.feasible(&all));
        let best = BitString::from_bits(&[false, true, true]);
        assert_eq!(k.evaluate(&best), -22);
        assert!(k.feasible(&best));
    }

    #[test]
    fn dp_optimum_on_tiny() {
        assert_eq!(tiny().optimum_value(), 22);
    }

    #[test]
    fn penalty_dominates_any_density() {
        // With the automatic penalty, removing an overweight item never
        // increases fitness: check exhaustively on a small instance.
        let mut rng = StdRng::seed_from_u64(3);
        let k = Knapsack::random(&mut rng, 10, 9, 5);
        for mask in 0u32..(1 << 10) {
            let bits: Vec<bool> = (0..10).map(|i| (mask >> i) & 1 == 1).collect();
            let s = BitString::from_bits(&bits);
            if k.feasible(&s) {
                continue;
            }
            // dropping any packed item must not worsen fitness
            let f = k.evaluate(&s);
            for i in 0..10 {
                if s.get(i) {
                    let mut s2 = s.clone();
                    s2.apply(&FlipMove::one(i as u32));
                    assert!(k.evaluate(&s2) <= f, "dropping item {i} worsened fitness");
                }
            }
        }
    }

    #[test]
    fn delta_matches_full_eval_exhaustively() {
        let mut rng = StdRng::seed_from_u64(4);
        let k = Knapsack::random(&mut rng, 14, 12, 6);
        let s = BitString::random(&mut rng, 14);
        let mut st = k.init_state(&s);
        assert_eq!(k.state_fitness(&st), k.evaluate(&s));
        for kk in 1..=4usize {
            for (_, mv) in LexMoves::new(14, kk) {
                let mut s2 = s.clone();
                s2.apply(&mv);
                assert_eq!(k.neighbor_fitness(&mut st, &s, &mv), k.evaluate(&s2));
            }
        }
    }

    #[test]
    fn search_reaches_dp_optimum() {
        // A live instance of the paper's thesis: on this seed the
        // 2-Hamming tabu plateaus at fitness −95 for thousands of
        // iterations, while the 3-Hamming neighborhood reaches the DP
        // optimum (−104) within ten.
        use lnls_core::{SearchConfig, SequentialExplorer, TabuSearch};
        let mut rng = StdRng::seed_from_u64(5);
        let k = Knapsack::random(&mut rng, 16, 10, 8);
        let opt = k.optimum_value();
        let hood = KHamming::new(16, 3);
        let mut ex = SequentialExplorer::new(hood);
        let search =
            TabuSearch::paper(SearchConfig::budget(500).with_target(Some(-opt)), hood.size());
        let r = search.run(&k, &mut ex, BitString::zeros(16));
        assert_eq!(r.best_fitness, -opt, "3-Hamming tabu should reach the DP optimum");
        assert!(k.feasible(&r.best), "penalized optimum must be feasible");
    }

    #[test]
    fn random_walk_keeps_state_consistent() {
        let mut rng = StdRng::seed_from_u64(6);
        let k = Knapsack::random(&mut rng, 20, 8, 4);
        let mut s = BitString::random(&mut rng, 20);
        let mut st = k.init_state(&s);
        let hood = KHamming::new(20, 2);
        for _ in 0..100 {
            let mv = hood.unrank(rng.gen_range(0..hood.size()));
            let predicted = k.neighbor_fitness(&mut st, &s, &mv);
            k.apply_move(&mut st, &s, &mv);
            s.apply(&mv);
            assert_eq!(k.state_fitness(&st), predicted);
            assert_eq!(k.state_fitness(&st), k.evaluate(&s));
        }
    }

    #[test]
    fn persist_roundtrip_preserves_semantics() {
        use lnls_core::{Persist, Reader};
        let mut rng = StdRng::seed_from_u64(9);
        let k = Knapsack::random(&mut rng, 18, 10, 6);
        let back: Knapsack = Reader::new(&k.to_bytes()).read().expect("decode");
        assert_eq!(back.dim(), k.dim());
        assert_eq!(back.penalty_rate(), k.penalty_rate());
        for _ in 0..16 {
            let s = BitString::random(&mut rng, 18);
            assert_eq!(back.evaluate(&s), k.evaluate(&s));
        }
        // Corrupt payloads error instead of panicking.
        let mut bad = Vec::new();
        vec![1i64, 2].write(&mut bad);
        vec![1i64].write(&mut bad);
        3i64.write(&mut bad);
        assert!(Reader::new(&bad).read::<Knapsack>().is_err(), "length mismatch must be refused");
        let mut neg = Vec::new();
        vec![1i64].write(&mut neg);
        vec![0i64].write(&mut neg);
        3i64.write(&mut neg);
        assert!(Reader::new(&neg).read::<Knapsack>().is_err(), "zero weight must be refused");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = Knapsack::new(vec![1, 2], vec![1], 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = Knapsack::new(vec![1], vec![0], 3);
    }
}
