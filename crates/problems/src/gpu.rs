//! GPU neighbor-evaluation kernels for the bundled problems.
//!
//! The paper's `MoveIncrEvalKernel` pattern (Figs. 7/9/10) is problem-
//! agnostic: decode the thread id into a move with the §III mappings,
//! evaluate the neighbor incrementally against base state uploaded by
//! the host, store the fitness at the move index. This module instances
//! the pattern for [`OneMax`](crate::OneMax), [`Qubo`] and
//! [`MaxCut`](crate::MaxCut), demonstrating
//! that the mappings + simulator substrate generalize beyond the PPP —
//! exactly the "for binary problems" claim of §II.
//!
//! [`QuboGpuExplorer`] wires the QUBO kernel into the
//! [`lnls_core::Explorer`] trait so every search driver can
//! run QUBO neighborhoods on the simulated device; the consistency
//! tests check bit-exact agreement with the sequential explorer.

use crate::qubo::Qubo;
use lnls_core::{BitString, Explorer, IncrementalEval};
use lnls_gpu_sim::{
    Device, DeviceBuffer, DeviceSpec, ExecMode, Kernel, LaunchConfig, MemSpace, ThreadCtx, TimeBook,
};
use lnls_neighborhood::combinadic::unrank_combinadic;
use lnls_neighborhood::mapping2d::unrank2;
use lnls_neighborhood::mapping3d::unrank3;
use lnls_neighborhood::{FlipMove, KHamming, Neighborhood};
use std::time::{Duration, Instant};

/// Decode a flat move index on the device, charging the mapping's
/// arithmetic to the thread context (shared by every kernel here; the
/// costs mirror `PppEvalKernel::unrank` in `lnls-ppp`).
#[inline]
pub fn unrank_device<C: ThreadCtx>(ctx: &mut C, k: u8, n: u32, index: u64) -> ([u32; 4], usize) {
    match k {
        1 => {
            ctx.alu(1);
            ([index as u32, 0, 0, 0], 1)
        }
        2 => {
            ctx.sfu(1);
            ctx.alu(10);
            let (i, j) = unrank2(n as u64, index);
            ([i as u32, j as u32, 0, 0], 2)
        }
        3 => {
            ctx.sfu(2);
            ctx.alu(30);
            let (a, b, c) = unrank3(n as u64, index);
            ([a as u32, b as u32, c as u32, 0], 3)
        }
        4 => {
            ctx.alu(60);
            let mut out = [0u32; 4];
            unrank_combinadic(n as u64, index, &mut out);
            (out, 4)
        }
        _ => unreachable!("k must be 1..=4"),
    }
}

/// Pack a [`BitString`] into the u32 words the kernels read.
pub fn pack_bits(s: &BitString) -> Vec<u32> {
    s.words().iter().flat_map(|&w| [w as u32, (w >> 32) as u32]).collect()
}

#[inline]
fn bit_of<C: ThreadCtx>(ctx: &mut C, vbits: &DeviceBuffer<u32>, c: usize) -> bool {
    let w = ctx.ld(vbits, c / 32);
    ctx.alu(3);
    (w >> (c % 32)) & 1 == 1
}

// ---------------------------------------------------------------------
// OneMax
// ---------------------------------------------------------------------

/// Neighbor evaluation for [`OneMax`](crate::OneMax): `Δf = ±1` per
/// flipped bit.
pub struct OneMaxEvalKernel {
    /// Hamming distance of the neighborhood (1..=4).
    pub k: u8,
    /// Solution length.
    pub n: u32,
    /// Moves evaluated by this launch.
    pub msize: u64,
    /// Packed current solution.
    pub vbits: DeviceBuffer<u32>,
    /// Fitness of the current solution.
    pub fit_base: i64,
    /// Output fitness per move index.
    pub out: DeviceBuffer<i64>,
}

impl Kernel for OneMaxEvalKernel {
    fn name(&self) -> &'static str {
        "onemax_eval"
    }

    fn profile_key(&self) -> u64 {
        ((self.k as u64) << 32) ^ self.n as u64
    }

    fn run<C: ThreadCtx>(&self, ctx: &mut C, _phase: u32) {
        let tid = ctx.id().global();
        if !ctx.branch(tid < self.msize) {
            return;
        }
        let (cols, k) = unrank_device(ctx, self.k, self.n, tid);
        let mut f = self.fit_base;
        for &c in cols.iter().take(k) {
            // flipping a 1 adds a zero (+1), flipping a 0 removes one (−1)
            ctx.alu(2);
            f += if bit_of(ctx, &self.vbits, c as usize) { 1 } else { -1 };
        }
        ctx.st(&self.out, tid as usize, f);
    }
}

// ---------------------------------------------------------------------
// QUBO
// ---------------------------------------------------------------------

/// Neighbor evaluation for [`Qubo`]: the O(k²) sequential-flip delta of
/// the CPU path, with `Q` in texture memory (read-only, shared by all
/// threads — the ε-matrix placement of the paper) and the row sums `r`
/// in global memory, re-uploaded per iteration.
pub struct QuboEvalKernel {
    /// Hamming distance of the neighborhood (1..=4).
    pub k: u8,
    /// Solution length.
    pub n: u32,
    /// Moves evaluated by this launch.
    pub msize: u64,
    /// Row-major `n×n` matrix (texture).
    pub q: DeviceBuffer<i64>,
    /// Packed current solution.
    pub vbits: DeviceBuffer<u32>,
    /// Off-diagonal row sums of the current solution.
    pub r: DeviceBuffer<i64>,
    /// Fitness of the current solution.
    pub fit_base: i64,
    /// Output fitness per move index.
    pub out: DeviceBuffer<i64>,
}

impl Kernel for QuboEvalKernel {
    fn name(&self) -> &'static str {
        "qubo_eval"
    }

    fn profile_key(&self) -> u64 {
        0x5155424f ^ ((self.k as u64) << 32) ^ self.n as u64 // "QUBO"
    }

    fn run<C: ThreadCtx>(&self, ctx: &mut C, _phase: u32) {
        let tid = ctx.id().global();
        if !ctx.branch(tid < self.msize) {
            return;
        }
        let (cols, k) = unrank_device(ctx, self.k, self.n, tid);
        let n = self.n as usize;
        let mut f = self.fit_base;
        let mut flipped = [false; 4];
        for t in 0..k {
            let i = cols[t] as usize;
            let xi = bit_of(ctx, &self.vbits, i) ^ flipped[t];
            let mut ri = ctx.ld(&self.r, i);
            for (u, &cu) in cols.iter().enumerate().take(k) {
                if u != t && flipped[u] {
                    let j = cu as usize;
                    let qij = ctx.ld(&self.q, i * n + j);
                    ctx.alu(3);
                    ri += if bit_of(ctx, &self.vbits, j) { -qij } else { qij };
                }
            }
            let qii = ctx.ld(&self.q, i * n + i);
            ctx.alu(4);
            let sign = if xi { -1 } else { 1 };
            f += sign * (qii + 2 * ri);
            flipped[t] = true;
        }
        ctx.st(&self.out, tid as usize, f);
    }
}

// ---------------------------------------------------------------------
// Max-Cut
// ---------------------------------------------------------------------

/// Neighbor evaluation for [`MaxCut`](crate::MaxCut): per-vertex gain
/// sums plus the
/// pair correction for edges inside the flipped set, read from a CSR
/// graph in texture memory.
pub struct MaxCutEvalKernel {
    /// Hamming distance of the neighborhood (1..=4).
    pub k: u8,
    /// Vertex count.
    pub n: u32,
    /// Moves evaluated by this launch.
    pub msize: u64,
    /// CSR row offsets (`n+1`, texture).
    pub offsets: DeviceBuffer<u32>,
    /// CSR neighbor ids (texture).
    pub nbr: DeviceBuffer<u32>,
    /// CSR edge weights (texture).
    pub wgt: DeviceBuffer<i64>,
    /// Packed current partition.
    pub vbits: DeviceBuffer<u32>,
    /// Per-vertex crossing-weight sums of the current partition.
    pub cross: DeviceBuffer<i64>,
    /// Per-vertex same-side-weight sums of the current partition.
    pub same: DeviceBuffer<i64>,
    /// Fitness (= −cut) of the current partition.
    pub fit_base: i64,
    /// Output fitness per move index.
    pub out: DeviceBuffer<i64>,
}

impl Kernel for MaxCutEvalKernel {
    fn name(&self) -> &'static str {
        "maxcut_eval"
    }

    fn profile_key(&self) -> u64 {
        0x4d43 ^ ((self.k as u64) << 32) ^ self.n as u64
    }

    fn run<C: ThreadCtx>(&self, ctx: &mut C, _phase: u32) {
        let tid = ctx.id().global();
        if !ctx.branch(tid < self.msize) {
            return;
        }
        let (cols, k) = unrank_device(ctx, self.k, self.n, tid);
        let mut delta = 0i64;
        for &c in cols.iter().take(k) {
            let v = c as usize;
            let cr = ctx.ld(&self.cross, v);
            let sa = ctx.ld(&self.same, v);
            ctx.alu(2);
            delta += cr - sa;
        }
        // Pair corrections: edges with both endpoints flipped keep their
        // side relation; undo the double toggle.
        for t in 0..k {
            let u = cols[t] as usize;
            let lo = ctx.ld(&self.offsets, u) as usize;
            let hi = ctx.ld(&self.offsets, u + 1) as usize;
            for other in cols.iter().take(k).skip(t + 1) {
                let v = *other;
                for e in lo..hi {
                    let nb = ctx.ld(&self.nbr, e);
                    ctx.alu(1);
                    if !ctx.branch(nb == v) {
                        continue;
                    }
                    let w = ctx.ld(&self.wgt, e);
                    let su = bit_of(ctx, &self.vbits, u);
                    let sv = bit_of(ctx, &self.vbits, v as usize);
                    ctx.alu(3);
                    delta += if su != sv { -2 * w } else { 2 * w };
                }
            }
        }
        ctx.st(&self.out, tid as usize, self.fit_base + delta);
    }
}

// ---------------------------------------------------------------------
// QUBO explorer
// ---------------------------------------------------------------------

/// GPU-backed [`Explorer`] for [`Qubo`]: the matrix stays resident in
/// texture memory; each iteration uploads the packed solution and row
/// sums, launches [`QuboEvalKernel`] with one thread per neighbor, and
/// reads the fitness array back — the paper's iteration structure.
pub struct QuboGpuExplorer {
    k: usize,
    n: usize,
    msize: u64,
    hood: KHamming,
    dev: Device,
    q: DeviceBuffer<i64>,
    vbits: DeviceBuffer<u32>,
    r: DeviceBuffer<i64>,
    out: DeviceBuffer<i64>,
    block_size: u32,
    mode: ExecMode,
    wall: Duration,
}

impl QuboGpuExplorer {
    /// Build for `problem` and the `k`-Hamming neighborhood on the
    /// given device spec.
    pub fn new(problem: &Qubo, k: usize, spec: DeviceSpec) -> Self {
        use lnls_core::BinaryProblem;
        let n = problem.dim();
        let hood = KHamming::new(n, k);
        let msize = hood.size();
        let mut dev = Device::new(spec);
        let q = dev.upload_new(problem.matrix(), MemSpace::Texture, "qubo_q");
        // pack_bits emits two u32 words per 64-bit BitString word.
        let vbits =
            dev.alloc_zeroed::<u32>(n.div_ceil(64).max(1) * 2, MemSpace::Global, "qubo_vbits");
        let r = dev.alloc_zeroed::<i64>(n, MemSpace::Global, "qubo_r");
        let out = dev.alloc_zeroed::<i64>(msize as usize, MemSpace::Global, "qubo_out");
        Self {
            k,
            n,
            msize,
            hood,
            dev,
            q,
            vbits,
            r,
            out,
            block_size: 128,
            mode: ExecMode::Auto,
            wall: Duration::ZERO,
        }
    }

    /// The simulated device (counters, ledgers).
    pub fn device(&self) -> &Device {
        &self.dev
    }
}

impl Explorer<Qubo> for QuboGpuExplorer {
    fn size(&self) -> u64 {
        self.msize
    }

    fn k(&self) -> usize {
        self.k
    }

    fn unrank(&self, index: u64) -> FlipMove {
        self.hood.unrank(index)
    }

    fn dim_hint(&self) -> u32 {
        self.n as u32
    }

    fn for_each_move(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, FlipMove) -> bool) {
        self.hood.for_each_move_in(lo, hi, f);
    }

    fn explore(
        &mut self,
        problem: &Qubo,
        s: &BitString,
        state: &mut <Qubo as IncrementalEval>::State,
        out: &mut Vec<i64>,
    ) {
        let t0 = Instant::now();
        self.dev.upload(&self.vbits, &pack_bits(s));
        self.dev.upload(&self.r, state.row_sums());
        let kernel = QuboEvalKernel {
            k: self.k as u8,
            n: self.n as u32,
            msize: self.msize,
            q: self.q.clone(),
            vbits: self.vbits.clone(),
            r: self.r.clone(),
            fit_base: problem.state_fitness(state),
            out: self.out.clone(),
        };
        self.dev.launch(&kernel, LaunchConfig::cover_1d(self.msize, self.block_size), self.mode);
        self.dev.download_into(&self.out, out);
        self.wall += t0.elapsed();
    }

    fn book(&self) -> Option<TimeBook> {
        Some(self.dev.book().clone())
    }

    fn wall(&self) -> Duration {
        self.wall
    }

    fn backend(&self) -> String {
        format!("gpu-sim/qubo-{}h", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxcut::MaxCut;
    use crate::onemax::OneMax;
    use lnls_core::BinaryProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device() -> Device {
        Device::new(DeviceSpec::gtx280())
    }

    #[test]
    fn onemax_kernel_matches_full_eval() {
        let n = 23;
        let p = OneMax::new(n);
        let mut rng = StdRng::seed_from_u64(1);
        let s = BitString::random(&mut rng, n);
        for k in 1..=4usize {
            let hood = KHamming::new(n, k);
            let msize = hood.size();
            let mut dev = device();
            let vbits = dev.upload_new(&pack_bits(&s), MemSpace::Global, "v");
            let out = dev.alloc_zeroed::<i64>(msize as usize, MemSpace::Global, "f");
            let kernel = OneMaxEvalKernel {
                k: k as u8,
                n: n as u32,
                msize,
                vbits,
                fit_base: p.evaluate(&s),
                out: out.clone(),
            };
            let rep = dev.launch(&kernel, LaunchConfig::cover_1d(msize, 64), ExecMode::Trace);
            assert!(rep.races.is_empty());
            let got = dev.download(&out);
            for (idx, mv) in hood.moves() {
                let mut s2 = s.clone();
                s2.apply(&mv);
                assert_eq!(got[idx as usize], p.evaluate(&s2), "k={k} idx={idx}");
            }
        }
    }

    #[test]
    fn qubo_kernel_matches_full_eval() {
        let n = 17;
        let mut rng = StdRng::seed_from_u64(2);
        let p = Qubo::random(&mut rng, n, 9, 0.6);
        let s = BitString::random(&mut rng, n);
        let st = p.init_state(&s);
        for k in 1..=3usize {
            let hood = KHamming::new(n, k);
            let msize = hood.size();
            let mut dev = device();
            let q = dev.upload_new(p.matrix(), MemSpace::Texture, "q");
            let vbits = dev.upload_new(&pack_bits(&s), MemSpace::Global, "v");
            let r = dev.upload_new(st.row_sums(), MemSpace::Global, "r");
            let out = dev.alloc_zeroed::<i64>(msize as usize, MemSpace::Global, "f");
            let kernel = QuboEvalKernel {
                k: k as u8,
                n: n as u32,
                msize,
                q,
                vbits,
                r,
                fit_base: st.fitness(),
                out: out.clone(),
            };
            let rep = dev.launch(&kernel, LaunchConfig::cover_1d(msize, 64), ExecMode::Trace);
            assert!(rep.races.is_empty());
            let got = dev.download(&out);
            for (idx, mv) in hood.moves() {
                let mut s2 = s.clone();
                s2.apply(&mv);
                assert_eq!(got[idx as usize], p.evaluate(&s2), "k={k} idx={idx}");
            }
        }
    }

    #[test]
    fn maxcut_kernel_matches_full_eval() {
        let n = 15;
        let mut rng = StdRng::seed_from_u64(3);
        let p = MaxCut::random(&mut rng, n, 0.5, 7);
        let s = BitString::random(&mut rng, n);
        let st = p.init_state(&s);
        let (offsets, nbr, wgt) = p.to_csr();
        for k in 1..=3usize {
            let hood = KHamming::new(n, k);
            let msize = hood.size();
            let mut dev = device();
            let offsets = dev.upload_new(&offsets, MemSpace::Texture, "off");
            let nbr_b = dev.upload_new(&nbr, MemSpace::Texture, "nbr");
            let wgt_b = dev.upload_new(&wgt, MemSpace::Texture, "wgt");
            let vbits = dev.upload_new(&pack_bits(&s), MemSpace::Global, "v");
            let cross = dev.upload_new(st.cross(), MemSpace::Global, "cross");
            let same = dev.upload_new(st.same(), MemSpace::Global, "same");
            let out = dev.alloc_zeroed::<i64>(msize as usize, MemSpace::Global, "f");
            let kernel = MaxCutEvalKernel {
                k: k as u8,
                n: n as u32,
                msize,
                offsets,
                nbr: nbr_b,
                wgt: wgt_b,
                vbits,
                cross,
                same,
                fit_base: st.fitness(),
                out: out.clone(),
            };
            let rep = dev.launch(&kernel, LaunchConfig::cover_1d(msize, 64), ExecMode::Trace);
            assert!(rep.races.is_empty());
            let got = dev.download(&out);
            for (idx, mv) in hood.moves() {
                let mut s2 = s.clone();
                s2.apply(&mv);
                assert_eq!(got[idx as usize], p.evaluate(&s2), "k={k} idx={idx}");
            }
        }
    }

    #[test]
    fn qubo_gpu_explorer_matches_sequential() {
        use lnls_core::SequentialExplorer;
        let n = 19;
        let mut rng = StdRng::seed_from_u64(4);
        let p = Qubo::random(&mut rng, n, 8, 0.5);
        let s = BitString::random(&mut rng, n);
        for k in 1..=3usize {
            let mut st = p.init_state(&s);
            let mut gpu = QuboGpuExplorer::new(&p, k, DeviceSpec::gtx280());
            let mut seq = SequentialExplorer::new(KHamming::new(n, k));
            let (mut a, mut b) = (Vec::new(), Vec::new());
            gpu.explore(&p, &s, &mut st, &mut a);
            Explorer::<Qubo>::explore(&mut seq, &p, &s, &mut st, &mut b);
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn qubo_tabu_run_identical_on_gpu_and_cpu() {
        use lnls_core::{SearchConfig, SequentialExplorer, TabuSearch};
        let n = 14;
        let mut rng = StdRng::seed_from_u64(5);
        let p = Qubo::random(&mut rng, n, 7, 0.6);
        let init = BitString::random(&mut rng, n);
        let hood = KHamming::new(n, 2);

        let search = TabuSearch::paper(SearchConfig::budget(60).with_target(None), hood.size());
        let mut seq = SequentialExplorer::new(hood);
        let r_cpu = search.run(&p, &mut seq, init.clone());

        let mut gpu = QuboGpuExplorer::new(&p, 2, DeviceSpec::gtx280());
        let r_gpu = search.run(&p, &mut gpu, init);

        assert_eq!(r_cpu.best_fitness, r_gpu.best_fitness);
        assert_eq!(r_cpu.iterations, r_gpu.iterations);
        assert_eq!(r_cpu.best, r_gpu.best);
        // The GPU path must have priced its work.
        assert!(r_gpu.book.expect("time book").launches >= 60);
    }

    #[test]
    fn gpu_explorer_prices_transfers_and_kernels() {
        let n = 16;
        let mut rng = StdRng::seed_from_u64(6);
        let p = Qubo::random(&mut rng, n, 5, 0.5);
        let s = BitString::random(&mut rng, n);
        let mut st = p.init_state(&s);
        let mut gpu = QuboGpuExplorer::new(&p, 2, DeviceSpec::gtx280());
        let mut out = Vec::new();
        gpu.explore(&p, &s, &mut st, &mut out);
        let book = Explorer::<Qubo>::book(&gpu).unwrap();
        assert_eq!(book.launches, 1);
        assert!(book.bytes_h2d > 0, "solution upload must be accounted");
        assert!(book.bytes_d2h >= (out.len() * 8) as u64, "fitness readback");
        assert!(book.kernel_s > 0.0);
    }
}
