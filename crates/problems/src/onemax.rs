//! OneMax, the fruit fly of binary optimization, phrased as minimization
//! (count the zero bits). Useful as a smoke-test problem whose optimum
//! and landscape are fully understood.

use lnls_core::{BinaryProblem, BitString, IncrementalEval};
use lnls_neighborhood::FlipMove;

/// Minimize the number of zero bits; solved at the all-ones string.
#[derive(Copy, Clone, Debug)]
pub struct OneMax {
    n: usize,
}

impl OneMax {
    /// OneMax over `n`-bit strings.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "OneMax needs n > 0");
        Self { n }
    }
}

/// Incremental state: the current number of zero bits.
#[derive(Copy, Clone, Debug)]
pub struct OneMaxState {
    zeros: i64,
}

impl BinaryProblem for OneMax {
    fn dim(&self) -> usize {
        self.n
    }

    fn evaluate(&self, s: &BitString) -> i64 {
        self.n as i64 - s.count_ones() as i64
    }

    fn name(&self) -> String {
        format!("onemax-{}", self.n)
    }

    fn target_fitness(&self) -> Option<i64> {
        Some(0)
    }
}

impl IncrementalEval for OneMax {
    type State = OneMaxState;

    fn init_state(&self, s: &BitString) -> OneMaxState {
        OneMaxState { zeros: self.evaluate(s) }
    }

    fn state_fitness(&self, state: &OneMaxState) -> i64 {
        state.zeros
    }

    fn neighbor_fitness(&self, state: &mut OneMaxState, s: &BitString, mv: &FlipMove) -> i64 {
        let mut f = state.zeros;
        for &b in mv.bits() {
            f += if s.get(b as usize) { 1 } else { -1 };
        }
        f
    }

    fn apply_move(&self, state: &mut OneMaxState, s: &BitString, mv: &FlipMove) {
        state.zeros = self.neighbor_fitness(&mut state.clone(), s, mv);
    }
}

impl lnls_core::Persist for OneMax {
    fn write(&self, out: &mut Vec<u8>) {
        lnls_core::Persist::write(&self.n, out);
    }
    fn read(r: &mut lnls_core::Reader<'_>) -> Result<Self, lnls_core::PersistError> {
        let n: usize = r.read()?;
        if n == 0 {
            return Err(lnls_core::PersistError::new("OneMax needs n > 0"));
        }
        Ok(OneMax::new(n))
    }
}

impl lnls_core::PersistTag for OneMax {
    const TAG: &'static str = "onemax";
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_core::{SearchConfig, SequentialExplorer, TabuSearch};
    use lnls_neighborhood::{Neighborhood, OneHamming};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn evaluate_counts_zeros() {
        let p = OneMax::new(8);
        let mut s = BitString::zeros(8);
        assert_eq!(p.evaluate(&s), 8);
        s.flip(0);
        s.flip(7);
        assert_eq!(p.evaluate(&s), 6);
    }

    #[test]
    fn delta_matches_full() {
        let p = OneMax::new(40);
        let mut rng = StdRng::seed_from_u64(1);
        let s = BitString::random(&mut rng, 40);
        let mut st = p.init_state(&s);
        for mv in [FlipMove::one(0), FlipMove::two(1, 39), FlipMove::three(2, 3, 4)] {
            let mut s2 = s.clone();
            s2.apply(&mv);
            assert_eq!(p.neighbor_fitness(&mut st, &s, &mv), p.evaluate(&s2));
        }
    }

    #[test]
    fn tabu_solves_onemax() {
        let p = OneMax::new(64);
        let hood = OneHamming::new(64);
        let mut ex = SequentialExplorer::new(hood);
        let search = TabuSearch::paper(SearchConfig::budget(100), hood.size());
        let r = search.run(&p, &mut ex, BitString::zeros(64));
        assert!(r.success);
        assert_eq!(r.best.count_ones(), 64);
    }
}
