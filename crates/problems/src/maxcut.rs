//! Max-Cut as pseudo-Boolean minimization: partition the vertices of a
//! weighted graph into two sides (bit `i` = side of vertex `i`) so the
//! total weight of edges crossing the partition is maximized. We
//! minimize `-cut(s)`, so lower is better and the framework's
//! conventions apply unchanged.
//!
//! Single-flip deltas are O(deg(v)) via cached per-vertex *gain* values
//! (the classic Kernighan–Lin bookkeeping); k-flip deltas re-inspect
//! only the edges inside the flipped set.

use lnls_core::{BinaryProblem, BitString, IncrementalEval};
use lnls_neighborhood::FlipMove;
use rand::Rng;

/// A weighted undirected graph for Max-Cut, stored as adjacency lists.
#[derive(Clone, Debug)]
pub struct MaxCut {
    n: usize,
    /// `adj[v]` = list of `(neighbor, weight)`; each undirected edge
    /// appears in both endpoint lists.
    adj: Vec<Vec<(u32, i64)>>,
    /// Total number of undirected edges.
    edges: usize,
}

impl MaxCut {
    /// Build from an undirected edge list `(u, v, w)`.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges.
    pub fn new(n: usize, edge_list: &[(u32, u32, i64)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v, w) in edge_list {
            assert_ne!(u, v, "self-loop at vertex {u}");
            assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range");
            assert!(!adj[u as usize].iter().any(|&(x, _)| x == v), "duplicate edge ({u},{v})");
            adj[u as usize].push((v, w));
            adj[v as usize].push((u, w));
        }
        Self { n, adj, edges: edge_list.len() }
    }

    /// Erdős–Rényi random graph `G(n, p)` with integer weights uniform
    /// in `[1, wmax]` (positive weights keep the problem non-trivial).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64, wmax: i64) -> Self {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen::<f64>() < p {
                    edges.push((u, v, rng.gen_range(1..=wmax)));
                }
            }
        }
        Self::new(n, &edges)
    }

    /// A ring of `n` unit-weight edges: the optimum cut is `n` for even
    /// `n` and `n − 1` for odd `n` (useful as a known-optimum fixture).
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring needs at least 3 vertices");
        let edges: Vec<(u32, u32, i64)> =
            (0..n as u32).map(|u| (u, (u + 1) % n as u32, 1)).collect();
        Self::new(n, &edges)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The cut value of a partition (maximization view).
    pub fn cut_value(&self, s: &BitString) -> i64 {
        -self.evaluate(s)
    }

    /// Export the graph in CSR form — `(offsets, neighbors, weights)`
    /// with `offsets.len() == n + 1` — e.g. for device upload.
    pub fn to_csr(&self) -> (Vec<u32>, Vec<u32>, Vec<i64>) {
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut nbr = Vec::new();
        let mut wgt = Vec::new();
        offsets.push(0u32);
        for lst in &self.adj {
            for &(v, w) in lst {
                nbr.push(v);
                wgt.push(w);
            }
            offsets.push(nbr.len() as u32);
        }
        (offsets, nbr, wgt)
    }
}

/// Persisted as the vertex count plus the undirected edge list (each
/// edge once, lower endpoint first) — enough to rebuild the adjacency
/// lists with identical search semantics. Needed so Max-Cut fleet jobs
/// survive checkpoint/restore like OneMax and PPP ones do.
impl lnls_core::Persist for MaxCut {
    fn write(&self, out: &mut Vec<u8>) {
        lnls_core::Persist::write(&self.n, out);
        let mut edges: Vec<(u32, u32, i64)> = Vec::with_capacity(self.edges);
        for (u, lst) in self.adj.iter().enumerate() {
            for &(v, w) in lst {
                if (v as usize) > u {
                    edges.push((u as u32, v, w));
                }
            }
        }
        edges.write(out);
    }
    fn read(r: &mut lnls_core::Reader<'_>) -> Result<Self, lnls_core::PersistError> {
        let n: usize = r.read()?;
        // The adjacency allocation is O(n) before any edge check can
        // run: bound the count so a corrupt prefix errors instead of
        // aborting on an absurd allocation (2^24 vertices is already
        // far past anything a fleet-job snapshot legitimately holds).
        if n > 1 << 24 {
            return Err(lnls_core::PersistError::new(format!("implausible maxcut size {n}")));
        }
        let edges: Vec<(u32, u32, i64)> = r.read()?;
        // `MaxCut::new` asserts its invariants; corrupt input must error
        // instead, so re-check them first.
        let mut seen = std::collections::BTreeSet::new();
        for &(u, v, _) in &edges {
            if u == v || (u as usize) >= n || (v as usize) >= n {
                return Err(lnls_core::PersistError::new(format!("bad maxcut edge ({u},{v})")));
            }
            if !seen.insert((u.min(v), u.max(v))) {
                return Err(lnls_core::PersistError::new(format!(
                    "duplicate maxcut edge ({u},{v})"
                )));
            }
        }
        Ok(MaxCut::new(n, &edges))
    }
}

impl lnls_core::PersistTag for MaxCut {
    const TAG: &'static str = "maxcut";
}

impl MaxCutState {
    /// Current fitness (= −cut) tracked by the state.
    pub fn fitness(&self) -> i64 {
        self.fitness
    }

    /// Per-vertex total weight to opposite-side neighbors.
    pub fn cross(&self) -> &[i64] {
        &self.cross
    }

    /// Per-vertex total weight to same-side neighbors.
    pub fn same(&self) -> &[i64] {
        &self.same
    }
}

/// Incremental state: the (negated) cut plus per-vertex crossing sums
/// `c_v = Σ_{(v,u)∈E, side(u)≠side(v)} w(v,u)` and same-side sums, from
/// which flip gains follow in O(1) per edge inspected.
#[derive(Clone, Debug)]
pub struct MaxCutState {
    /// Current fitness (= −cut).
    fitness: i64,
    /// For each vertex, total weight to *opposite-side* neighbors.
    cross: Vec<i64>,
    /// For each vertex, total weight to *same-side* neighbors.
    same: Vec<i64>,
}

impl BinaryProblem for MaxCut {
    fn dim(&self) -> usize {
        self.n
    }

    fn evaluate(&self, s: &BitString) -> i64 {
        let mut cut = 0i64;
        for (u, lst) in self.adj.iter().enumerate() {
            for &(v, w) in lst {
                if (v as usize) > u && s.get(u) != s.get(v as usize) {
                    cut += w;
                }
            }
        }
        -cut
    }

    fn name(&self) -> String {
        format!("maxcut-{}v{}e", self.n, self.edges)
    }
}

impl IncrementalEval for MaxCut {
    type State = MaxCutState;

    fn init_state(&self, s: &BitString) -> MaxCutState {
        let mut cross = vec![0i64; self.n];
        let mut same = vec![0i64; self.n];
        for (u, lst) in self.adj.iter().enumerate() {
            for &(v, w) in lst {
                if s.get(u) != s.get(v as usize) {
                    cross[u] += w;
                } else {
                    same[u] += w;
                }
            }
        }
        MaxCutState { fitness: self.evaluate(s), cross, same }
    }

    fn state_fitness(&self, state: &MaxCutState) -> i64 {
        state.fitness
    }

    fn neighbor_fitness(&self, state: &mut MaxCutState, s: &BitString, mv: &FlipMove) -> i64 {
        // Flipping vertex v turns its crossing edges into same-side ones
        // and vice versa: Δ(−cut) = cross_v − same_v. For multi-bit moves
        // the edges *between* two flipped vertices keep their relative
        // sides, so each such edge's contribution was toggled twice and
        // must be corrected once per endpoint pair.
        let bits = mv.bits();
        let mut delta = 0i64;
        for &bv in bits {
            let v = bv as usize;
            delta += state.cross[v] - state.same[v];
        }
        // Correct pairs of flipped endpoints: their edge keeps its status,
        // but was counted as toggled from both sides.
        for (t, &bu) in bits.iter().enumerate() {
            for &bv in &bits[t + 1..] {
                let u = bu as usize;
                if let Some(&(_, w)) = self.adj[u].iter().find(|&&(x, _)| x == bv) {
                    // The edge (u,v) was crossing ⇒ both endpoints counted
                    // +w (leaving the cut); it actually stays crossing:
                    // undo 2w. Symmetrically for same-side.
                    if s.get(u) != s.get(bv as usize) {
                        delta -= 2 * w;
                    } else {
                        delta += 2 * w;
                    }
                }
            }
        }
        state.fitness + delta
    }

    fn apply_move(&self, state: &mut MaxCutState, s: &BitString, mv: &FlipMove) {
        state.fitness = self.neighbor_fitness(&mut state.clone(), s, mv);
        // Recompute the crossing/same sums around each flipped vertex.
        let bits = mv.bits();
        let flipped = |x: u32| bits.contains(&x);
        for &bv in bits {
            let v = bv as usize;
            // v itself changes side; every incident edge toggles unless
            // the other endpoint flipped too.
            for &(u, w) in &self.adj[v] {
                if flipped(u) {
                    continue; // relative sides unchanged
                }
                let u = u as usize;
                if s.get(v) != s.get(u) {
                    // was crossing, becomes same-side
                    state.cross[v] -= w;
                    state.cross[u] -= w;
                    state.same[v] += w;
                    state.same[u] += w;
                } else {
                    state.same[v] -= w;
                    state.same[u] -= w;
                    state.cross[v] += w;
                    state.cross[u] += w;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_neighborhood::{KHamming, LexMoves, Neighborhood};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn triangle_cut_values() {
        // Unit triangle: any 2-1 split cuts 2 edges; the trivial split 0.
        let g = MaxCut::new(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 1)]);
        assert_eq!(g.evaluate(&BitString::zeros(3)), 0);
        assert_eq!(g.evaluate(&BitString::from_bits(&[true, false, false])), -2);
        assert_eq!(g.cut_value(&BitString::from_bits(&[true, true, false])), 2);
    }

    #[test]
    fn ring_even_optimum_is_all_edges() {
        let g = MaxCut::ring(8);
        // alternating partition cuts all 8 edges
        let alt = BitString::from_bits(&[true, false, true, false, true, false, true, false]);
        assert_eq!(g.cut_value(&alt), 8);
    }

    #[test]
    fn delta_matches_full_eval_exhaustively() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = MaxCut::random(&mut rng, 13, 0.45, 7);
        let s = BitString::random(&mut rng, 13);
        let mut st = g.init_state(&s);
        for k in 1..=4usize {
            for (_, mv) in LexMoves::new(13, k) {
                let mut s2 = s.clone();
                s2.apply(&mv);
                assert_eq!(g.neighbor_fitness(&mut st, &s, &mv), g.evaluate(&s2), "k={k} {mv}");
            }
        }
    }

    #[test]
    fn random_walk_keeps_state_consistent() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = MaxCut::random(&mut rng, 18, 0.4, 5);
        let mut s = BitString::random(&mut rng, 18);
        let mut st = g.init_state(&s);
        let hood = KHamming::new(18, 3);
        for _ in 0..120 {
            let mv = hood.unrank(rng.gen_range(0..hood.size()));
            let predicted = g.neighbor_fitness(&mut st, &s, &mv);
            g.apply_move(&mut st, &s, &mv);
            s.apply(&mv);
            assert_eq!(st.fitness, predicted);
            assert_eq!(st.fitness, g.evaluate(&s));
            // cross/same must stay exact too
            let fresh = g.init_state(&s);
            assert_eq!(st.cross, fresh.cross);
            assert_eq!(st.same, fresh.same);
        }
    }

    #[test]
    fn search_finds_ring_optimum() {
        use lnls_core::{SearchConfig, SequentialExplorer, TabuSearch};
        let g = MaxCut::ring(12);
        let hood = KHamming::new(12, 2);
        let mut ex = SequentialExplorer::new(hood);
        let search =
            TabuSearch::paper(SearchConfig::budget(300).with_target(Some(-12)), hood.size());
        let r = search.run(&g, &mut ex, BitString::zeros(12));
        assert_eq!(r.best_fitness, -12, "alternating cut of the even ring");
    }

    #[test]
    fn persist_roundtrip_preserves_semantics() {
        use lnls_core::{Persist, Reader};
        let mut rng = StdRng::seed_from_u64(21);
        let g = MaxCut::random(&mut rng, 14, 0.4, 6);
        let back: MaxCut = Reader::new(&g.to_bytes()).read().expect("decode");
        assert_eq!(back.dim(), g.dim());
        assert_eq!(back.edge_count(), g.edge_count());
        for _ in 0..16 {
            let s = BitString::random(&mut rng, 14);
            assert_eq!(back.evaluate(&s), g.evaluate(&s));
        }
        // Corrupt payloads error instead of panicking.
        let mut bad = Vec::new();
        3usize.write(&mut bad);
        vec![(1u32, 1u32, 1i64)].write(&mut bad);
        assert!(Reader::new(&bad).read::<MaxCut>().is_err(), "self-loop must be refused");
        let mut dup = Vec::new();
        3usize.write(&mut dup);
        vec![(0u32, 1u32, 1i64), (1u32, 0u32, 2i64)].write(&mut dup);
        assert!(Reader::new(&dup).read::<MaxCut>().is_err(), "duplicate edge must be refused");
        let mut huge = Vec::new();
        (1usize << 40).write(&mut huge);
        Vec::<(u32, u32, i64)>::new().write(&mut huge);
        assert!(
            Reader::new(&huge).read::<MaxCut>().is_err(),
            "an absurd vertex count must error, not allocate"
        );
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = MaxCut::new(3, &[(1, 1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_edge_rejected() {
        let _ = MaxCut::new(3, &[(0, 1, 1), (1, 0, 2)]);
    }
}
