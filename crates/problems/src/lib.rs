//! # lnls-problems — additional binary optimization problems
//!
//! The paper positions its neighborhoods and mappings as generic "for
//! binary problems" (§II); this crate backs that claim with four
//! classic pseudo-Boolean problems wired into the `lnls-core` framework,
//! each with exact incremental evaluation:
//!
//! * [`OneMax`] — the canonical smoke test;
//! * [`Qubo`] — quadratic unconstrained binary optimization (O(k²)
//!   deltas via cached row sums);
//! * [`MaxSat`] — MAX-3SAT with WalkSAT-style clause bookkeeping;
//! * [`NkLandscape`] — Kauffman NK landscapes with tunable ruggedness;
//! * [`MaxCut`] — weighted graph bipartition with Kernighan–Lin gain
//!   caching;
//! * [`Knapsack`] — 0/1 knapsack with an exact penalty encoding and a
//!   DP cross-check solver;
//! * [`IsingLattice`] — Edwards–Anderson ±J spin glass on a 2-D torus
//!   with O(1) local-field deltas.
//!
//! Every problem works with every neighborhood (1/2/3/k-Hamming), every
//! explorer backend, and every search driver in `lnls-core`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gpu;
pub mod ising;
pub mod knapsack;
pub mod maxcut;
pub mod maxsat;
pub mod nk;
pub mod onemax;
pub mod qubo;

pub use gpu::{MaxCutEvalKernel, OneMaxEvalKernel, QuboEvalKernel, QuboGpuExplorer};
pub use ising::{IsingLattice, IsingState};
pub use knapsack::{Knapsack, KnapsackState};
pub use maxcut::{MaxCut, MaxCutState};
pub use maxsat::{Lit, MaxSat, MaxSatState};
pub use nk::{NkLandscape, NkState};
pub use onemax::{OneMax, OneMaxState};
pub use qubo::{Qubo, QuboState};
