//! Edwards–Anderson Ising spin glass on a 2-D torus, the physics
//! workhorse for binary local search. Bit `i` encodes spin
//! `σ_i = 1 − 2·s_i ∈ {+1, −1}` at lattice site `i = row·L + col`;
//! couplings `J` live on the 4-neighbor bonds of an `L×L` torus and the
//! energy to minimize is
//!
//! `E(σ) = − Σ_{<ij>} J_ij σ_i σ_j − Σ_i h_i σ_i`.
//!
//! Single-spin-flip deltas are O(1): `ΔE = 2 σ_i (Σ_j J_ij σ_j + h_i)`,
//! tracked through cached local fields. The ferromagnetic instance
//! (`J ≡ +1, h ≡ 0`) has the known ground state "all spins aligned"
//! with energy `−2L²`, used as a fixture.

use lnls_core::{BinaryProblem, BitString, IncrementalEval};
use lnls_neighborhood::FlipMove;
use rand::Rng;

/// An `L×L` toroidal Ising spin glass.
#[derive(Clone, Debug)]
pub struct IsingLattice {
    l: usize,
    /// `jr[i]` couples site `i` with its right neighbor `(row, col+1)`.
    jr: Vec<i64>,
    /// `jd[i]` couples site `i` with its down neighbor `(row+1, col)`.
    jd: Vec<i64>,
    /// External field per site.
    h: Vec<i64>,
}

impl IsingLattice {
    /// Build from explicit bond and field arrays (each of length `L²`).
    ///
    /// # Panics
    /// Panics if `l < 2` (the torus would double-count bonds) or the
    /// array lengths disagree with `l²`.
    pub fn new(l: usize, jr: Vec<i64>, jd: Vec<i64>, h: Vec<i64>) -> Self {
        assert!(l >= 2, "torus needs l >= 2");
        let n = l * l;
        assert_eq!(jr.len(), n, "jr length");
        assert_eq!(jd.len(), n, "jd length");
        assert_eq!(h.len(), n, "h length");
        Self { l, jr, jd, h }
    }

    /// The pure ferromagnet: all couplings +1, no field. Ground states
    /// are the two uniform configurations with energy `−2L²`.
    pub fn ferromagnet(l: usize) -> Self {
        let n = l * l;
        Self::new(l, vec![1; n], vec![1; n], vec![0; n])
    }

    /// ±J spin glass: each bond independently ±1 with equal probability,
    /// optional uniform field magnitude `hmax` (0 for the classic EA
    /// model).
    pub fn random_pm<R: Rng + ?Sized>(rng: &mut R, l: usize, hmax: i64) -> Self {
        let n = l * l;
        let pm = |rng: &mut R| if rng.gen::<bool>() { 1 } else { -1 };
        let jr = (0..n).map(|_| pm(rng)).collect();
        let jd = (0..n).map(|_| pm(rng)).collect();
        let h = (0..n).map(|_| if hmax == 0 { 0 } else { rng.gen_range(-hmax..=hmax) }).collect();
        Self::new(l, jr, jd, h)
    }

    /// Lattice side length `L`.
    pub fn side(&self) -> usize {
        self.l
    }

    #[inline]
    fn spin(s: &BitString, i: usize) -> i64 {
        if s.get(i) {
            -1
        } else {
            1
        }
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        (r % self.l) * self.l + (c % self.l)
    }

    /// The four neighbors of site `i` with their bond couplings.
    fn bonds_of(&self, i: usize) -> [(usize, i64); 4] {
        let (r, c) = (i / self.l, i % self.l);
        [
            (self.idx(r, c + 1), self.jr[i]), // right
            (self.idx(r, c + self.l - 1), self.jr[self.idx(r, c + self.l - 1)]), // left
            (self.idx(r + 1, c), self.jd[i]), // down
            (self.idx(r + self.l - 1, c), self.jd[self.idx(r + self.l - 1, c)]), // up
        ]
    }

    /// Net magnetization `Σ σ_i` (a physics observable, handy in tests).
    pub fn magnetization(&self, s: &BitString) -> i64 {
        (0..self.l * self.l).map(|i| Self::spin(s, i)).sum()
    }
}

/// Incremental state: energy plus per-site local fields
/// `φ_i = Σ_j J_ij σ_j + h_i`.
#[derive(Clone, Debug)]
pub struct IsingState {
    energy: i64,
    phi: Vec<i64>,
}

impl BinaryProblem for IsingLattice {
    fn dim(&self) -> usize {
        self.l * self.l
    }

    fn evaluate(&self, s: &BitString) -> i64 {
        let mut e = 0i64;
        let n = self.l * self.l;
        for i in 0..n {
            let si = Self::spin(s, i);
            // Count each bond once via its canonical (right/down) owner.
            let (r, c) = (i / self.l, i % self.l);
            e -= self.jr[i] * si * Self::spin(s, self.idx(r, c + 1));
            e -= self.jd[i] * si * Self::spin(s, self.idx(r + 1, c));
            e -= self.h[i] * si;
        }
        e
    }

    fn name(&self) -> String {
        format!("ising-{}x{}", self.l, self.l)
    }
}

impl IncrementalEval for IsingLattice {
    type State = IsingState;

    fn init_state(&self, s: &BitString) -> IsingState {
        let n = self.l * self.l;
        let mut phi = vec![0i64; n];
        for (i, p) in phi.iter_mut().enumerate() {
            *p = self.h[i]
                + self.bonds_of(i).iter().map(|&(j, jij)| jij * Self::spin(s, j)).sum::<i64>();
        }
        IsingState { energy: self.evaluate(s), phi }
    }

    fn state_fitness(&self, state: &IsingState) -> i64 {
        state.energy
    }

    fn neighbor_fitness(&self, state: &mut IsingState, s: &BitString, mv: &FlipMove) -> i64 {
        // ΔE for one flip: 2·σ_i·φ_i. For multi-flips, bonds between two
        // flipped sites keep their product, so each such bond's double
        // toggle must be corrected (exactly like Max-Cut's pair term).
        let bits = mv.bits();
        let mut e = state.energy;
        for &bi in bits {
            let i = bi as usize;
            e += 2 * Self::spin(s, i) * state.phi[i];
        }
        for (t, &bi) in bits.iter().enumerate() {
            let i = bi as usize;
            for &bj in &bits[t + 1..] {
                let j = bj as usize;
                for &(nb, jij) in &self.bonds_of(i) {
                    if nb == j {
                        // Both endpoints flip: product σ_iσ_j unchanged,
                        // but both flips charged ±2Jσ_iσ_j. Undo 2×.
                        e -= 4 * jij * Self::spin(s, i) * Self::spin(s, j);
                    }
                }
            }
        }
        e
    }

    fn apply_move(&self, state: &mut IsingState, s: &BitString, mv: &FlipMove) {
        state.energy = self.neighbor_fitness(&mut state.clone(), s, mv);
        for &bi in mv.bits() {
            let i = bi as usize;
            // σ_i flips: neighbors' local fields lose 2J σ_i.
            let si = Self::spin(s, i);
            for &(j, jij) in &self.bonds_of(i) {
                state.phi[j] -= 2 * jij * si;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_neighborhood::{KHamming, LexMoves, Neighborhood};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ferromagnet_ground_state_energy() {
        let g = IsingLattice::ferromagnet(4);
        // all spins up (all bits 0): every one of the 2L² bonds is
        // satisfied → E = −2·16 = −32
        assert_eq!(g.evaluate(&BitString::zeros(16)), -32);
        // all spins down is degenerate
        let down = BitString::from_bits(&[true; 16]);
        assert_eq!(g.evaluate(&down), -32);
        assert_eq!(g.magnetization(&BitString::zeros(16)), 16);
        assert_eq!(g.magnetization(&down), -16);
    }

    #[test]
    fn single_flip_from_ground_costs_eight() {
        // Flipping one spin of the 2-D ferromagnet breaks 4 unit bonds:
        // ΔE = 2·4 = 8.
        let g = IsingLattice::ferromagnet(4);
        let s = BitString::zeros(16);
        let mut st = g.init_state(&s);
        let f = g.neighbor_fitness(&mut st, &s, &FlipMove::one(5));
        assert_eq!(f, -32 + 8);
    }

    #[test]
    fn delta_matches_full_eval_exhaustively() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = IsingLattice::random_pm(&mut rng, 4, 2);
        let s = BitString::random(&mut rng, 16);
        let mut st = g.init_state(&s);
        assert_eq!(g.state_fitness(&st), g.evaluate(&s));
        for k in 1..=4usize {
            for (_, mv) in LexMoves::new(16, k) {
                let mut s2 = s.clone();
                s2.apply(&mv);
                assert_eq!(g.neighbor_fitness(&mut st, &s, &mv), g.evaluate(&s2), "k={k} {mv}");
            }
        }
    }

    #[test]
    fn random_walk_keeps_state_consistent() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = IsingLattice::random_pm(&mut rng, 5, 1);
        let mut s = BitString::random(&mut rng, 25);
        let mut st = g.init_state(&s);
        let hood = KHamming::new(25, 3);
        for _ in 0..120 {
            let mv = hood.unrank(rng.gen_range(0..hood.size()));
            let predicted = g.neighbor_fitness(&mut st, &s, &mv);
            g.apply_move(&mut st, &s, &mv);
            s.apply(&mv);
            assert_eq!(st.energy, predicted);
            assert_eq!(st.energy, g.evaluate(&s));
            let fresh = g.init_state(&s);
            assert_eq!(st.phi, fresh.phi, "local fields drifted");
        }
    }

    #[test]
    fn search_finds_ferromagnet_ground_state() {
        use lnls_core::{SearchConfig, SequentialExplorer, TabuSearch};
        let g = IsingLattice::ferromagnet(4);
        let hood = KHamming::new(16, 1);
        let mut ex = SequentialExplorer::new(hood);
        let search =
            TabuSearch::paper(SearchConfig::budget(500).with_target(Some(-32)), hood.size());
        let mut rng = StdRng::seed_from_u64(23);
        let start = BitString::random(&mut rng, 16);
        let r = search.run(&g, &mut ex, start);
        assert_eq!(r.best_fitness, -32);
    }

    #[test]
    #[should_panic(expected = "l >= 2")]
    fn degenerate_torus_rejected() {
        let _ = IsingLattice::new(1, vec![1], vec![1], vec![0]);
    }
}
