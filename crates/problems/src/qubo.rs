//! Quadratic Unconstrained Binary Optimization: minimize `xᵀQx` over
//! `x ∈ {0,1}ⁿ` with symmetric integer `Q`. The classic testbed for
//! binary local search with O(1) single-flip deltas via cached row sums.

use lnls_core::{BinaryProblem, BitString, IncrementalEval};
use lnls_neighborhood::FlipMove;
use rand::Rng;

/// A QUBO instance with dense symmetric matrix.
#[derive(Clone, Debug)]
pub struct Qubo {
    n: usize,
    /// Row-major symmetric matrix.
    q: Vec<i64>,
}

impl Qubo {
    /// Build from a full symmetric matrix (row-major, length `n²`).
    ///
    /// # Panics
    /// Panics if the matrix is not square or not symmetric.
    pub fn new(n: usize, q: Vec<i64>) -> Self {
        assert_eq!(q.len(), n * n, "Q must be n×n");
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(q[i * n + j], q[j * n + i], "Q must be symmetric at ({i},{j})");
            }
        }
        Self { n, q }
    }

    /// Random instance: entries uniform in `[-bound, bound]`, density in
    /// `(0, 1]` controls the fraction of nonzero off-diagonal couplings.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize, bound: i64, density: f64) -> Self {
        let mut q = vec![0i64; n * n];
        for i in 0..n {
            q[i * n + i] = rng.gen_range(-bound..=bound);
            for j in (i + 1)..n {
                if rng.gen::<f64>() < density {
                    let v = rng.gen_range(-bound..=bound);
                    q[i * n + j] = v;
                    q[j * n + i] = v;
                }
            }
        }
        Self { n, q }
    }

    #[inline]
    fn entry(&self, i: usize, j: usize) -> i64 {
        self.q[i * self.n + j]
    }

    /// The raw row-major matrix (length `n²`), e.g. for device upload.
    pub fn matrix(&self) -> &[i64] {
        &self.q
    }
}

/// Persisted as the dimension plus the dense row-major matrix. Needed
/// so QUBO fleet jobs survive checkpoint/restore.
impl lnls_core::Persist for Qubo {
    fn write(&self, out: &mut Vec<u8>) {
        lnls_core::Persist::write(&self.n, out);
        self.q.write(out);
    }
    fn read(r: &mut lnls_core::Reader<'_>) -> Result<Self, lnls_core::PersistError> {
        let n: usize = r.read()?;
        // The matrix is n² entries: bound the dimension so a corrupt
        // prefix errors instead of aborting on an absurd allocation.
        if n > 1 << 14 {
            return Err(lnls_core::PersistError::new(format!("implausible qubo size {n}")));
        }
        let q: Vec<i64> = r.read()?;
        // `Qubo::new` asserts its invariants; corrupt input must error
        // instead, so re-check them first.
        if q.len() != n * n {
            return Err(lnls_core::PersistError::new(format!(
                "qubo matrix has {} entries, expected {n}²",
                q.len()
            )));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if q[i * n + j] != q[j * n + i] {
                    return Err(lnls_core::PersistError::new(format!(
                        "qubo matrix asymmetric at ({i},{j})"
                    )));
                }
            }
        }
        Ok(Qubo::new(n, q))
    }
}

impl lnls_core::PersistTag for Qubo {
    const TAG: &'static str = "qubo";
}

impl QuboState {
    /// Current fitness tracked by the state.
    pub fn fitness(&self) -> i64 {
        self.fitness
    }

    /// The cached off-diagonal row sums `r_i = Σ_{j≠i} Q_ij x_j`.
    pub fn row_sums(&self) -> &[i64] {
        &self.r
    }
}

/// Incremental state: fitness plus the off-diagonal row sums
/// `r_i = Σ_{j≠i} Q_ij x_j`, giving single-flip deltas in O(1) and k-flip
/// deltas in O(k²).
#[derive(Clone, Debug)]
pub struct QuboState {
    fitness: i64,
    r: Vec<i64>,
}

impl BinaryProblem for Qubo {
    fn dim(&self) -> usize {
        self.n
    }

    fn evaluate(&self, s: &BitString) -> i64 {
        let mut f = 0i64;
        for i in 0..self.n {
            if !s.get(i) {
                continue;
            }
            f += self.entry(i, i);
            for j in (i + 1)..self.n {
                if s.get(j) {
                    f += 2 * self.entry(i, j);
                }
            }
        }
        f
    }

    fn name(&self) -> String {
        format!("qubo-{}", self.n)
    }
}

impl IncrementalEval for Qubo {
    type State = QuboState;

    fn init_state(&self, s: &BitString) -> QuboState {
        let mut r = vec![0i64; self.n];
        for (i, ri) in r.iter_mut().enumerate() {
            for j in 0..self.n {
                if j != i && s.get(j) {
                    *ri += self.entry(i, j);
                }
            }
        }
        QuboState { fitness: self.evaluate(s), r }
    }

    fn state_fitness(&self, state: &QuboState) -> i64 {
        state.fitness
    }

    fn neighbor_fitness(&self, state: &mut QuboState, s: &BitString, mv: &FlipMove) -> i64 {
        // Apply the flips sequentially; only the flipped coordinates'
        // effective x and r values change along the way (O(k²)).
        let bits = mv.bits();
        let mut f = state.fitness;
        // x̃ and r̃ views restricted to the move's coordinates.
        let mut flipped = [false; 4];
        for (t, &bt) in bits.iter().enumerate() {
            let i = bt as usize;
            let xi = s.get(i) ^ flipped[t];
            let mut ri = state.r[i];
            for (u, &bu) in bits.iter().enumerate() {
                if u != t && flipped[u] {
                    let j = bu as usize;
                    // j was flipped earlier in the sequence: its x changed
                    // by ±1, shifting r_i by ±Q_ij.
                    let delta = if s.get(j) { -1 } else { 1 };
                    ri += delta * self.entry(i, j);
                }
            }
            let sign = if xi { -1 } else { 1 };
            f += sign * (self.entry(i, i) + 2 * ri);
            flipped[t] = true;
        }
        f
    }

    fn apply_move(&self, state: &mut QuboState, s: &BitString, mv: &FlipMove) {
        state.fitness = self.neighbor_fitness(&mut state.clone(), s, mv);
        // Update row sums for every coordinate.
        for &bt in mv.bits() {
            let j = bt as usize;
            let delta = if s.get(j) { -1 } else { 1 };
            for i in 0..self.n {
                if i != j {
                    state.r[i] += delta * self.entry(i, j);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_neighborhood::{KHamming, LexMoves, Neighborhood};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn evaluate_matches_matrix_algebra() {
        // Hand-checked 3-variable instance.
        #[rustfmt::skip]
        let q = Qubo::new(3, vec![
            2, -1, 0,
            -1, 3, 4,
            0, 4, -5,
        ]);
        let x = BitString::from_bits(&[true, false, true]);
        // f = Q00 + Q22 + 2*Q02 = 2 - 5 + 0 = -3
        assert_eq!(q.evaluate(&x), -3);
        let y = BitString::from_bits(&[true, true, true]);
        // all pairs: 2+3-5 + 2*(-1+0+4) = 0 + 6 = 6
        assert_eq!(q.evaluate(&y), 6);
    }

    #[test]
    fn delta_matches_full_eval_exhaustively() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = Qubo::random(&mut rng, 14, 9, 0.6);
        let s = BitString::random(&mut rng, 14);
        let mut st = q.init_state(&s);
        for k in 1..=4usize {
            for (_, mv) in LexMoves::new(14, k) {
                let mut s2 = s.clone();
                s2.apply(&mv);
                assert_eq!(q.neighbor_fitness(&mut st, &s, &mv), q.evaluate(&s2), "k={k} {mv}");
            }
        }
    }

    #[test]
    fn random_walk_keeps_state_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = Qubo::random(&mut rng, 20, 5, 0.5);
        let mut s = BitString::random(&mut rng, 20);
        let mut st = q.init_state(&s);
        let hood = KHamming::new(20, 3);
        for _ in 0..100 {
            let mv = hood.unrank(rng.gen_range(0..hood.size()));
            let predicted = q.neighbor_fitness(&mut st, &s, &mv);
            q.apply_move(&mut st, &s, &mv);
            s.apply(&mv);
            assert_eq!(st.fitness, predicted);
            assert_eq!(st.fitness, q.evaluate(&s));
        }
    }

    #[test]
    fn brute_force_optimum_found_by_search() {
        use lnls_core::{SearchConfig, SequentialExplorer, TabuSearch};
        let mut rng = StdRng::seed_from_u64(3);
        let q = Qubo::random(&mut rng, 12, 7, 0.7);
        // Brute force all 4096 assignments.
        let mut best = i64::MAX;
        for mask in 0u32..(1 << 12) {
            let bits: Vec<bool> = (0..12).map(|i| (mask >> i) & 1 == 1).collect();
            best = best.min(q.evaluate(&BitString::from_bits(&bits)));
        }
        let hood = KHamming::new(12, 2);
        let mut ex = SequentialExplorer::new(hood);
        let search =
            TabuSearch::paper(SearchConfig::budget(500).with_target(Some(best)), hood.size());
        let r = search.run(&q, &mut ex, BitString::zeros(12));
        assert_eq!(r.best_fitness, best, "tabu must find the global optimum");
    }

    #[test]
    fn persist_roundtrip_preserves_semantics() {
        use lnls_core::{Persist, Reader};
        let mut rng = StdRng::seed_from_u64(8);
        let q = Qubo::random(&mut rng, 15, 7, 0.5);
        let back: Qubo = Reader::new(&q.to_bytes()).read().expect("decode");
        assert_eq!(back.dim(), q.dim());
        assert_eq!(back.matrix(), q.matrix());
        for _ in 0..16 {
            let s = BitString::random(&mut rng, 15);
            assert_eq!(back.evaluate(&s), q.evaluate(&s));
        }
        // Corrupt payloads error instead of panicking.
        let mut asym = Vec::new();
        2usize.write(&mut asym);
        vec![0i64, 1, 2, 0].write(&mut asym);
        assert!(Reader::new(&asym).read::<Qubo>().is_err(), "asymmetry must be refused");
        let mut short = Vec::new();
        3usize.write(&mut short);
        vec![0i64; 4].write(&mut short);
        assert!(Reader::new(&short).read::<Qubo>().is_err(), "wrong length must be refused");
        let mut huge = Vec::new();
        (1usize << 40).write(&mut huge);
        assert!(
            Reader::new(&huge).read::<Qubo>().is_err(),
            "an absurd dimension must error, not allocate"
        );
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        let _ = Qubo::new(2, vec![0, 1, 2, 0]);
    }
}
