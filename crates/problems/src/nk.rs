//! NK landscapes (Kauffman), adjacent-neighborhood model: locus `i`
//! contributes `f_i(s_i, s_{i+1}, …, s_{i+K})` (indices mod n) from a
//! lookup table. Tunable ruggedness (K) makes it the standard synthetic
//! landscape for studying neighborhood size vs. solution quality — the
//! exact trade-off the paper investigates on the PPP.

use lnls_core::{BinaryProblem, BitString, IncrementalEval};
use lnls_neighborhood::FlipMove;
use rand::Rng;

/// An NK landscape with adjacent epistasis, minimized.
#[derive(Clone, Debug)]
pub struct NkLandscape {
    n: usize,
    k: usize,
    /// `n` tables of `2^(k+1)` integer contributions.
    tables: Vec<Vec<i32>>,
}

impl NkLandscape {
    /// Random landscape: contributions uniform in `[0, scale)`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize, scale: i32) -> Self {
        assert!(k < n, "K must be below n");
        assert!(k <= 16, "table size 2^(K+1) would explode");
        let entries = 1usize << (k + 1);
        let tables =
            (0..n).map(|_| (0..entries).map(|_| rng.gen_range(0..scale)).collect()).collect();
        Self { n, k, tables }
    }

    /// The epistasis parameter K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pattern index of locus `i`: bits `i..=i+K` (mod n), LSB = locus
    /// `i` itself, with the bits of `mv` (if any) virtually flipped.
    #[inline]
    fn pattern(&self, i: usize, s: &BitString, mv: Option<&FlipMove>) -> usize {
        let mut idx = 0usize;
        for t in 0..=self.k {
            let pos = (i + t) % self.n;
            let mut bit = s.get(pos);
            if let Some(mv) = mv {
                if mv.contains(pos as u32) {
                    bit = !bit;
                }
            }
            idx |= (bit as usize) << t;
        }
        idx
    }

    /// Contribution of locus `i`.
    #[inline]
    fn contribution(&self, i: usize, s: &BitString, mv: Option<&FlipMove>) -> i32 {
        self.tables[i][self.pattern(i, s, mv)]
    }
}

/// Incremental state: per-locus contributions, total, and a stamp array
/// deduplicating loci affected by a k-flip move.
#[derive(Clone, Debug)]
pub struct NkState {
    contrib: Vec<i32>,
    total: i64,
    stamp: Vec<u32>,
    epoch: u32,
}

impl BinaryProblem for NkLandscape {
    fn dim(&self) -> usize {
        self.n
    }

    fn evaluate(&self, s: &BitString) -> i64 {
        (0..self.n).map(|i| self.contribution(i, s, None) as i64).sum()
    }

    fn name(&self) -> String {
        format!("nk-{}-{}", self.n, self.k)
    }
}

impl IncrementalEval for NkLandscape {
    type State = NkState;

    fn init_state(&self, s: &BitString) -> NkState {
        let contrib: Vec<i32> = (0..self.n).map(|i| self.contribution(i, s, None)).collect();
        let total = contrib.iter().map(|&c| c as i64).sum();
        NkState { contrib, total, stamp: vec![0; self.n], epoch: 0 }
    }

    fn state_fitness(&self, state: &NkState) -> i64 {
        state.total
    }

    fn neighbor_fitness(&self, state: &mut NkState, s: &BitString, mv: &FlipMove) -> i64 {
        state.epoch = state.epoch.wrapping_add(1);
        let epoch = state.epoch;
        let mut f = state.total;
        for &b in mv.bits() {
            let b = b as usize;
            // Locus i is affected iff b ∈ {i, …, i+K} (mod n), i.e.
            // i ∈ {b−K, …, b} (mod n).
            for t in 0..=self.k {
                let i = (b + self.n - t) % self.n;
                if state.stamp[i] == epoch {
                    continue;
                }
                state.stamp[i] = epoch;
                f += (self.contribution(i, s, Some(mv)) - state.contrib[i]) as i64;
            }
        }
        f
    }

    fn apply_move(&self, state: &mut NkState, s: &BitString, mv: &FlipMove) {
        state.epoch = state.epoch.wrapping_add(1);
        let epoch = state.epoch;
        for &b in mv.bits() {
            let b = b as usize;
            for t in 0..=self.k {
                let i = (b + self.n - t) % self.n;
                if state.stamp[i] == epoch {
                    continue;
                }
                state.stamp[i] = epoch;
                let new = self.contribution(i, s, Some(mv));
                state.total += (new - state.contrib[i]) as i64;
                state.contrib[i] = new;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_neighborhood::{KHamming, LexMoves, Neighborhood};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn k0_is_separable() {
        // With K = 0 each locus contributes independently; the optimum is
        // the per-locus argmin and 1-flip descent must reach it.
        use lnls_core::{HillClimbing, SearchConfig, SequentialExplorer};
        let mut rng = StdRng::seed_from_u64(1);
        let p = NkLandscape::random(&mut rng, 24, 0, 100);
        let optimum: i64 = p.tables.iter().map(|t| t.iter().copied().min().unwrap() as i64).sum();
        let mut ex = SequentialExplorer::new(lnls_neighborhood::OneHamming::new(24));
        let hc = HillClimbing::best(SearchConfig::budget(1000).with_target(None));
        let r = hc.run(&p, &mut ex, BitString::zeros(24));
        assert_eq!(r.best_fitness, optimum);
    }

    #[test]
    fn delta_matches_full_eval_exhaustively() {
        let mut rng = StdRng::seed_from_u64(2);
        for k_epi in [0usize, 1, 3, 5] {
            let p = NkLandscape::random(&mut rng, 14, k_epi, 50);
            let s = BitString::random(&mut rng, 14);
            let mut st = p.init_state(&s);
            for k in 1..=4usize {
                for (_, mv) in LexMoves::new(14, k) {
                    let mut s2 = s.clone();
                    s2.apply(&mv);
                    assert_eq!(
                        p.neighbor_fitness(&mut st, &s, &mv),
                        p.evaluate(&s2),
                        "K={k_epi} k={k} {mv}"
                    );
                }
            }
        }
    }

    #[test]
    fn random_walk_keeps_state_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = NkLandscape::random(&mut rng, 29, 4, 1000);
        let mut s = BitString::random(&mut rng, 29);
        let mut st = p.init_state(&s);
        let hood = KHamming::new(29, 3);
        for _ in 0..150 {
            let mv = hood.unrank(rng.gen_range(0..hood.size()));
            let predicted = p.neighbor_fitness(&mut st, &s, &mv);
            p.apply_move(&mut st, &s, &mv);
            s.apply(&mv);
            assert_eq!(st.total, predicted);
            assert_eq!(st.total, p.evaluate(&s));
        }
    }

    #[test]
    fn wraparound_loci_are_handled() {
        // A flip of bit 0 affects loci n−K..n−1 through the wrap.
        let mut rng = StdRng::seed_from_u64(4);
        let p = NkLandscape::random(&mut rng, 10, 3, 50);
        let s = BitString::zeros(10);
        let mut st = p.init_state(&s);
        let mv = FlipMove::one(0);
        let mut s2 = s.clone();
        s2.apply(&mv);
        assert_eq!(p.neighbor_fitness(&mut st, &s, &mv), p.evaluate(&s2));
    }

    #[test]
    #[should_panic(expected = "K must be below n")]
    fn oversized_k_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = NkLandscape::random(&mut rng, 4, 4, 10);
    }
}
