//! MAX-3SAT as minimization: count unsatisfied clauses. Incremental
//! evaluation through per-clause satisfied-literal counts and per-variable
//! occurrence lists — the standard WalkSAT bookkeeping, generalized to
//! k-flip moves with a stamp-deduplicated affected-clause scan.

use lnls_core::{BinaryProblem, BitString, IncrementalEval};
use lnls_neighborhood::FlipMove;
use rand::Rng;

/// A literal: variable index and polarity (`true` = positive, satisfied
/// when the variable bit is 1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Lit {
    /// Variable index.
    pub var: u32,
    /// Polarity.
    pub positive: bool,
}

impl Lit {
    #[inline]
    fn satisfied(&self, s: &BitString) -> bool {
        s.get(self.var as usize) == self.positive
    }
}

/// A MAX-3SAT instance (fixed-width 3-literal clauses).
#[derive(Clone, Debug)]
pub struct MaxSat {
    n: usize,
    clauses: Vec<[Lit; 3]>,
    /// Clause indices touching each variable.
    occ: Vec<Vec<u32>>,
}

impl MaxSat {
    /// Build from explicit clauses.
    ///
    /// # Panics
    /// Panics if a literal references a variable `>= n` or a clause
    /// repeats a variable.
    pub fn new(n: usize, clauses: Vec<[Lit; 3]>) -> Self {
        let mut occ = vec![Vec::new(); n];
        for (ci, clause) in clauses.iter().enumerate() {
            for (t, lit) in clause.iter().enumerate() {
                assert!((lit.var as usize) < n, "literal var out of range");
                for other in &clause[..t] {
                    assert_ne!(other.var, lit.var, "clause {ci} repeats variable {}", lit.var);
                }
                occ[lit.var as usize].push(ci as u32);
            }
        }
        Self { n, clauses, occ }
    }

    /// Uniform random 3-SAT with `m` clauses over `n` variables (distinct
    /// variables per clause, random polarities).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize) -> Self {
        assert!(n >= 3, "need at least 3 variables");
        let mut clauses = Vec::with_capacity(m);
        for _ in 0..m {
            let mut vars = [0u32; 3];
            let mut picked = 0;
            while picked < 3 {
                let v = rng.gen_range(0..n as u32);
                if !vars[..picked].contains(&v) {
                    vars[picked] = v;
                    picked += 1;
                }
            }
            let clause = [
                Lit { var: vars[0], positive: rng.gen() },
                Lit { var: vars[1], positive: rng.gen() },
                Lit { var: vars[2], positive: rng.gen() },
            ];
            clauses.push(clause);
        }
        Self::new(n, clauses)
    }

    /// Number of clauses.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// Satisfied-literal count of clause `ci` under `s` with the bits of
    /// `mv` (if any) virtually flipped.
    #[inline]
    fn sat_count(&self, ci: usize, s: &BitString, mv: Option<&FlipMove>) -> u8 {
        let mut c = 0u8;
        for lit in &self.clauses[ci] {
            let mut val = lit.satisfied(s);
            if let Some(mv) = mv {
                if mv.contains(lit.var) {
                    val = !val;
                }
            }
            c += val as u8;
        }
        c
    }
}

/// One clause flattened for persistence: three `(var, polarity)` pairs.
type FlatClause = ((u32, bool), (u32, bool), (u32, bool));

/// Persisted as the variable count plus the clause list (three
/// `(var, polarity)` pairs per clause) — the occurrence lists rebuild
/// deterministically in `new`. Needed so MAX-3SAT fleet jobs survive
/// checkpoint/restore.
impl lnls_core::Persist for MaxSat {
    fn write(&self, out: &mut Vec<u8>) {
        lnls_core::Persist::write(&self.n, out);
        let flat: Vec<FlatClause> = self
            .clauses
            .iter()
            .map(|c| {
                ((c[0].var, c[0].positive), (c[1].var, c[1].positive), (c[2].var, c[2].positive))
            })
            .collect();
        flat.write(out);
    }
    fn read(r: &mut lnls_core::Reader<'_>) -> Result<Self, lnls_core::PersistError> {
        let n: usize = r.read()?;
        // The occurrence-list allocation is O(n) before any clause check
        // can run: bound the count so a corrupt prefix errors instead of
        // aborting on an absurd allocation.
        if n > 1 << 24 {
            return Err(lnls_core::PersistError::new(format!("implausible max3sat size {n}")));
        }
        let flat: Vec<FlatClause> = r.read()?;
        // `MaxSat::new` asserts its invariants; corrupt input must error
        // instead, so re-check them first.
        let mut clauses = Vec::with_capacity(flat.len());
        for (ci, &((v0, p0), (v1, p1), (v2, p2))) in flat.iter().enumerate() {
            if v0 == v1 || v0 == v2 || v1 == v2 {
                return Err(lnls_core::PersistError::new(format!(
                    "max3sat clause {ci} repeats a variable"
                )));
            }
            if [v0, v1, v2].iter().any(|&v| v as usize >= n) {
                return Err(lnls_core::PersistError::new(format!(
                    "max3sat clause {ci} references a variable >= {n}"
                )));
            }
            clauses.push([
                Lit { var: v0, positive: p0 },
                Lit { var: v1, positive: p1 },
                Lit { var: v2, positive: p2 },
            ]);
        }
        Ok(MaxSat::new(n, clauses))
    }
}

impl lnls_core::PersistTag for MaxSat {
    const TAG: &'static str = "max3sat";
}

/// Incremental state: per-clause satisfied-literal counts, the number of
/// unsatisfied clauses, and a stamp array for deduplicating the clauses a
/// k-flip move touches.
#[derive(Clone, Debug)]
pub struct MaxSatState {
    sat: Vec<u8>,
    unsat: i64,
    stamp: Vec<u32>,
    epoch: u32,
}

impl BinaryProblem for MaxSat {
    fn dim(&self) -> usize {
        self.n
    }

    fn evaluate(&self, s: &BitString) -> i64 {
        self.clauses.iter().filter(|c| c.iter().all(|l| !l.satisfied(s))).count() as i64
    }

    fn name(&self) -> String {
        format!("max3sat-{}v-{}c", self.n, self.clauses.len())
    }

    fn target_fitness(&self) -> Option<i64> {
        Some(0)
    }
}

impl IncrementalEval for MaxSat {
    type State = MaxSatState;

    fn init_state(&self, s: &BitString) -> MaxSatState {
        let sat: Vec<u8> = (0..self.clauses.len()).map(|ci| self.sat_count(ci, s, None)).collect();
        let unsat = sat.iter().filter(|&&c| c == 0).count() as i64;
        MaxSatState { sat, unsat, stamp: vec![0; self.clauses.len()], epoch: 0 }
    }

    fn state_fitness(&self, state: &MaxSatState) -> i64 {
        state.unsat
    }

    fn neighbor_fitness(&self, state: &mut MaxSatState, s: &BitString, mv: &FlipMove) -> i64 {
        state.epoch = state.epoch.wrapping_add(1);
        let epoch = state.epoch;
        let mut f = state.unsat;
        for &b in mv.bits() {
            for &ci in &self.occ[b as usize] {
                let ci = ci as usize;
                if state.stamp[ci] == epoch {
                    continue; // clause already reprocessed for this move
                }
                state.stamp[ci] = epoch;
                let old_unsat = state.sat[ci] == 0;
                let new_unsat = self.sat_count(ci, s, Some(mv)) == 0;
                f += new_unsat as i64 - old_unsat as i64;
            }
        }
        f
    }

    fn apply_move(&self, state: &mut MaxSatState, s: &BitString, mv: &FlipMove) {
        state.epoch = state.epoch.wrapping_add(1);
        let epoch = state.epoch;
        for &b in mv.bits() {
            for &ci in &self.occ[b as usize] {
                let ci = ci as usize;
                if state.stamp[ci] == epoch {
                    continue;
                }
                state.stamp[ci] = epoch;
                let new = self.sat_count(ci, s, Some(mv));
                let old_unsat = state.sat[ci] == 0;
                state.sat[ci] = new;
                state.unsat += (new == 0) as i64 - old_unsat as i64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_neighborhood::{KHamming, LexMoves, Neighborhood};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lit(var: u32, positive: bool) -> Lit {
        Lit { var, positive }
    }

    #[test]
    fn evaluate_hand_checked() {
        // (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ ¬x1 ∨ ¬x2)
        let p = MaxSat::new(
            3,
            vec![
                [lit(0, true), lit(1, true), lit(2, true)],
                [lit(0, false), lit(1, false), lit(2, false)],
            ],
        );
        assert_eq!(p.evaluate(&BitString::from_bits(&[false, false, false])), 1);
        assert_eq!(p.evaluate(&BitString::from_bits(&[true, false, false])), 0);
        assert_eq!(p.evaluate(&BitString::from_bits(&[true, true, true])), 1);
    }

    #[test]
    fn delta_matches_full_eval_exhaustively() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = MaxSat::random(&mut rng, 12, 50);
        let s = BitString::random(&mut rng, 12);
        let mut st = p.init_state(&s);
        for k in 1..=4usize {
            for (_, mv) in LexMoves::new(12, k) {
                let mut s2 = s.clone();
                s2.apply(&mv);
                assert_eq!(p.neighbor_fitness(&mut st, &s, &mv), p.evaluate(&s2), "k={k} {mv}");
            }
        }
    }

    #[test]
    fn random_walk_keeps_state_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = MaxSat::random(&mut rng, 30, 120);
        let mut s = BitString::random(&mut rng, 30);
        let mut st = p.init_state(&s);
        let hood = KHamming::new(30, 2);
        for _ in 0..200 {
            let mv = hood.unrank(rng.gen_range(0..hood.size()));
            let predicted = p.neighbor_fitness(&mut st, &s, &mv);
            p.apply_move(&mut st, &s, &mv);
            s.apply(&mv);
            assert_eq!(st.unsat, predicted);
            assert_eq!(st.unsat, p.evaluate(&s));
        }
    }

    #[test]
    fn occurrence_lists_cover_all_clauses() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = MaxSat::random(&mut rng, 10, 40);
        let total: usize = p.occ.iter().map(Vec::len).sum();
        assert_eq!(total, 3 * 40);
    }

    #[test]
    fn persist_roundtrip_preserves_semantics() {
        use lnls_core::{Persist, Reader};
        let mut rng = StdRng::seed_from_u64(7);
        let p = MaxSat::random(&mut rng, 16, 70);
        let back: MaxSat = Reader::new(&p.to_bytes()).read().expect("decode");
        assert_eq!(back.dim(), p.dim());
        assert_eq!(back.clause_count(), p.clause_count());
        for _ in 0..16 {
            let s = BitString::random(&mut rng, 16);
            assert_eq!(back.evaluate(&s), p.evaluate(&s));
        }
        // Corrupt payloads error instead of panicking.
        let mut dup = Vec::new();
        3usize.write(&mut dup);
        vec![((0u32, true), (0u32, false), (1u32, true))].write(&mut dup);
        assert!(Reader::new(&dup).read::<MaxSat>().is_err(), "repeated variable must be refused");
        let mut oob = Vec::new();
        3usize.write(&mut oob);
        vec![((0u32, true), (1u32, false), (5u32, true))].write(&mut oob);
        assert!(Reader::new(&oob).read::<MaxSat>().is_err(), "out-of-range var must be refused");
        let mut huge = Vec::new();
        (1usize << 40).write(&mut huge);
        assert!(
            Reader::new(&huge).read::<MaxSat>().is_err(),
            "an absurd variable count must error, not allocate"
        );
    }

    #[test]
    #[should_panic(expected = "repeats variable")]
    fn duplicate_vars_rejected() {
        let _ = MaxSat::new(3, vec![[lit(0, true), lit(0, false), lit(1, true)]]);
    }
}
