//! Consistent-hash placement: tenant → shard over a ring of virtual
//! nodes.
//!
//! Each shard owns `replicas` points on a 64-bit ring, placed by
//! FNV-1a over `"shard-{id}#{replica}"`. A tenant routes to the owner
//! of the first ring point at or clockwise after FNV-1a of its name.
//! Adding or removing a shard moves only the tenants whose arcs the
//! change touches (≈ `1/N` of keys), which is the whole reason to
//! prefer a ring over `hash % N`: rebalances are incremental, not
//! total reshuffles.
//!
//! Everything is deterministic — same shard set, same replica count,
//! same placements, on every platform and every run. FNV-1a was chosen
//! over `std`'s `DefaultHasher` precisely because the latter is
//! documented to vary between releases.

use std::collections::BTreeSet;

/// 64-bit FNV-1a with a splitmix64 finalizer. Plain FNV-1a clusters
/// badly on short, nearly-identical strings (`shard-0#1`, `shard-0#2`,
/// …) — in practice whole shards ended up owning no ring arc — so the
/// finalizer shuffles the state through splitmix64's avalanche before
/// use. Stable across platforms and releases; collisions on the ring
/// are broken by shard id (see `HashRing::rebuild`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring of shard ids with virtual nodes.
#[derive(Clone, Debug)]
pub struct HashRing {
    replicas: u32,
    shards: BTreeSet<usize>,
    /// `(point, shard)` sorted by point; ties broken by shard id.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// A ring over shards `0..shards`, each with `replicas` virtual
    /// nodes (clamped to at least 1).
    pub fn new(shards: usize, replicas: u32) -> Self {
        let mut ring =
            Self { replicas: replicas.max(1), shards: (0..shards).collect(), points: Vec::new() };
        ring.rebuild();
        ring
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Virtual nodes per shard.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// The member shard ids, ascending.
    pub fn shard_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.shards.iter().copied()
    }

    /// Add a shard (no-op when already present). Only tenants on the
    /// new shard's arcs move.
    pub fn add_shard(&mut self, shard: usize) {
        if self.shards.insert(shard) {
            self.rebuild();
        }
    }

    /// Remove a shard (no-op when absent). Its tenants fall through to
    /// the next point clockwise; everyone else stays put.
    pub fn remove_shard(&mut self, shard: usize) {
        if self.shards.remove(&shard) {
            self.rebuild();
        }
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for &shard in &self.shards {
            for replica in 0..self.replicas {
                let point = fnv1a(format!("shard-{shard}#{replica}").as_bytes());
                self.points.push((point, shard));
            }
        }
        // Ties (two shards hashing a replica to the same point) resolve
        // to the smaller shard id, deterministically.
        self.points.sort_unstable();
    }

    /// The shard that owns `tenant`: the first ring point at or after
    /// the tenant's hash, wrapping at the top.
    ///
    /// # Panics
    /// When the ring is empty.
    pub fn shard_for(&self, tenant: &str) -> usize {
        assert!(!self.points.is_empty(), "routing on an empty hash ring");
        let h = fnv1a(tenant.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        self.points[idx % self.points.len()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tenants() -> Vec<String> {
        (0..500).map(|i| format!("tenant-{i}")).collect()
    }

    #[test]
    fn placement_is_deterministic() {
        let a = HashRing::new(8, 32);
        let b = HashRing::new(8, 32);
        for t in tenants() {
            assert_eq!(a.shard_for(&t), b.shard_for(&t));
        }
    }

    #[test]
    fn all_shards_receive_tenants() {
        let ring = HashRing::new(8, 32);
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for t in tenants() {
            *counts.entry(ring.shard_for(&t)).or_default() += 1;
        }
        assert_eq!(counts.len(), 8, "some shard owns no tenants: {counts:?}");
    }

    #[test]
    fn removing_a_shard_only_moves_its_tenants() {
        let full = HashRing::new(8, 32);
        let mut reduced = full.clone();
        reduced.remove_shard(3);
        let mut moved = 0;
        for t in tenants() {
            let before = full.shard_for(&t);
            let after = reduced.shard_for(&t);
            if before == 3 {
                assert_ne!(after, 3);
                moved += 1;
            } else {
                assert_eq!(before, after, "tenant {t} moved despite owner surviving");
            }
        }
        assert!(moved > 0, "shard 3 owned nothing; test is vacuous");
    }

    #[test]
    fn adding_a_shard_only_steals_for_itself() {
        let small = HashRing::new(7, 32);
        let mut grown = small.clone();
        grown.add_shard(7);
        for t in tenants() {
            let before = small.shard_for(&t);
            let after = grown.shard_for(&t);
            assert!(after == before || after == 7, "tenant {t}: {before} → {after}");
        }
    }
}
