//! Versioned shard configuration — the sui-protocol-config idiom.
//!
//! Defaults move between releases (a wider ring, a faster steal
//! cadence), but a workload trace recorded under version N must replay
//! under version N *semantics* forever, or replay stops being
//! bit-identical the day a default changes. So [`ShardConfig`] is
//! never built from bare literals: every knob set is minted by
//! [`ShardConfig::for_version`], traces record the version they were
//! captured under, and replay calls `for_version(recorded)` instead of
//! [`ShardConfig::current`]. Adding a version means adding a match arm
//! — old arms are frozen history and never edited.

use std::fmt;

/// The version new recordings are minted at. Bump this (and add a
/// `for_version` arm) whenever a default below changes.
pub const CONFIG_VERSION: u32 = 2;

/// A trace referenced a config version this build does not know —
/// recorded by a newer release. Replaying it here would silently
/// apply the wrong semantics, so it is refused instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownConfigVersion(pub u32);

impl fmt::Display for UnknownConfigVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown shard config version {} (this build knows 1..={CONFIG_VERSION})", self.0)
    }
}

impl std::error::Error for UnknownConfigVersion {}

/// Sharding knobs, minted per [`CONFIG_VERSION`]. All fields feed
/// deterministic machinery (ring layout, steal barrier), so two runs
/// under the same version are bit-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// The version these knobs were minted at.
    pub version: u32,
    /// Virtual nodes per shard on the placement ring.
    pub ring_replicas: u32,
    /// Steal barrier cadence: donations happen when the global tick
    /// count is a multiple of this.
    pub steal_every_ticks: u64,
    /// Most jobs moved per barrier across the whole fleet.
    pub steal_max_per_barrier: usize,
    /// Seed of the donor tie-break hash (see the fleet docs). Not
    /// versioned — a recording knob like a scenario seed.
    pub steal_seed: u64,
}

impl ShardConfig {
    /// The knob set of the current [`CONFIG_VERSION`].
    pub fn current() -> Self {
        Self::for_version(CONFIG_VERSION).expect("CONFIG_VERSION always has an arm")
    }

    /// The knob set frozen at `version`. Replay paths call this with
    /// the recorded version so old traces keep old semantics.
    pub fn for_version(version: u32) -> Result<Self, UnknownConfigVersion> {
        match version {
            // v1: the initial sharding release — sparse ring, slow
            // conservative stealing.
            1 => Ok(Self {
                version,
                ring_replicas: 16,
                steal_every_ticks: 8,
                steal_max_per_barrier: 1,
                steal_seed: 0x0100_5EED,
            }),
            // v2: denser ring (smoother placement), twice the barrier
            // cadence and twice the per-barrier budget.
            2 => Ok(Self {
                version,
                ring_replicas: 32,
                steal_every_ticks: 4,
                steal_max_per_barrier: 2,
                steal_seed: 0x0100_5EED,
            }),
            other => Err(UnknownConfigVersion(other)),
        }
    }

    /// Override the steal tie-break seed (a recording knob, like a
    /// scenario seed — does not change the config version).
    pub fn with_steal_seed(mut self, seed: u64) -> Self {
        self.steal_seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_matches_version_constant() {
        assert_eq!(ShardConfig::current().version, CONFIG_VERSION);
    }

    #[test]
    fn old_versions_stay_frozen() {
        let v1 = ShardConfig::for_version(1).unwrap();
        assert_eq!(
            (v1.ring_replicas, v1.steal_every_ticks, v1.steal_max_per_barrier),
            (16, 8, 1),
            "v1 semantics are frozen history; never edit the arm"
        );
        let v2 = ShardConfig::for_version(2).unwrap();
        assert_eq!((v2.ring_replicas, v2.steal_every_ticks, v2.steal_max_per_barrier), (32, 4, 2));
    }

    #[test]
    fn future_versions_are_refused() {
        assert_eq!(ShardConfig::for_version(99), Err(UnknownConfigVersion(99)));
        assert_eq!(ShardConfig::for_version(0), Err(UnknownConfigVersion(0)));
    }
}
