//! [`ParallelFleet`]: the true-parallel service runtime — one worker
//! thread per group of shards, advancing in virtual time behind bounded
//! MPSC command queues, bit-identical to the serial [`ShardedFleet`](crate::ShardedFleet)
//! at any worker count.
//!
//! # Why this can be bit-identical at all
//! Shards only interact at steal barriers: between two barriers every
//! shard's evolution is a pure function of its own state (admission,
//! placement, batching, preemption all read one scheduler). So the
//! runtime advances in *phases* — the stretch of global ticks up to the
//! next barrier boundary — farming each shard's ticks out to a fixed
//! worker, then joining every shard back on the coordinator before the
//! barrier runs. However the OS schedules the workers, each shard
//! executes exactly the tick sequence the serial facade would have
//! given it, and the barrier (the only cross-shard step) runs on the
//! coordinator over the very same state. Running jobs never cross a
//! barrier: the steal policy donates queued jobs only, so no job state
//! is ever in flight between threads mid-quantum.
//!
//! # The barrier protocol
//! 1. The coordinator moves each shard's [`FleetClient`] into a
//!    [`WorkerCmd::Run`] command on its worker's **bounded** queue
//!    (capacity = the worker's shard count, so dispatch never blocks).
//! 2. Workers tick their shards concurrently, stopping early at the
//!    first idle tick (idleness is monotone within a phase — no new
//!    work can arrive mid-phase), and send the client back over the
//!    shared done queue with the tick count it actually ran.
//! 3. The coordinator joins all shards, *catches up* early-stopped
//!    shards with the idle ticks the serial path would have issued
//!    (idle ticks still advance telemetry and autosave cadences, so
//!    tick counts must match exactly), then runs the steal barrier —
//!    the same [`run_steal_barrier`] the serial facade calls.
//!
//! # Virtual-time merge order
//! Reports, telemetry and steals merge in ascending shard order on the
//! coordinator, exactly as [`ShardedFleet`](crate::ShardedFleet) merges them; no wall-clock
//! ordering ever reaches the results.

use crate::config::ShardConfig;
use crate::fleet::{merge_reports, restore_clients, run_steal_barrier, shard_dir};
use crate::ring::HashRing;
use lnls_runtime::{
    AdmissionPolicy, CheckpointError, DeltaCheckpointer, FleetClient, FleetReport, JobHandle,
    JobRegistry, JobReport, JobSpec, JobStatus, Scheduler, SchedulerConfig, SearchJob,
    SnapshotStats, SubmitError,
};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::thread::JoinHandle;
use std::time::Duration;

/// A command to a worker thread. The client travels *by value*: while a
/// shard is out on a worker, the coordinator's slot for it is empty, so
/// exactly one thread can ever touch a scheduler.
enum WorkerCmd {
    /// Tick `client` up to `max_ticks` times (stopping early once it
    /// goes idle), then send it home on the done queue.
    Run { shard: usize, client: Box<FleetClient>, max_ticks: u64 },
    /// Exit the worker loop.
    Shutdown,
}

/// A shard coming home at the end of a phase.
struct WorkerDone {
    shard: usize,
    client: Box<FleetClient>,
    /// Ticks actually executed (≤ the phase's `max_ticks`).
    ticks_run: u64,
    /// Whether the last executed tick returned `false` (shard fully
    /// idle: empty queue, nothing running).
    went_idle: bool,
}

/// What the coordinator remembers about each shard's phase.
#[derive(Clone, Copy)]
struct ShardPhase {
    ticks_run: u64,
    went_idle: bool,
}

struct Worker {
    tx: SyncSender<WorkerCmd>,
    join: Option<JoinHandle<()>>,
}

fn worker_loop(rx: Receiver<WorkerCmd>, done: SyncSender<WorkerDone>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            WorkerCmd::Run { shard, mut client, max_ticks } => {
                let mut ticks_run = 0;
                let mut went_idle = false;
                while ticks_run < max_ticks {
                    ticks_run += 1;
                    if !client.tick() {
                        went_idle = true;
                        break;
                    }
                }
                if done.send(WorkerDone { shard, client, ticks_run, went_idle }).is_err() {
                    return; // coordinator gone; nothing left to do
                }
            }
            WorkerCmd::Shutdown => return,
        }
    }
}

/// The concurrent counterpart of [`ShardedFleet`](crate::ShardedFleet): the same facade
/// (submit/tick/report/checkpoint), the same bits, but phases of shard
/// ticks run on `workers` OS threads. See the module docs for the
/// protocol and why results are independent of the worker count and of
/// OS scheduling.
pub struct ParallelFleet {
    cfg: ShardConfig,
    ring: HashRing,
    /// `Some` at every public-method boundary; `None` only while the
    /// shard is out on a worker mid-phase.
    slots: Vec<Option<FleetClient>>,
    workers: Vec<Worker>,
    done_rx: Receiver<WorkerDone>,
    ticks: u64,
    steals: u64,
    checkpointers: Option<Vec<DeltaCheckpointer>>,
    checkpoint_dir: Option<PathBuf>,
}

impl ParallelFleet {
    /// Build a parallel fleet of `shards` schedulers served by
    /// `workers` threads (clamped to `1..=shards`; shard `i` is pinned
    /// to worker `i % workers` for the fleet's lifetime). `template`
    /// and `build_devices` behave exactly as in [`ShardedFleet::new`](crate::ShardedFleet::new).
    pub fn new(
        cfg: ShardConfig,
        policy: AdmissionPolicy,
        shards: usize,
        workers: usize,
        template: SchedulerConfig,
        mut build_devices: impl FnMut(usize) -> lnls_gpu_sim::MultiDevice,
    ) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        let clients = (0..shards)
            .map(|i| {
                let mut shard_cfg = template.clone();
                shard_cfg.id_base = (i as u64) << crate::fleet::SHARD_ID_SHIFT;
                FleetClient::new(Scheduler::new(build_devices(i), shard_cfg), policy.clone())
            })
            .collect();
        Self::assemble(cfg, clients, workers, 0)
    }

    /// Reassemble a parallel fleet from already-built (typically
    /// restored) shard clients — the parallel twin of
    /// [`ShardedFleet::from_clients`](crate::ShardedFleet::from_clients).
    pub fn from_clients(
        cfg: ShardConfig,
        clients: Vec<FleetClient>,
        workers: usize,
        ticks: u64,
    ) -> Self {
        assert!(!clients.is_empty(), "a fleet needs at least one shard");
        Self::assemble(cfg, clients, workers, ticks)
    }

    /// Rebuild a parallel fleet from the latest base + delta chain in
    /// each `shard-NNN` subdirectory of `dir` — the parallel twin of
    /// [`ShardedFleet::restore`](crate::ShardedFleet::restore). Restoration happens entirely on the
    /// coordinator *before* any worker is involved, so a broken chain
    /// surfaces as a typed [`CheckpointError`] naming the exact
    /// segment; it can never panic a worker or hang a barrier.
    pub fn restore(
        cfg: ShardConfig,
        policy: AdmissionPolicy,
        dir: impl AsRef<Path>,
        registry: &JobRegistry,
        ticks: u64,
        rejected: &[u64],
        workers: usize,
    ) -> Result<Self, CheckpointError> {
        let dir = dir.as_ref();
        let clients = restore_clients(dir, &policy, registry, rejected)?;
        let mut fleet = Self::assemble(cfg, clients, workers, ticks);
        fleet.checkpoint_dir = Some(dir.to_path_buf());
        Ok(fleet)
    }

    fn assemble(cfg: ShardConfig, clients: Vec<FleetClient>, workers: usize, ticks: u64) -> Self {
        let shards = clients.len();
        let nworkers = workers.clamp(1, shards);
        let (done_tx, done_rx) = mpsc::sync_channel(shards);
        let workers = (0..nworkers)
            .map(|w| {
                let owned = (0..shards).filter(|s| s % nworkers == w).count();
                let (tx, rx) = mpsc::sync_channel(owned.max(1));
                let done = done_tx.clone();
                let join = std::thread::Builder::new()
                    .name(format!("lnls-par-worker-{w}"))
                    .spawn(move || worker_loop(rx, done))
                    .expect("spawn shard worker");
                Worker { tx, join: Some(join) }
            })
            .collect();
        let ring = HashRing::new(shards, cfg.ring_replicas);
        Self {
            cfg,
            ring,
            slots: clients.into_iter().map(Some).collect(),
            workers,
            done_rx,
            ticks,
            steals: 0,
            checkpointers: None,
            checkpoint_dir: None,
        }
    }

    /// The frozen config this fleet runs under.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// The placement ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of worker threads serving the shards.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Global ticks elapsed (each advanced every shard once).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Jobs moved by steal barriers so far.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// The checkpoint directory, when one was ever attached.
    pub fn checkpoint_dir(&self) -> Option<&Path> {
        self.checkpoint_dir.as_deref()
    }

    fn client(&self, i: usize) -> &FleetClient {
        self.slots[i].as_ref().expect("clients are home between phases")
    }

    /// Borrow shard `i`'s client.
    pub fn shard(&self, i: usize) -> &FleetClient {
        self.client(i)
    }

    /// Mutably borrow shard `i`'s client.
    pub fn shard_mut(&mut self, i: usize) -> &mut FleetClient {
        self.slots[i].as_mut().expect("clients are home between phases")
    }

    /// Queued jobs across all shards.
    pub fn queued_len(&self) -> usize {
        (0..self.slots.len()).map(|i| self.client(i).scheduler().queued_len()).sum()
    }

    /// Running jobs across all shards.
    pub fn running_len(&self) -> usize {
        (0..self.slots.len()).map(|i| self.client(i).scheduler().running_len()).sum()
    }

    /// The shard that owns `tenant` under the current ring.
    pub fn shard_for(&self, tenant: &str) -> usize {
        self.ring.shard_for(tenant)
    }

    /// Route a spec to its tenant's shard and submit it there
    /// (coordinator-side: submissions happen between phases, which is
    /// what keeps admission — and the concurrency limiter's sheds —
    /// deterministic at any worker count).
    pub fn submit_spec<J: SearchJob>(
        &mut self,
        spec: JobSpec<J>,
    ) -> Result<(usize, JobHandle), SubmitError> {
        let shard = self.ring.shard_for(spec.tenant());
        let handle = self.shard_mut(shard).submit_spec(spec)?;
        Ok((shard, handle))
    }

    /// Submit a bare job under the default envelope (tenant
    /// `"default"`).
    pub fn submit<J: SearchJob>(&mut self, job: J) -> Result<(usize, JobHandle), SubmitError> {
        self.submit_spec(JobSpec::new(job))
    }

    /// Fan one phase of up to `max_ticks` ticks out to the workers and
    /// join every shard back. Returns per-shard outcomes.
    fn phase(&mut self, max_ticks: u64) -> Vec<ShardPhase> {
        debug_assert!(max_ticks > 0, "a phase must run at least one tick");
        let shards = self.slots.len();
        let nworkers = self.workers.len();
        for shard in 0..shards {
            let client = self.slots[shard].take().expect("clients are home between phases");
            self.workers[shard % nworkers]
                .tx
                .send(WorkerCmd::Run { shard, client: Box::new(client), max_ticks })
                .expect("worker command queue alive");
        }
        let mut outcomes = vec![ShardPhase { ticks_run: 0, went_idle: false }; shards];
        for _ in 0..shards {
            let done = self.join_one();
            outcomes[done.shard] =
                ShardPhase { ticks_run: done.ticks_run, went_idle: done.went_idle };
            self.slots[done.shard] = Some(*done.client);
        }
        outcomes
    }

    /// Receive one shard from the done queue, converting a dead worker
    /// into a loud coordinator panic instead of a silent barrier hang.
    fn join_one(&mut self) -> WorkerDone {
        loop {
            match self.done_rx.recv_timeout(Duration::from_millis(25)) {
                Ok(done) => return done,
                Err(RecvTimeoutError::Timeout) => {
                    // Workers only exit on Shutdown (never mid-phase),
                    // so a finished thread here means it panicked.
                    if let Some(dead) = self
                        .workers
                        .iter()
                        .position(|w| w.join.as_ref().is_some_and(|j| j.is_finished()))
                    {
                        let join = self.workers[dead].join.take().expect("handle present");
                        let payload = join.join().err();
                        panic!(
                            "shard worker {dead} died mid-phase: {}",
                            payload
                                .as_ref()
                                .and_then(|p| p.downcast_ref::<&str>().copied())
                                .or_else(|| payload
                                    .as_ref()
                                    .and_then(|p| p.downcast_ref::<String>().map(|s| s.as_str())))
                                .unwrap_or("panic payload lost")
                        );
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("every shard worker died mid-phase");
                }
            }
        }
    }

    /// Run the steal barrier when the tick count sits on the cadence —
    /// the exact policy and code path of [`ShardedFleet`](crate::ShardedFleet).
    fn maybe_barrier(&mut self) {
        if self.slots.len() > 1
            && self.cfg.steal_every_ticks > 0
            && self.ticks.is_multiple_of(self.cfg.steal_every_ticks)
        {
            let mut clients: Vec<FleetClient> = self
                .slots
                .iter_mut()
                .map(|s| s.take().expect("clients are home between phases"))
                .collect();
            self.steals += run_steal_barrier(&self.cfg, &mut clients, self.ticks);
            for (slot, client) in self.slots.iter_mut().zip(clients) {
                *slot = Some(client);
            }
        }
    }

    /// Issue the idle ticks the serial path would have run on shards
    /// that went idle before the phase's target tick (idle ticks still
    /// advance telemetry and autosave cadences, so they cannot be
    /// skipped).
    fn catch_up(&mut self, outcomes: &[ShardPhase], target: u64) {
        for (i, o) in outcomes.iter().enumerate() {
            let client = self.slots[i].as_mut().expect("clients are home between phases");
            for _ in o.ticks_run..target {
                client.tick();
            }
        }
    }

    /// Advance every shard one tick — concurrently across workers —
    /// then run the steal barrier when the global tick count hits the
    /// cadence. Returns whether any shard did work. Bit-identical to
    /// [`ShardedFleet::tick`](crate::ShardedFleet::tick).
    pub fn tick(&mut self) -> bool {
        let outcomes = self.phase(1);
        self.ticks += 1;
        self.maybe_barrier();
        outcomes.iter().any(|o| !o.went_idle)
    }

    /// Tick until every shard is drained, in barrier-to-barrier phases
    /// (the fast path: workers run whole stretches of virtual time
    /// without coordinator round-trips). Lands on exactly the tick the
    /// serial [`ShardedFleet::run_until_idle`](crate::ShardedFleet::run_until_idle) would stop at.
    pub fn run_until_idle(&mut self) {
        loop {
            let cadence = self.cfg.steal_every_ticks;
            let k = if self.slots.len() > 1 && cadence > 0 {
                cadence - (self.ticks % cadence)
            } else {
                // No barriers to respect: any chunk works, results are
                // phase-length-independent. 64 amortizes the handoff.
                64
            };
            let outcomes = self.phase(k);
            if outcomes.iter().all(|o| o.went_idle) {
                // Every shard went idle inside the phase: the serial
                // loop stops at the first globally idle tick, which is
                // the deepest first-idle tick across shards.
                let stop = outcomes.iter().map(|o| o.ticks_run).max().unwrap_or(0);
                self.catch_up(&outcomes, stop);
                self.ticks += stop;
                self.maybe_barrier();
                if self.queued_len() == 0 && self.running_len() == 0 {
                    return;
                }
            } else {
                self.catch_up(&outcomes, k);
                self.ticks += k;
                self.maybe_barrier();
            }
        }
    }

    /// Where `handle`'s job currently is, searching every shard.
    pub fn status(&self, handle: JobHandle) -> JobStatus {
        for i in 0..self.slots.len() {
            match self.client(i).status(handle) {
                JobStatus::Unknown => continue,
                s => return s,
            }
        }
        JobStatus::Unknown
    }

    /// The finished report for `handle`, if any shard completed it.
    pub fn report(&self, handle: JobHandle) -> Option<&JobReport> {
        (0..self.slots.len()).find_map(|i| self.client(i).report(handle))
    }

    /// Request cancellation wherever the job lives.
    pub fn cancel(&mut self, handle: JobHandle) -> bool {
        (0..self.slots.len()).any(|i| {
            self.slots[i].as_mut().expect("clients are home between phases").cancel(handle)
        })
    }

    /// Tick until `handle`'s job reaches a terminal state, then return
    /// its report.
    ///
    /// # Panics
    /// When no shard knows the job.
    pub fn await_report(&mut self, handle: JobHandle) -> &JobReport {
        while matches!(self.status(handle), JobStatus::Queued | JobStatus::Running) {
            self.tick();
        }
        self.report(handle).expect("await_report on a job no shard knows")
    }

    /// Every finished report across the fleet, shard-major.
    pub fn reports(&self) -> impl Iterator<Item = &JobReport> {
        self.slots
            .iter()
            .flat_map(|s| s.as_ref().expect("clients are home between phases").reports())
    }

    /// The fleet-wide summary, merged in ascending shard order with the
    /// same rules as [`ShardedFleet::fleet_report`](crate::ShardedFleet::fleet_report) — bit-identical to
    /// it at any worker count.
    pub fn fleet_report(&self) -> FleetReport {
        if self.slots.len() == 1 {
            return self.client(0).fleet_report();
        }
        let reports: Vec<FleetReport> =
            (0..self.slots.len()).map(|i| self.client(i).fleet_report()).collect();
        merge_reports(&reports)
    }

    /// Arm per-shard delta checkpointing under `dir` — the parallel
    /// twin of [`ShardedFleet::with_checkpoint_dir`](crate::ShardedFleet::with_checkpoint_dir).
    pub fn with_checkpoint_dir(
        mut self,
        dir: impl Into<PathBuf>,
        deltas_per_base: u64,
    ) -> io::Result<Self> {
        let dir = dir.into();
        let mut checkpointers = Vec::with_capacity(self.slots.len());
        for i in 0..self.slots.len() {
            checkpointers.push(DeltaCheckpointer::open(shard_dir(&dir, i), deltas_per_base)?);
        }
        self.checkpointers = Some(checkpointers);
        self.checkpoint_dir = Some(dir);
        Ok(self)
    }

    /// Snapshot every shard (coordinator-side, between phases — no
    /// worker ever holds a client while it is being serialized),
    /// returning per-shard segment stats in shard order.
    ///
    /// # Panics
    /// When checkpointing was not armed via
    /// [`with_checkpoint_dir`](Self::with_checkpoint_dir).
    pub fn snapshot(&mut self) -> Result<Vec<SnapshotStats>, CheckpointError> {
        let checkpointers =
            self.checkpointers.as_mut().expect("snapshot() requires with_checkpoint_dir()");
        self.slots
            .iter()
            .zip(checkpointers)
            .map(|(shard, ckpt)| {
                ckpt.snapshot(shard.as_ref().expect("clients are home between phases").scheduler())
            })
            .collect()
    }
}

impl Drop for ParallelFleet {
    fn drop(&mut self) {
        for worker in &self.workers {
            let _ = worker.tx.send(WorkerCmd::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_core::{BitString, SearchConfig, TabuSearch};
    use lnls_gpu_sim::{DeviceSpec, MultiDevice};
    use lnls_neighborhood::{Neighborhood, TwoHamming};
    use lnls_problems::OneMax;
    use lnls_runtime::BinaryJob;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn onemax_job(i: u64, iters: u64) -> BinaryJob<OneMax, TwoHamming> {
        let n = 24;
        let hood = TwoHamming::new(n);
        let mut rng = StdRng::seed_from_u64(i);
        let init = BitString::random(&mut rng, n);
        let search = TabuSearch::paper(SearchConfig::budget(iters).with_seed(i), hood.size());
        BinaryJob::new(format!("onemax-{i}"), OneMax::new(n), hood, search, init)
    }

    fn template() -> SchedulerConfig {
        SchedulerConfig {
            quantum_iters: Some(8),
            max_batch: 4,
            telemetry_every_ticks: Some(1),
            ..Default::default()
        }
    }

    fn serial(shards: usize) -> crate::ShardedFleet {
        crate::ShardedFleet::new(
            ShardConfig::current(),
            AdmissionPolicy::unbounded(),
            shards,
            template(),
            |_| MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
        )
    }

    fn parallel(shards: usize, workers: usize) -> ParallelFleet {
        ParallelFleet::new(
            ShardConfig::current(),
            AdmissionPolicy::unbounded(),
            shards,
            workers,
            template(),
            |_| MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
        )
    }

    /// Pile jobs on a couple of tenants so steal barriers genuinely
    /// fire, on serial and parallel fleets alike.
    fn submit_load(submit: &mut dyn FnMut(JobSpec<BinaryJob<OneMax, TwoHamming>>)) {
        for i in 0..14 {
            let spec = JobSpec::new(onemax_job(i, 80)).for_tenant(format!("tenant-{}", i % 3));
            submit(spec);
        }
    }

    #[test]
    fn parallel_run_matches_serial_bits_at_every_worker_count() {
        let mut want = serial(4);
        submit_load(&mut |spec| {
            want.submit_spec(spec).unwrap();
        });
        want.run_until_idle();
        let want_report = format!("{:?}", want.fleet_report());
        assert!(want.steals() > 0, "the load must be lopsided enough to steal");

        for workers in [1, 2, 3, 4, 8] {
            let mut par = parallel(4, workers);
            assert_eq!(par.worker_count(), workers.min(4), "workers clamp to the shard count");
            submit_load(&mut |spec| {
                par.submit_spec(spec).unwrap();
            });
            par.run_until_idle();
            assert_eq!(
                format!("{:?}", par.fleet_report()),
                want_report,
                "{workers} workers must reproduce the serial bits"
            );
            assert_eq!(par.steals(), want.steals(), "{workers} workers: same steals");
            assert_eq!(par.ticks(), want.ticks(), "{workers} workers: same tick count");
        }
    }

    #[test]
    fn single_tick_interleaving_matches_serial() {
        let mut want = serial(2);
        let mut par = parallel(2, 2);
        submit_load(&mut |spec| {
            want.submit_spec(spec).unwrap();
        });
        submit_load(&mut |spec| {
            par.submit_spec(spec).unwrap();
        });
        loop {
            let a = want.tick();
            let b = par.tick();
            assert_eq!(a, b, "tick {} must report the same progress", want.ticks());
            if !a && want.queued_len() == 0 && want.running_len() == 0 {
                break;
            }
        }
        assert_eq!(format!("{:?}", par.fleet_report()), format!("{:?}", want.fleet_report()));
    }

    #[test]
    fn parallel_snapshot_restore_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("lnls-par-restore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // No telemetry here: series are not checkpointed (a restored
        // fleet starts a fresh one), so a crashed run can only match an
        // uninterrupted one bit-for-bit with sampling off — the same
        // deal the serial restore test strikes.
        let plain = || {
            ParallelFleet::new(
                ShardConfig::current(),
                AdmissionPolicy::unbounded(),
                2,
                2,
                SchedulerConfig { quantum_iters: Some(8), max_batch: 4, ..Default::default() },
                |_| MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
            )
        };

        let mut reference = plain();
        submit_load(&mut |spec| {
            reference.submit_spec(spec).unwrap();
        });
        reference.run_until_idle();
        let want = format!("{:?}", reference.fleet_report());

        let mut crashing = plain().with_checkpoint_dir(&dir, 8).unwrap();
        submit_load(&mut |spec| {
            crashing.submit_spec(spec).unwrap();
        });
        for _ in 0..6 {
            crashing.tick();
            crashing.snapshot().unwrap();
        }
        let ticks = crashing.ticks();
        drop(crashing); // every worker thread joins here — a full crash

        let registry = JobRegistry::with_builtin();
        let mut revived = ParallelFleet::restore(
            ShardConfig::current(),
            AdmissionPolicy::unbounded(),
            &dir,
            &registry,
            ticks,
            &[],
            2,
        )
        .unwrap();
        revived.run_until_idle();
        assert_eq!(format!("{:?}", revived.fleet_report()), want);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
