//! [`ShardedFleet`]: N schedulers behind one facade, with consistent-
//! hash placement, a deterministic steal barrier, and per-shard delta
//! checkpoints.

use crate::config::ShardConfig;
use crate::ring::{fnv1a, HashRing};
use lnls_runtime::{
    percentile_sorted, AdmissionPolicy, CheckpointError, DeltaCheckpointer, FleetClient,
    FleetReport, JobHandle, JobRegistry, JobReport, JobSpec, JobStatus, Scheduler, SchedulerConfig,
    SearchJob, SnapshotStats, SubmitError, Telemetry, TenantStat,
};
use std::io;
use std::path::{Path, PathBuf};

/// Bit position of the shard index inside a [`JobId`]: shard `i` mints
/// ids from `i << SHARD_ID_SHIFT`, so ids stay globally unique however
/// many times stealing moves a job — and shard 0, based at 0, mints
/// exactly the ids a bare scheduler would.
///
/// [`JobId`]: lnls_runtime::JobId
pub const SHARD_ID_SHIFT: u32 = 40;

/// A horizontal fleet of [`FleetClient`]s (one scheduler + device
/// group per shard) behind a single submit/tick/report facade.
///
/// # Placement
/// Tenants are placed by consistent hashing over a virtual-node ring
/// (see [`HashRing`]); every job of a tenant lands on the tenant's
/// shard, so per-tenant admission caps and fairness stay local to one
/// scheduler.
///
/// # The steal barrier
/// Shards drift out of balance (bursty tenants, uneven job sizes), so
/// every [`ShardConfig::steal_every_ticks`] global ticks the fleet
/// runs a *steal barrier*. The policy is deliberately boring and fully
/// deterministic, in this order:
///
/// 1. **Takers** are shards with an empty queue, visited in ascending
///    shard index.
/// 2. **Donors** are shards with at least two queued jobs (a donation
///    never empties a donor). The donor for each taker is the one with
///    the deepest queue; ties break by the FNV-1a hash of
///    `(steal_seed, global tick, shard index)` — a seeded rotation so
///    one shard is not structurally favoured — and any remaining tie
///    by smaller index.
/// 3. The donor gives its **newest** queued job (highest submission
///    sequence): it has waited least, so moving it perturbs the
///    donor's fairness order least.
/// 4. At most [`ShardConfig::steal_max_per_barrier`] jobs move per
///    barrier, fleet-wide.
///
/// Running jobs are never stolen. Replays are bit-identical because
/// every input to the policy (queue depths, tick count, seed, shard
/// order) is itself deterministic.
///
/// # Checkpoints
/// [`with_checkpoint_dir`](Self::with_checkpoint_dir) arms one
/// [`DeltaCheckpointer`] per shard (subdirectories `shard-000`,
/// `shard-001`, …); [`snapshot`](Self::snapshot) then writes rotating
/// base + delta segments whose size tracks per-tick churn, not fleet
/// size. [`restore`](Self::restore) rebuilds the fleet from the latest
/// chain in each subdirectory.
pub struct ShardedFleet {
    cfg: ShardConfig,
    ring: HashRing,
    shards: Vec<FleetClient>,
    ticks: u64,
    steals: u64,
    checkpointers: Option<Vec<DeltaCheckpointer>>,
    checkpoint_dir: Option<PathBuf>,
}

impl ShardedFleet {
    /// Build a fleet of `shards` schedulers. `template` supplies every
    /// scheduler knob except [`id_base`](SchedulerConfig::id_base),
    /// which the fleet overrides per shard (`i << `[`SHARD_ID_SHIFT`])
    /// to keep job ids globally unique across steals. `build_devices`
    /// supplies each shard's device group.
    pub fn new(
        cfg: ShardConfig,
        policy: AdmissionPolicy,
        shards: usize,
        template: SchedulerConfig,
        mut build_devices: impl FnMut(usize) -> lnls_gpu_sim::MultiDevice,
    ) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        let shards = (0..shards)
            .map(|i| {
                let mut shard_cfg = template.clone();
                shard_cfg.id_base = (i as u64) << SHARD_ID_SHIFT;
                FleetClient::new(Scheduler::new(build_devices(i), shard_cfg), policy.clone())
            })
            .collect::<Vec<_>>();
        let ring = HashRing::new(shards.len(), cfg.ring_replicas);
        Self { cfg, ring, shards, ticks: 0, steals: 0, checkpointers: None, checkpoint_dir: None }
    }

    /// Reassemble a fleet from already-built (typically restored)
    /// shard clients — the driver's crash path restores each shard
    /// from checkpoint bytes and hands them back here. `ticks`
    /// realigns the steal barrier phase to the tick count at snapshot
    /// time. The steal counter restarts at zero (it is informational
    /// and never feeds back into scheduling).
    pub fn from_clients(cfg: ShardConfig, shards: Vec<FleetClient>, ticks: u64) -> Self {
        assert!(!shards.is_empty(), "a fleet needs at least one shard");
        let ring = HashRing::new(shards.len(), cfg.ring_replicas);
        Self { cfg, ring, shards, ticks, steals: 0, checkpointers: None, checkpoint_dir: None }
    }

    /// The frozen config this fleet runs under.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// The placement ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrow shard `i`'s client.
    pub fn shard(&self, i: usize) -> &FleetClient {
        &self.shards[i]
    }

    /// Mutably borrow shard `i`'s client.
    pub fn shard_mut(&mut self, i: usize) -> &mut FleetClient {
        &mut self.shards[i]
    }

    /// Global ticks elapsed (each advances every shard once).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Jobs moved by steal barriers so far.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// The checkpoint directory, when one was ever attached (set by
    /// [`with_checkpoint_dir`](Self::with_checkpoint_dir) and
    /// remembered across [`restore`](Self::restore)).
    pub fn checkpoint_dir(&self) -> Option<&Path> {
        self.checkpoint_dir.as_deref()
    }

    /// Queued jobs across all shards.
    pub fn queued_len(&self) -> usize {
        self.shards.iter().map(|s| s.scheduler().queued_len()).sum()
    }

    /// Running jobs across all shards.
    pub fn running_len(&self) -> usize {
        self.shards.iter().map(|s| s.scheduler().running_len()).sum()
    }

    /// The shard that owns `tenant` under the current ring.
    pub fn shard_for(&self, tenant: &str) -> usize {
        self.ring.shard_for(tenant)
    }

    /// Route a spec to its tenant's shard and submit it there. Returns
    /// the shard index with the handle; admission failures are the
    /// target shard's.
    pub fn submit_spec<J: SearchJob>(
        &mut self,
        spec: JobSpec<J>,
    ) -> Result<(usize, JobHandle), SubmitError> {
        let shard = self.ring.shard_for(spec.tenant());
        let handle = self.shards[shard].submit_spec(spec)?;
        Ok((shard, handle))
    }

    /// Submit a bare job under the default envelope (tenant
    /// `"default"`).
    pub fn submit<J: SearchJob>(&mut self, job: J) -> Result<(usize, JobHandle), SubmitError> {
        self.submit_spec(JobSpec::new(job))
    }

    /// Advance every shard one tick (ascending shard order), then run
    /// the steal barrier when the global tick count hits the cadence.
    /// Returns whether any shard did work.
    pub fn tick(&mut self) -> bool {
        let mut any = false;
        for shard in &mut self.shards {
            any |= shard.tick();
        }
        self.ticks += 1;
        if self.shards.len() > 1
            && self.cfg.steal_every_ticks > 0
            && self.ticks.is_multiple_of(self.cfg.steal_every_ticks)
        {
            self.steal_barrier();
        }
        any
    }

    /// Tick until every shard is drained.
    pub fn run_until_idle(&mut self) {
        while self.tick() || self.queued_len() > 0 || self.running_len() > 0 {}
    }

    /// One steal barrier (see the type docs for the policy).
    fn steal_barrier(&mut self) {
        self.steals += run_steal_barrier(&self.cfg, &mut self.shards, self.ticks);
    }

    /// Where `handle`'s job currently is, searching every shard
    /// (stealing may have moved it off the shard that minted the id).
    pub fn status(&self, handle: JobHandle) -> JobStatus {
        for shard in &self.shards {
            match shard.status(handle) {
                JobStatus::Unknown => continue,
                s => return s,
            }
        }
        JobStatus::Unknown
    }

    /// The finished report for `handle`, if any shard completed it.
    pub fn report(&self, handle: JobHandle) -> Option<&JobReport> {
        self.shards.iter().find_map(|s| s.report(handle))
    }

    /// Request cancellation wherever the job lives.
    pub fn cancel(&mut self, handle: JobHandle) -> bool {
        self.shards.iter_mut().any(|s| s.cancel(handle))
    }

    /// Tick until `handle`'s job reaches a terminal state, then return
    /// its report.
    ///
    /// # Panics
    /// When no shard knows the job.
    pub fn await_report(&mut self, handle: JobHandle) -> &JobReport {
        while matches!(self.status(handle), JobStatus::Queued | JobStatus::Running) {
            self.tick();
        }
        self.report(handle).expect("await_report on a job no shard knows")
    }

    /// Every finished report across the fleet, shard-major.
    pub fn reports(&self) -> impl Iterator<Item = &JobReport> {
        self.shards.iter().flat_map(|s| s.reports())
    }

    /// The fleet-wide summary. One shard returns its report verbatim
    /// (a 1-shard fleet is byte-for-byte a bare scheduler run); more
    /// shards merge: counts and serialized seconds sum, makespans max,
    /// per-device vectors concatenate shard-major, and the fairness
    /// aggregates (means, maxima, percentiles) are recomputed over the
    /// union of per-job rows — exactly the statistics one scheduler
    /// holding all jobs would report. Telemetry merges sample-by-sample
    /// across shards when every shard recorded a series (shards tick in
    /// lockstep, so samples align index for index; counts sum, device
    /// columns concatenate shard-major, the clock maxes); per-shard
    /// series live on the shard reports.
    pub fn fleet_report(&self) -> FleetReport {
        if self.shards.len() == 1 {
            return self.shards[0].fleet_report();
        }
        let reports: Vec<FleetReport> = self.shards.iter().map(|s| s.fleet_report()).collect();
        merge_reports(&reports)
    }

    /// Arm per-shard delta checkpointing under `dir` (subdirectories
    /// `shard-000`, `shard-001`, …), rotating to a fresh base every
    /// `deltas_per_base` deltas. Re-arming after a
    /// [`restore`](Self::restore) starts a new epoch on the first
    /// [`snapshot`](Self::snapshot).
    pub fn with_checkpoint_dir(
        mut self,
        dir: impl Into<PathBuf>,
        deltas_per_base: u64,
    ) -> io::Result<Self> {
        let dir = dir.into();
        let mut checkpointers = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            checkpointers.push(DeltaCheckpointer::open(shard_dir(&dir, i), deltas_per_base)?);
        }
        self.checkpointers = Some(checkpointers);
        self.checkpoint_dir = Some(dir);
        Ok(self)
    }

    /// Snapshot every shard (a base or a delta each, on the rotation
    /// cadence), returning per-shard segment stats in shard order.
    ///
    /// # Panics
    /// When checkpointing was not armed via
    /// [`with_checkpoint_dir`](Self::with_checkpoint_dir).
    pub fn snapshot(&mut self) -> Result<Vec<SnapshotStats>, CheckpointError> {
        let checkpointers =
            self.checkpointers.as_mut().expect("snapshot() requires with_checkpoint_dir()");
        self.shards
            .iter()
            .zip(checkpointers)
            .map(|(shard, ckpt)| ckpt.snapshot(shard.scheduler()))
            .collect()
    }

    /// Rebuild a fleet from the latest base + delta chain in each
    /// `shard-NNN` subdirectory of `dir`. `ticks` realigns the steal
    /// barrier phase (pass the tick count at snapshot time);
    /// `rejected` restores each shard client's admission-rejection
    /// counter (missing entries default to 0). Checkpointing comes
    /// back disarmed — call
    /// [`with_checkpoint_dir`](Self::with_checkpoint_dir) to resume
    /// snapshotting.
    pub fn restore(
        cfg: ShardConfig,
        policy: AdmissionPolicy,
        dir: impl AsRef<Path>,
        registry: &JobRegistry,
        ticks: u64,
        rejected: &[u64],
    ) -> Result<Self, CheckpointError> {
        let dir = dir.as_ref();
        let shards = restore_clients(dir, &policy, registry, rejected)?;
        let ring = HashRing::new(shards.len(), cfg.ring_replicas);
        Ok(Self {
            cfg,
            ring,
            shards,
            ticks,
            steals: 0,
            checkpointers: None,
            checkpoint_dir: Some(dir.to_path_buf()),
        })
    }
}

pub(crate) fn shard_dir(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard-{i:03}"))
}

/// One steal barrier over `shards` at global tick `ticks` (see the
/// [`ShardedFleet`] type docs for the policy). Returns how many jobs
/// moved. Shared verbatim by the serial facade and the parallel
/// runtime's coordinator: the barrier is pure shard-state → shard-state,
/// so both paths steal bit-identically.
pub(crate) fn run_steal_barrier(cfg: &ShardConfig, shards: &mut [FleetClient], ticks: u64) -> u64 {
    let mut budget = cfg.steal_max_per_barrier;
    let mut steals = 0;
    if budget == 0 {
        return steals;
    }
    let takers: Vec<usize> =
        (0..shards.len()).filter(|&i| shards[i].scheduler().queued_len() == 0).collect();
    for taker in takers {
        if budget == 0 {
            break;
        }
        // Deepest queue wins; ties rotate by seeded hash, then
        // fall to the smaller index. `(depth, !hash, !idx)` max =
        // (max depth, min hash, min idx).
        let donor = (0..shards.len())
            .filter(|&i| i != taker && shards[i].scheduler().queued_len() >= 2)
            .max_by_key(|&i| {
                let depth = shards[i].scheduler().queued_len();
                let mut key = [0u8; 24];
                key[..8].copy_from_slice(&cfg.steal_seed.to_le_bytes());
                key[8..16].copy_from_slice(&ticks.to_le_bytes());
                key[16..].copy_from_slice(&(i as u64).to_le_bytes());
                (depth, !fnv1a(&key), !(i as u64))
            });
        let Some(donor) = donor else { break };
        let id =
            shards[donor].scheduler().newest_queued().expect("donor has at least two queued jobs");
        let stolen = shards[donor].donate_queued(id).expect("newest_queued returned a queued id");
        shards[taker].adopt(stolen);
        steals += 1;
        budget -= 1;
    }
    steals
}

/// Rebuild shard clients from the latest base + delta chain in each
/// `shard-NNN` subdirectory of `dir` — the common restore walk behind
/// [`ShardedFleet::restore`] and the parallel facade's restore.
pub(crate) fn restore_clients(
    dir: &Path,
    policy: &AdmissionPolicy,
    registry: &JobRegistry,
    rejected: &[u64],
) -> Result<Vec<FleetClient>, CheckpointError> {
    let mut shards = Vec::new();
    loop {
        let sub = shard_dir(dir, shards.len());
        if !sub.is_dir() {
            break;
        }
        let store = lnls_runtime::CheckpointStore::open(&sub)
            .map_err(|source| CheckpointError::Io { segment: sub.display().to_string(), source })?;
        let checkpoint = store.load_latest(registry)?;
        let scheduler = Scheduler::restore(checkpoint);
        let rejected_count = rejected.get(shards.len()).copied().unwrap_or(0);
        shards.push(FleetClient::resume(scheduler, policy.clone(), rejected_count));
    }
    if shards.is_empty() {
        return Err(CheckpointError::Empty { dir: dir.display().to_string() });
    }
    Ok(shards)
}

/// Merge per-shard reports into one fleet-wide report (see
/// [`ShardedFleet::fleet_report`] for the field-by-field semantics).
pub(crate) fn merge_reports(reports: &[FleetReport]) -> FleetReport {
    let mut merged = reports[0].clone();
    for r in &reports[1..] {
        merged.jobs_completed += r.jobs_completed;
        merged.jobs_cancelled += r.jobs_cancelled;
        merged.jobs_rejected += r.jobs_rejected;
        merged.jobs_queued += r.jobs_queued;
        merged.jobs_running += r.jobs_running;
        merged.makespan_s = merged.makespan_s.max(r.makespan_s);
        merged.serialized_s += r.serialized_s;
        merged.device_busy_s.extend_from_slice(&r.device_busy_s);
        merged.cpu_busy_s.extend_from_slice(&r.cpu_busy_s);
        merged.fused_launches += r.fused_launches;
        merged.launches_saved += r.launches_saved;
        merged.preemptions += r.preemptions;
        merged.autosaves += r.autosaves;
        merged.iterations_executed += r.iterations_executed;
        merged.stream_makespan_s = merged.stream_makespan_s.max(r.stream_makespan_s);
        merged.stream_serialized_s += r.stream_serialized_s;
        merged.spans += r.spans;
        merged.span_iterations += r.span_iterations;
        merged.launch_overhead_saved_s += r.launch_overhead_saved_s;
        merged.tenant_stats.extend(r.tenant_stats.iter().cloned());
        merged.fleet_book.add(&r.fleet_book);
    }
    // Telemetry: the facades tick every shard in lockstep, so series
    // recorded at the same cadence align index for index and merge
    // sample-by-sample (counts sum, devices concatenate shard-major,
    // the clock maxes — see [`Telemetry::merge`]). If any shard ran
    // unsampled there is no aligned fleet-wide series; shard 0's (the
    // observed shard, by the same convention drivers use for event
    // sinks) then stands in, which `merged` already carries.
    if let Some(series) =
        reports.iter().map(|r| r.telemetry.as_ref()).collect::<Option<Vec<&Telemetry>>>()
    {
        merged.telemetry = Some(Telemetry::merge(&series));
    }
    merged.speedup_vs_serial =
        if merged.makespan_s > 0.0 { merged.serialized_s / merged.makespan_s } else { 1.0 };
    merged.jobs_per_sim_s = if merged.makespan_s > 0.0 {
        merged.jobs_completed as f64 / merged.makespan_s
    } else {
        0.0
    };
    // Utilization is against the *fleet* makespan: a shard that
    // finished early idles (from the fleet's point of view) until the
    // slowest shard drains.
    merged.device_utilization = merged
        .device_busy_s
        .iter()
        .map(|&busy| if merged.makespan_s > 0.0 { busy / merged.makespan_s } else { 0.0 })
        .collect();
    // Fairness aggregates recomputed over the union of per-job rows,
    // mirroring `Scheduler::fleet_report` (rejected rows excluded).
    let served: Vec<&TenantStat> = merged.tenant_stats.iter().filter(|t| !t.rejected).collect();
    merged.max_wait_s = served.iter().map(|t| t.wait_s).fold(0.0, f64::max);
    merged.max_turnaround_s = served.iter().map(|t| t.turnaround_s).fold(0.0, f64::max);
    let count = served.len().max(1) as f64;
    merged.mean_wait_s = served.iter().map(|t| t.wait_s).sum::<f64>() / count;
    merged.mean_turnaround_s = served.iter().map(|t| t.turnaround_s).sum::<f64>() / count;
    let mut waits: Vec<f64> = served.iter().map(|t| t.wait_s).collect();
    waits.sort_by(f64::total_cmp);
    let mut turnarounds: Vec<f64> = served.iter().map(|t| t.turnaround_s).collect();
    turnarounds.sort_by(f64::total_cmp);
    merged.wait_p50_s = percentile_sorted(&waits, 0.50);
    merged.wait_p95_s = percentile_sorted(&waits, 0.95);
    merged.wait_p99_s = percentile_sorted(&waits, 0.99);
    merged.turnaround_p50_s = percentile_sorted(&turnarounds, 0.50);
    merged.turnaround_p95_s = percentile_sorted(&turnarounds, 0.95);
    merged.turnaround_p99_s = percentile_sorted(&turnarounds, 0.99);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_core::{BitString, SearchConfig, TabuSearch};
    use lnls_gpu_sim::{DeviceSpec, MultiDevice};
    use lnls_neighborhood::{Neighborhood, TwoHamming};
    use lnls_problems::OneMax;
    use lnls_runtime::BinaryJob;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn onemax_job(i: u64, iters: u64) -> BinaryJob<OneMax, TwoHamming> {
        let n = 24;
        let hood = TwoHamming::new(n);
        let mut rng = StdRng::seed_from_u64(i);
        let init = BitString::random(&mut rng, n);
        let search = TabuSearch::paper(SearchConfig::budget(iters).with_seed(i), hood.size());
        BinaryJob::new(format!("onemax-{i}"), OneMax::new(n), hood, search, init)
    }

    fn fleet(shards: usize) -> ShardedFleet {
        ShardedFleet::new(
            ShardConfig::current(),
            AdmissionPolicy::unbounded(),
            shards,
            SchedulerConfig::default(),
            |_| MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
        )
    }

    /// A tenant name the current ring places on `shard` of a
    /// `shards`-wide fleet.
    fn tenant_on(f: &ShardedFleet, shard: usize) -> String {
        (0..).map(|i| format!("tenant-{i}")).find(|t| f.shard_for(t) == shard).unwrap()
    }

    #[test]
    fn one_shard_fleet_matches_bare_client_bit_for_bit() {
        let mut sharded = fleet(1);
        let mut bare = FleetClient::new(
            Scheduler::new(
                MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
                SchedulerConfig::default(),
            ),
            AdmissionPolicy::unbounded(),
        );
        for i in 0..6 {
            let spec = JobSpec::new(onemax_job(i, 40)).for_tenant(format!("t{}", i % 3));
            let (shard, _) = sharded.submit_spec(spec).unwrap();
            assert_eq!(shard, 0);
            let spec = JobSpec::new(onemax_job(i, 40)).for_tenant(format!("t{}", i % 3));
            bare.submit_spec(spec).unwrap();
        }
        sharded.run_until_idle();
        bare.run_until_idle();
        assert_eq!(
            format!("{:?}", sharded.fleet_report()),
            format!("{:?}", bare.fleet_report()),
            "a 1-shard fleet must be byte-for-byte a bare scheduler run"
        );
        assert_eq!(sharded.steals(), 0);
    }

    #[test]
    fn steal_barrier_moves_queued_work_to_idle_shards() {
        let mut f = fleet(2);
        // Pile every job on one shard's tenant; the other starts idle.
        let loaded = tenant_on(&f, 0);
        let mut handles = Vec::new();
        for i in 0..10 {
            let spec = JobSpec::new(onemax_job(i, 60)).for_tenant(loaded.clone());
            let (shard, h) = f.submit_spec(spec).unwrap();
            assert_eq!(shard, 0, "all jobs routed to the loaded shard");
            handles.push(h);
        }
        f.run_until_idle();
        assert!(f.steals() > 0, "idle shard never stole from the overloaded one");
        let report = f.fleet_report();
        assert_eq!(report.jobs_completed, 10);
        // Stolen jobs really ran on the taker: its device clock moved.
        assert!(
            report.device_busy_s.iter().all(|&b| b > 0.0),
            "every shard's device should have run something: {:?}",
            report.device_busy_s
        );
    }

    /// The PR 9 gap, pinned: a merged fleet report's telemetry is the
    /// sample-aligned merge of *every* shard's series, not shard 0's
    /// alone.
    #[test]
    fn merged_telemetry_spans_every_shard() {
        let mut f = ShardedFleet::new(
            ShardConfig::current(),
            AdmissionPolicy::unbounded(),
            2,
            SchedulerConfig {
                telemetry_every_ticks: Some(1),
                quantum_iters: Some(8),
                ..Default::default()
            },
            |_| MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
        );
        for shard in 0..2 {
            let tenant = tenant_on(&f, shard);
            for i in 0..4 {
                let spec =
                    JobSpec::new(onemax_job(shard as u64 * 10 + i, 60)).for_tenant(tenant.clone());
                f.submit_spec(spec).unwrap();
            }
        }
        f.run_until_idle();
        let merged = f.fleet_report().telemetry.expect("telemetry was on");
        let s0 = f.shard(0).fleet_report().telemetry.expect("shard 0 sampled");
        let s1 = f.shard(1).fleet_report().telemetry.expect("shard 1 sampled");
        assert_eq!(s0.samples().len(), s1.samples().len(), "lockstep shards sample in lockstep");
        assert_eq!(merged.samples().len(), s0.samples().len());
        for (i, m) in merged.samples().iter().enumerate() {
            let (a, b) = (&s0.samples()[i], &s1.samples()[i]);
            assert_eq!(m.queue_depth, a.queue_depth + b.queue_depth, "sample {i}");
            assert_eq!(m.completed, a.completed + b.completed, "sample {i}");
            assert_eq!(m.now_s, a.now_s.max(b.now_s), "sample {i}");
            assert_eq!(m.device_busy_s.len(), 2, "one column per device fleet-wide");
        }
        // Both shards genuinely contributed load (the gap this pins).
        assert!(
            s1.samples().iter().any(|s| s.queue_depth > 0 || s.running > 0),
            "shard 1 must carry observable load for this pin to mean anything"
        );
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        let run = || {
            let mut f = fleet(3);
            for i in 0..12 {
                let spec = JobSpec::new(onemax_job(i, 50)).for_tenant(format!("tenant-{}", i % 5));
                f.submit_spec(spec).unwrap();
            }
            f.run_until_idle();
            format!("{:?}", f.fleet_report())
        };
        assert_eq!(run(), run(), "same submissions, same config, same report bits");
    }

    /// Two shards, preemption on (so jobs outlive several ticks), all
    /// load on one shard's tenant — a steal is guaranteed at the first
    /// barrier.
    fn lopsided_fleet() -> ShardedFleet {
        ShardedFleet::new(
            ShardConfig::current(),
            AdmissionPolicy::unbounded(),
            2,
            SchedulerConfig { quantum_iters: Some(8), max_batch: 4, ..Default::default() },
            |_| MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
        )
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("lnls-shard-restore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let submit_all = |f: &mut ShardedFleet| {
            let loaded = tenant_on(f, 0);
            for i in 0..10 {
                let spec = JobSpec::new(onemax_job(i, 80)).for_tenant(loaded.clone());
                f.submit_spec(spec).unwrap();
            }
        };
        // Reference: run to completion without interruption.
        let mut reference = lopsided_fleet();
        submit_all(&mut reference);
        reference.run_until_idle();
        let want = format!("{:?}", reference.fleet_report());

        // Crashing run: snapshot every tick (base, then deltas), die
        // after tick 6 — past the tick-4 steal barrier — and resume
        // from disk.
        let mut crashing = lopsided_fleet().with_checkpoint_dir(&dir, 8).unwrap();
        submit_all(&mut crashing);
        for _ in 0..6 {
            crashing.tick();
            crashing.snapshot().unwrap();
        }
        let ticks = crashing.ticks();
        assert!(crashing.steals() > 0, "crash point must be past a steal");
        drop(crashing);

        let registry = JobRegistry::with_builtin();
        let mut revived = ShardedFleet::restore(
            ShardConfig::current(),
            AdmissionPolicy::unbounded(),
            &dir,
            &registry,
            ticks,
            &[],
        )
        .unwrap();
        revived.run_until_idle();
        assert_eq!(
            format!("{:?}", revived.fleet_report()),
            want,
            "resume from base+deltas mid-steal must land on the reference bits"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_of_empty_dir_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("lnls-shard-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let registry = JobRegistry::with_builtin();
        let err = match ShardedFleet::restore(
            ShardConfig::current(),
            AdmissionPolicy::unbounded(),
            &dir,
            &registry,
            0,
            &[],
        ) {
            Ok(_) => panic!("restore of an empty store must fail"),
            Err(e) => e,
        };
        assert!(matches!(err, CheckpointError::Empty { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
