//! Horizontal sharding for the fleet runtime: many schedulers behind
//! one facade.
//!
//! The per-device stack ([`lnls_runtime`]) prices one scheduler
//! driving one device group. This crate adds the horizontal layer the
//! service fleet needs:
//!
//! * [`HashRing`] — consistent-hash tenant → shard placement over
//!   virtual nodes, so adding or removing a shard rebalances `≈ 1/N`
//!   of tenants instead of reshuffling everyone.
//! * [`ShardedFleet`] — N shards, each its own
//!   [`Scheduler`](lnls_runtime::Scheduler) +
//!   [`FleetClient`](lnls_runtime::FleetClient) admission path, with a
//!   deterministic *steal barrier*: on a fixed tick cadence,
//!   overloaded shards donate queued (never running) jobs to idle
//!   shards under a seeded, documented tie-break order, so replays
//!   stay bit-identical.
//! * Delta checkpoints — each shard snapshots through a
//!   [`DeltaCheckpointer`](lnls_runtime::DeltaCheckpointer) (rotating
//!   base + dirty-job deltas), so snapshot cost tracks per-tick churn,
//!   not fleet size.
//! * [`ShardConfig`] — a *versioned* knob set: traces record the
//!   [`CONFIG_VERSION`] they were captured under, and replay mints the
//!   recorded version's frozen semantics even after defaults move.
//! * [`ParallelFleet`] — the true-parallel service runtime: one worker
//!   thread per group of shards, advancing barrier-to-barrier phases in
//!   virtual time behind bounded MPSC queues. Tick ordering, stealing
//!   and report merging are **bit-identical** to [`ShardedFleet`] at
//!   any worker count (the `parallel_fleet` proptest harness pins it
//!   across the whole scenario catalog).
//!
//! A 1-shard fleet degenerates exactly to a bare scheduler: shard 0
//! mints ids from base 0, the steal barrier never fires (no peers),
//! and [`ShardedFleet::fleet_report`] returns the shard's report
//! verbatim — the equivalence the replay proptests pin bit-for-bit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod fleet;
mod par;
mod ring;

pub use config::{ShardConfig, UnknownConfigVersion, CONFIG_VERSION};
pub use fleet::{ShardedFleet, SHARD_ID_SHIFT};
pub use par::ParallelFleet;
pub use ring::{fnv1a, HashRing};
