//! Scratch repro: re-arming a DeltaCheckpointer over a directory that
//! already holds segments from a previous incarnation.

use lnls_core::{BitString, SearchConfig, TabuSearch};
use lnls_gpu_sim::{DeviceSpec, MultiDevice};
use lnls_neighborhood::{Neighborhood, TwoHamming};
use lnls_problems::OneMax;
use lnls_runtime::{
    BinaryJob, CheckpointStore, DeltaCheckpointer, JobRegistry, Scheduler, SchedulerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn job(i: u64, iters: u64) -> BinaryJob<OneMax, TwoHamming> {
    let n = 24;
    let hood = TwoHamming::new(n);
    let mut rng = StdRng::seed_from_u64(i);
    let init = BitString::random(&mut rng, n);
    let search = TabuSearch::paper(SearchConfig::budget(iters).with_seed(i), hood.size());
    BinaryJob::new(format!("j-{i}"), OneMax::new(n), hood, search, init)
}

#[test]
fn rearm_over_existing_store() {
    let dir = std::env::temp_dir().join(format!("lnls-rearm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sched_cfg = SchedulerConfig { quantum_iters: Some(4), ..Default::default() };
    let mut sched =
        Scheduler::new(MultiDevice::new_uniform(1, DeviceSpec::gtx280()), sched_cfg.clone());
    for i in 0..6 {
        sched.submit(job(i, 200));
    }
    // First incarnation: base + several deltas.
    let mut a = DeltaCheckpointer::open(&dir, 8).unwrap();
    for _ in 0..5 {
        sched.tick();
        a.snapshot(&sched).unwrap();
    }
    drop(a);
    let files_before: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    println!("after first incarnation: {files_before:?}");

    // Crash + restore (full checkpoint equivalent), then re-arm over
    // the SAME dir, as the docs describe, and write fewer segments
    // than the first incarnation did.
    let registry = JobRegistry::with_builtin();
    let restored_ckpt = CheckpointStore::open(&dir).unwrap().load_latest(&registry).unwrap();
    let mut sched2 = Scheduler::restore(restored_ckpt);
    let mut b = DeltaCheckpointer::open(&dir, 8).unwrap();
    sched2.tick();
    b.snapshot(&sched2).unwrap(); // writes base-00000001 again
    sched2.tick();
    b.snapshot(&sched2).unwrap(); // delta-00000001-00000001
    drop(b);
    let files_after: Vec<_> = {
        let mut v: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        v.sort();
        v
    };
    println!("after re-arm: {files_after:?}");

    // What does a subsequent restore see?
    let result = CheckpointStore::open(&dir).unwrap().load_latest(&registry);
    let want = format!("{:?}", sched2.checkpoint().to_bytes().len());
    match result {
        Ok(ckpt) => {
            let got = format!("{:?}", ckpt.to_bytes().len());
            println!("restored ticks={} want ticks={}", ckpt.ticks(), sched2.checkpoint().ticks());
            assert_eq!(
                ckpt.ticks(),
                sched2.checkpoint().ticks(),
                "restored state is stale (bytes {got} vs {want})"
            );
        }
        Err(e) => panic!("load_latest failed after re-arm: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
