//! Terminal plotting and CSV export for the experiment harness.
//!
//! The paper's Fig. 8 is a line chart (execution time vs instance
//! size, CPU vs GPU-texture series). [`ascii_chart`] renders the same
//! chart in the terminal so `repro fig8 --plot` shows the crossover at
//! a glance; [`csv`] emits the underlying series for external tooling.

use crate::harness::Fig8Point;
use std::fmt::Write as _;

/// A named data series for [`ascii_chart`].
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Glyph used for the series' points.
    pub glyph: char,
    /// `(x, y)` points, in x order.
    pub points: Vec<(f64, f64)>,
}

/// Render one or more series as an ASCII line chart of `width × height`
/// character cells (plus axes). Y is linear, X spans the union of the
/// series' domains.
///
/// # Panics
/// Panics if no series contains a point.
pub fn ascii_chart(series: &[Series], width: usize, height: usize) -> String {
    let width = width.clamp(16, 200);
    let height = height.clamp(6, 60);
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    assert!(!all.is_empty(), "nothing to plot");
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (0.0f64, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < f64::EPSILON {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < f64::EPSILON {
        y1 = y0 + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let mut prev: Option<(usize, usize)> = None;
        for &(x, y) in &s.points {
            let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            grid[row][col] = s.glyph;
            // connect with a faint line (linear interpolation on columns)
            if let Some((pr, pc)) = prev {
                let steps = col.abs_diff(pc).max(1);
                for t in 1..steps {
                    let c =
                        pc as isize + ((col as isize - pc as isize) * t as isize) / steps as isize;
                    let r =
                        pr as isize + ((row as isize - pr as isize) * t as isize) / steps as isize;
                    let (r, c) = (r as usize, c as usize);
                    if grid[r][c] == ' ' {
                        grid[r][c] = '.';
                    }
                }
            }
            prev = Some((row, col));
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{y1:>10.2} ┤");
    for row in &grid {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{:>10} │{line}", "");
    }
    let _ = writeln!(out, "{y0:>10.2} └{}", "─".repeat(width));
    let _ = writeln!(out, "{:>11}{x0:<12.0}{:>w$}{x1:.0}", "", "", w = width.saturating_sub(24));
    for s in series {
        let _ = writeln!(out, "{:>12} {} = {}", "", s.glyph, s.name);
    }
    out
}

/// CSV for arbitrary rows: `header` then one line per record.
pub fn csv<R: AsRef<[String]>>(header: &[&str], rows: &[R]) -> String {
    let mut out = header.join(",");
    out.push('\n');
    for r in rows {
        out.push_str(&r.as_ref().join(","));
        out.push('\n');
    }
    out
}

/// The Fig. 8 series (CPU and GPU modeled seconds vs `n`) as chart input.
pub fn fig8_series(points: &[Fig8Point]) -> Vec<Series> {
    let cpu = Series {
        name: "CPU (modeled)".into(),
        glyph: 'c',
        points: points.iter().map(|p| (p.n as f64, p.cpu_s)).collect(),
    };
    let gpu = Series {
        name: "GPUTexture (modeled)".into(),
        glyph: 'g',
        points: points.iter().map(|p| (p.n as f64, p.gpu_s)).collect(),
    };
    vec![cpu, gpu]
}

/// The Fig. 8 points as CSV (`m,n,cpu_s,gpu_s,acceleration`).
pub fn fig8_csv(points: &[Fig8Point]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.m.to_string(),
                p.n.to_string(),
                format!("{:.6}", p.cpu_s),
                format!("{:.6}", p.gpu_s),
                format!("{:.3}", p.acceleration()),
            ]
        })
        .collect();
    csv(&["m", "n", "cpu_s", "gpu_s", "acceleration"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<(f64, f64)> {
        v.to_vec()
    }

    #[test]
    fn chart_contains_glyphs_and_legend() {
        let s = vec![
            Series { name: "up".into(), glyph: 'u', points: pts(&[(0.0, 0.0), (10.0, 10.0)]) },
            Series { name: "down".into(), glyph: 'd', points: pts(&[(0.0, 10.0), (10.0, 0.0)]) },
        ];
        let chart = ascii_chart(&s, 40, 10);
        assert!(chart.contains('u') && chart.contains('d'));
        assert!(chart.contains("u = up"));
        assert!(chart.contains("d = down"));
    }

    #[test]
    fn chart_handles_single_point() {
        let s = vec![Series { name: "one".into(), glyph: 'x', points: pts(&[(5.0, 5.0)]) }];
        let chart = ascii_chart(&s, 30, 8);
        assert!(chart.contains('x'));
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_series_rejected() {
        let _ = ascii_chart(&[], 30, 8);
    }

    #[test]
    fn csv_shape() {
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        let text = csv(&["a", "b"], &rows);
        assert_eq!(text, "a,b\n1,2\n");
    }

    #[test]
    fn fig8_csv_rows_align_with_points() {
        let points = vec![
            Fig8Point { m: 101, n: 117, cpu_s: 1.0, gpu_s: 2.0 },
            Fig8Point { m: 201, n: 217, cpu_s: 4.0, gpu_s: 2.0 },
        ];
        let text = fig8_csv(&points);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("101,117,"));
        assert!(lines[2].ends_with("2.000"));
        let series = fig8_series(&points);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].points.len(), 2);
    }
}
