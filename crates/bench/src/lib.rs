//! # lnls-bench — experiment harness for the reproduction
//!
//! Regenerates every results artifact of Luong, Melab & Talbi (LSPP @
//! IPDPS 2010):
//!
//! * [`harness::run_paper_table`] — Tables I, II, III (tabu search on the
//!   PPP with 1/2/3-Hamming neighborhoods);
//! * [`harness::run_fig8`] — Fig. 8 (CPU vs. GPU-texture time over the
//!   size ladder, 10000 iterations);
//! * [`ablation`] — A1–A5: f32-mapping precision, block-size sweep,
//!   texture vs. global memory, multi-GPU partitioning, k=4
//!   neighborhoods;
//! * [`paper`] — the published numbers, embedded for side-by-side output.
//!
//! Entry points: the `repro` binary (`cargo run --release -p lnls-bench
//! --bin repro -- table2`) and the bench targets (`cargo bench`), which
//! print paper-vs-reproduced tables at a reduced default scale
//! (environment overrides: `LNLS_TRIES`, `LNLS_SCALE`, `LNLS_FULL=1`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod harness;
pub mod paper;
pub mod plot;

pub use harness::{
    paper_budget, per_iteration_book, print_comparison, print_fig8, run_fig8, run_instance,
    run_paper_table, Fig8Point, RunOpts,
};
pub use plot::{ascii_chart, fig8_csv, fig8_series, Series};

/// Scale settings taken from the environment (used by bench targets,
/// which cannot take CLI arguments under `cargo bench --workspace`).
pub fn env_opts(default_tries: usize, default_scale: f64) -> RunOpts {
    let tries =
        std::env::var("LNLS_TRIES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_tries);
    let scale =
        std::env::var("LNLS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(default_scale);
    if std::env::var("LNLS_FULL").as_deref() == Ok("1") {
        RunOpts::full()
    } else {
        RunOpts::scaled(tries, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_opts_defaults() {
        let o = env_opts(7, 0.25);
        // Environment may or may not be set in CI; only check the shape.
        assert!(o.tries >= 1);
        assert!(o.iter_scale > 0.0);
    }
}
