//! Experiment runners regenerating the paper's tables and figure.
//!
//! Quality columns (fitness, iterations, #solutions) come from real tabu
//! runs — bit-identical to what the simulated-GPU path would produce (the
//! explorers are interchangeable, enforced by tests), but executed through
//! the fast host evaluator so 50-try campaigns finish on a laptop.
//! Time columns come from the calibrated device/host models: the GPU
//! kernel is profiled per instance (one priced iteration, steady-state)
//! and scaled by the measured iteration counts — exactly how the paper's
//! Table III extrapolates its CPU column from 100-iteration runs.

use crate::paper::PaperRow;
use lnls_core::{
    BitString, Explorer, IncrementalEval, SearchConfig, SearchResult, SequentialExplorer, TableRow,
    TabuSearch, TabuStrategy,
};
use lnls_gpu_sim::TimeBook;
use lnls_neighborhood::{binomial, KHamming};
use lnls_ppp::{GpuExplorerConfig, Ppp, PppGpuExplorer, PppInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Options shared by the table experiments.
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// Independent tabu runs per instance (paper: 50).
    pub tries: usize,
    /// Fraction of the paper's iteration budget `n(n−1)(n−2)/6`.
    pub iter_scale: f64,
    /// Base RNG seed (instances and initial solutions derive from it).
    pub seed: u64,
    /// Worker threads running tries in parallel (0 = all cores).
    pub threads: usize,
    /// GPU backend configuration used for the *time model* columns.
    pub gpu: GpuExplorerConfig,
    /// Tabu memory variant (`None` = the paper's default, a solution
    /// ring of `m/6`).
    pub strategy: Option<TabuStrategy>,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            tries: 50,
            iter_scale: 1.0,
            seed: 2010,
            threads: 0,
            gpu: GpuExplorerConfig::default(),
            strategy: None,
        }
    }
}

impl RunOpts {
    /// The paper's full protocol (50 tries, full budget).
    pub fn full() -> Self {
        Self::default()
    }

    /// A scaled-down protocol for quick regeneration.
    pub fn scaled(tries: usize, iter_scale: f64) -> Self {
        Self { tries, iter_scale, ..Self::default() }
    }

    fn worker_count(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// The paper's iteration budget for solution length `n`.
pub fn paper_budget(n: usize) -> u64 {
    binomial(n as u64, 3)
}

/// Scale a steady-state per-iteration ledger to a whole run.
pub fn scale_book(per_iter: &TimeBook, iters: u64) -> TimeBook {
    let f = iters as f64;
    TimeBook {
        kernel_s: per_iter.kernel_s * f,
        overhead_s: per_iter.overhead_s * f,
        h2d_s: per_iter.h2d_s * f,
        d2h_s: per_iter.d2h_s * f,
        bytes_h2d: (per_iter.bytes_h2d as f64 * f) as u64,
        bytes_d2h: (per_iter.bytes_d2h as f64 * f) as u64,
        launches: (per_iter.launches as f64 * f) as u64,
        host_s: per_iter.host_s * f,
    }
}

/// Price one steady-state tabu iteration of the `k`-Hamming neighborhood
/// on the simulated GPU (upload solution state, launch the evaluation
/// kernel, read the fitness array back) and on the modeled host.
///
/// The first exploration pays profiling and is discarded; the second is
/// the steady state.
pub fn per_iteration_book(problem: &Ppp, k: usize, gpu_cfg: &GpuExplorerConfig) -> TimeBook {
    let n = problem.inst.n();
    let mut rng = StdRng::seed_from_u64(7);
    let s = BitString::random(&mut rng, n);
    let mut state = problem.init_state(&s);
    let mut gpu = PppGpuExplorer::new(problem, k, gpu_cfg.clone());
    let mut out = Vec::new();
    gpu.explore(problem, &s, &mut state, &mut out);
    let warm = Explorer::<Ppp>::book(&gpu).expect("gpu explorer prices work");
    gpu.explore(problem, &s, &mut state, &mut out);
    let done = Explorer::<Ppp>::book(&gpu).expect("gpu explorer prices work");
    done.delta_since(&warm)
}

/// Run one instance: `tries` independent tabu searches (parallelized over
/// host threads), then attach model-predicted CPU/GPU time ledgers.
pub fn run_instance(m: usize, n: usize, k: usize, opts: &RunOpts) -> TableRow {
    let inst = PppInstance::generate(m, n, opts.seed ^ ((m as u64) << 32) ^ n as u64);
    let problem = Ppp::new(inst);
    let hood = KHamming::new(n, k);
    let msize = binomial(n as u64, k as u64);
    let budget = ((paper_budget(n) as f64 * opts.iter_scale).ceil() as u64).max(1);

    let next_try = AtomicUsize::new(0);
    let results: Mutex<Vec<SearchResult>> = Mutex::new(Vec::with_capacity(opts.tries));
    let workers = opts.worker_count().min(opts.tries.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let t = next_try.fetch_add(1, Ordering::Relaxed);
                if t >= opts.tries {
                    break;
                }
                let try_seed = opts
                    .seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((t as u64) << 17)
                    .wrapping_add((k as u64) << 1)
                    .wrapping_add(n as u64);
                let mut rng = StdRng::seed_from_u64(try_seed);
                let init = BitString::random(&mut rng, n);
                let mut explorer = SequentialExplorer::new(hood);
                let mut search =
                    TabuSearch::paper(SearchConfig::budget(budget).with_seed(try_seed), msize);
                if let Some(strategy) = &opts.strategy {
                    search.strategy = strategy.clone();
                }
                let r = search.run(&problem, &mut explorer, init);
                results.lock().expect("no poisoned tries").push(r);
            });
        }
    });

    let mut results = results.into_inner().expect("no poisoned tries");
    // Attach modeled time: steady-state per-iteration cost × iterations.
    let per_iter = per_iteration_book(&problem, k, &opts.gpu);
    for r in &mut results {
        r.book = Some(scale_book(&per_iter, r.iterations));
    }
    TableRow::aggregate(format!("{m} × {n}"), &results)
}

/// Regenerate one of the paper's Tables I–III (`k` = 1, 2, 3).
pub fn run_paper_table(k: usize, opts: &RunOpts) -> Vec<TableRow> {
    PppInstance::paper_sizes().iter().map(|&(m, n)| run_instance(m, n, k, opts)).collect()
}

/// One point of the Fig. 8 scaling study.
#[derive(Clone, Debug)]
pub struct Fig8Point {
    /// Rows.
    pub m: usize,
    /// Columns.
    pub n: usize,
    /// Modeled sequential-CPU seconds for `iterations` tabu iterations.
    pub cpu_s: f64,
    /// Modeled GPU seconds for the same iterations.
    pub gpu_s: f64,
}

impl Fig8Point {
    /// CPU time / GPU time.
    pub fn acceleration(&self) -> f64 {
        self.cpu_s / self.gpu_s
    }
}

/// Regenerate Fig. 8: 1-Hamming tabu cost over the size ladder "on the
/// base of 10000 iterations" (time-only, like the paper's figure).
pub fn run_fig8(
    iterations: u64,
    sizes: &[(usize, usize)],
    gpu_cfg: &GpuExplorerConfig,
    seed: u64,
) -> Vec<Fig8Point> {
    sizes
        .iter()
        .map(|&(m, n)| {
            let inst = PppInstance::generate(m, n, seed ^ ((m as u64) << 32) ^ n as u64);
            let problem = Ppp::new(inst);
            let per_iter = per_iteration_book(&problem, 1, gpu_cfg);
            Fig8Point {
                m,
                n,
                cpu_s: per_iter.host_s * iterations as f64,
                gpu_s: per_iter.gpu_total_s() * iterations as f64,
            }
        })
        .collect()
}

/// Pretty-print a reproduced table next to the paper's published row.
pub fn print_comparison(title: &str, ours: &[TableRow], paper: &[PaperRow]) {
    println!("== {title} ==");
    println!("{}", TableRow::header());
    for (row, p) in ours.iter().zip(paper) {
        println!("{row}");
        println!(
            "  └ paper: fitness {:>5.1}({:<5.1}) iters {:>9.1} sol {:>2}/50  cpu {:>7} gpu {:>7}  accel x{:.1}",
            p.fitness,
            p.std,
            p.iters,
            p.solutions,
            lnls_core::fmt_seconds(p.cpu_s),
            lnls_core::fmt_seconds(p.gpu_s),
            p.acceleration(),
        );
    }
    println!();
}

/// ASCII rendering of the Fig. 8 series (execution time vs size).
pub fn print_fig8(points: &[Fig8Point], iterations: u64) {
    println!("== Fig. 8: PPP GPU acceleration, 1-Hamming, {iterations} iterations ==");
    println!("{:<12} {:>12} {:>12} {:>8}", "size", "CPU time", "GPUTexture", "accel");
    for p in points {
        println!(
            "{:<12} {:>12} {:>12} {:>7.2}x",
            format!("{}-{}", p.m, p.n),
            lnls_core::fmt_seconds(p.cpu_s),
            lnls_core::fmt_seconds(p.gpu_s),
            p.acceleration()
        );
    }
    // Crude bar chart of the acceleration curve.
    let max_a = points.iter().map(|p| p.acceleration()).fold(1.0, f64::max);
    for p in points {
        let bars = ((p.acceleration() / max_a) * 48.0).round() as usize;
        println!("{:>9} |{}", format!("{}-{}", p.m, p.n), "#".repeat(bars.max(1)));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_matches_table_footers() {
        assert_eq!(paper_budget(73), 62_196);
        assert_eq!(paper_budget(117), 260_130);
    }

    #[test]
    fn scale_book_is_linear() {
        let b = TimeBook {
            kernel_s: 0.5,
            overhead_s: 0.1,
            h2d_s: 0.2,
            d2h_s: 0.2,
            bytes_h2d: 100,
            bytes_d2h: 200,
            launches: 1,
            host_s: 10.0,
        };
        let s = scale_book(&b, 4);
        assert!((s.gpu_total_s() - 4.0).abs() < 1e-12);
        assert_eq!(s.launches, 4);
        assert!((s.host_s - 40.0).abs() < 1e-12);
    }

    #[test]
    fn per_iteration_book_is_steady_state() {
        let problem = Ppp::new(PppInstance::generate(31, 31, 3));
        let cfg = GpuExplorerConfig::default();
        let b1 = per_iteration_book(&problem, 2, &cfg);
        let b2 = per_iteration_book(&problem, 2, &cfg);
        assert!((b1.gpu_total_s() - b2.gpu_total_s()).abs() < 1e-9);
        assert_eq!(b1.launches, 1);
        assert!(b1.host_s > 0.0);
    }

    #[test]
    fn run_instance_small_smoke() {
        let opts = RunOpts { tries: 3, iter_scale: 1.0, seed: 1, threads: 2, ..RunOpts::default() };
        // A small instance solvable quickly; budget from n=21.
        let row = run_instance(21, 21, 2, &opts);
        assert_eq!(row.tries, 3);
        assert!(row.mean_iters > 0.0);
        assert!(row.cpu_time_s.is_some() && row.gpu_time_s.is_some());
    }

    #[test]
    fn fig8_point_has_sane_ordering() {
        let pts = run_fig8(100, &[(101, 117), (301, 317)], &GpuExplorerConfig::default(), 5);
        assert_eq!(pts.len(), 2);
        // Larger instances cost more in absolute time on both sides.
        assert!(pts[1].cpu_s > pts[0].cpu_s);
        assert!(pts[1].gpu_s > pts[0].gpu_s);
        // And amortize better on the GPU.
        assert!(pts[1].acceleration() > pts[0].acceleration());
    }

    #[test]
    fn tries_are_deterministic_for_fixed_seed() {
        let opts = RunOpts { tries: 2, iter_scale: 0.5, seed: 9, threads: 1, ..RunOpts::default() };
        let a = run_instance(15, 15, 1, &opts);
        let b = run_instance(15, 15, 1, &opts);
        assert_eq!(a.mean_fitness, b.mean_fitness);
        assert_eq!(a.mean_iters, b.mean_iters);
        assert_eq!(a.solutions, b.solutions);
    }
}
