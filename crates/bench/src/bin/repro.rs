//! `repro` — regenerate the paper's tables and figure from the command
//! line.
//!
//! ```text
//! repro table1|table2|table3|fig8|pipeline|qap|ablations|all
//!       [--tries N] [--scale F] [--seed N] [--threads N]
//!       [--iters N]            # fig8 iteration base (default 10000)
//!       [--full]               # the paper's full protocol (50 tries, full budget)
//!       [--global-mem]         # ε-matrix in global instead of texture memory
//!       [--plot]               # render fig8 as an ASCII chart
//!       [--csv FILE]           # also write fig8 points as CSV
//! ```
//!
//! Default scales are chosen so each command finishes in minutes on a
//! laptop; `--full` reproduces the paper's 50-try, full-budget protocol
//! (hours for table2/table3, exactly as it was for the authors' CPU).

use lnls_bench::{
    ablation, paper, print_comparison, print_fig8, run_fig8, run_paper_table, RunOpts,
};
use lnls_ppp::PppInstance;

struct Args {
    command: String,
    tries: Option<usize>,
    scale: Option<f64>,
    seed: u64,
    threads: usize,
    iters: u64,
    full: bool,
    texture: bool,
    tabu: Option<String>,
    plot: bool,
    csv: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: String::new(),
        tries: None,
        scale: None,
        seed: 2010,
        threads: 0,
        iters: 10_000,
        full: false,
        texture: true,
        tabu: None,
        plot: false,
        csv: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "table1" | "table2" | "table3" | "fig8" | "pipeline" | "qap" | "ablations" | "all" => {
                args.command = a;
            }
            "--tries" => {
                args.tries = Some(
                    it.next()
                        .ok_or("--tries needs a value")?
                        .parse()
                        .map_err(|e| format!("--tries: {e}"))?,
                );
            }
            "--scale" => {
                args.scale = Some(
                    it.next()
                        .ok_or("--scale needs a value")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?,
                );
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--iters" => {
                args.iters = it
                    .next()
                    .ok_or("--iters needs a value")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--full" => args.full = true,
            "--global-mem" => args.texture = false,
            "--plot" => args.plot = true,
            "--csv" => {
                args.csv = Some(it.next().ok_or("--csv needs a file path")?);
            }
            "--tabu" => {
                args.tabu = Some(it.next().ok_or("--tabu needs ring[:LEN] or attr:TENURE")?);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.command.is_empty() {
        return Err("missing command (table1|table2|table3|fig8|ablations|all)".into());
    }
    Ok(args)
}

/// Per-table default scales: quality-preserving where affordable,
/// documented reductions where the full protocol needs hours.
fn opts_for_table(k: usize, args: &Args) -> RunOpts {
    let (def_tries, def_scale) = if args.full {
        (50, 1.0)
    } else {
        match k {
            1 => (50, 1.0),  // full protocol is cheap for 1-Hamming
            2 => (20, 0.2),  // minutes
            _ => (10, 0.01), // 3-Hamming full protocol = days on CPU
        }
    };
    let mut o = RunOpts::scaled(args.tries.unwrap_or(def_tries), args.scale.unwrap_or(def_scale));
    o.seed = args.seed;
    o.threads = args.threads;
    o.gpu.texture = args.texture;
    o.strategy = args.tabu.as_deref().map(|spec| match spec.split_once(':') {
        Some(("attr", t)) => lnls_core::TabuStrategy::Attribute {
            tenure: t.parse().expect("--tabu attr:TENURE needs a number"),
        },
        Some(("ring", l)) => lnls_core::TabuStrategy::SolutionRing {
            len: l.parse().expect("--tabu ring:LEN needs a number"),
        },
        Some(("mring", l)) => lnls_core::TabuStrategy::MoveRing {
            len: l.parse().expect("--tabu mring:LEN needs a number"),
        },
        _ => panic!("--tabu must be ring:LEN, mring:LEN or attr:TENURE, got '{spec}'"),
    });
    o
}

fn run_table(k: usize, args: &Args) {
    let opts = opts_for_table(k, args);
    println!(
        "running table{} ({} tries, {:.3}x iteration budget, seed {})",
        k, opts.tries, opts.iter_scale, opts.seed
    );
    let rows = run_paper_table(k, &opts);
    print_comparison(
        &format!("Table {} — PPP, {}-Hamming tabu search", ["I", "II", "III"][k - 1], k),
        &rows,
        paper::table_for_k(k),
    );
}

fn run_fig8_cmd(args: &Args) {
    let gpu = lnls_ppp::GpuExplorerConfig { texture: args.texture, ..Default::default() };
    let sizes = PppInstance::fig8_sizes();
    let points = run_fig8(args.iters, &sizes, &gpu, args.seed);
    print_fig8(&points, args.iters);
    println!(
        "paper anchors: crossover at {}-{} (x{:.1}), max x{:.1} at {}-{}",
        paper::FIG8_CROSSOVER.0,
        paper::FIG8_CROSSOVER.1,
        paper::FIG8_CROSSOVER_ACCEL,
        paper::FIG8_MAX_ACCEL,
        paper::FIG8_MAX.0,
        paper::FIG8_MAX.1,
    );
    if args.plot {
        println!("\nexecution time vs problem size (the paper's Fig. 8):\n");
        println!("{}", lnls_bench::ascii_chart(&lnls_bench::fig8_series(&points), 72, 18));
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, lnls_bench::fig8_csv(&points)).expect("write csv");
        println!("wrote {} points to {path}", points.len());
    }
}

/// A6: stream pipelining of independent walks (the §V concurrency the
/// synchronous loop leaves on the table).
fn run_pipeline(args: &Args) {
    use lnls_gpu_sim::pipeline::{price_multiwalk_ordered, IssueOrder};
    use lnls_gpu_sim::{DeviceSpec, EngineConfig, IterationProfile};

    println!("== A6: stream pipelining of independent tabu walks ==");
    println!("(2-Hamming PPP iteration shape; GT200 = 1 copy + 1 compute engine)\n");
    let spec = DeviceSpec::gtx280();
    for (m, n) in [(101usize, 117usize), (501, 517), (1001, 1017)] {
        let inst = PppInstance::generate(m, n, args.seed);
        let problem = lnls_ppp::Ppp::new(inst);
        let gpu = lnls_ppp::GpuExplorerConfig { texture: args.texture, ..Default::default() };
        let book = lnls_bench::per_iteration_book(&problem, 2, &gpu);
        let profile = IterationProfile {
            h2d_bytes: book.bytes_h2d,
            kernel_seconds: book.kernel_s,
            d2h_bytes: book.bytes_d2h,
        };
        println!("  {m}x{n}:");
        for (walks, streams) in [(1usize, 1usize), (2, 2), (4, 4), (8, 4)] {
            let r = price_multiwalk_ordered(
                &spec,
                EngineConfig::gt200(),
                profile,
                walks,
                1000,
                streams,
                IssueOrder::BreadthFirst,
            );
            println!(
                "    {walks} walks / {streams} streams: serial {:>8.3} s   pipelined {:>8.3} s   x{:.3}",
                r.serial_s, r.pipelined_s, r.speedup
            );
        }
        let df = price_multiwalk_ordered(
            &spec,
            EngineConfig::gt200(),
            profile,
            4,
            1000,
            4,
            IssueOrder::DepthFirst,
        );
        println!("    (depth-first issue, 4 walks: x{:.3} — the FIFO-queue pitfall)\n", df.speedup);
    }
}

/// A7: the paper's tabu search in its original habitat — Taillard's
/// robust tabu on the QAP, CPU delta table vs simulated-GPU scan.
fn run_qap(args: &Args) {
    use lnls_qap::{
        GpuSwapEvaluator, Permutation, QapInstance, RobustTabu, RtsConfig, SwapEvaluator,
        TableEvaluator,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    println!("== A7: robust tabu search on the QAP (paper ref. [11]) ==\n");
    let iters = if args.full { 10_000 } else { 500 };
    for n in [20usize, 40, 80] {
        let mut rng = StdRng::seed_from_u64(args.seed ^ n as u64);
        let inst = QapInstance::random_symmetric(&mut rng, n);
        let init = Permutation::random(&mut rng, n);
        let rts = RobustTabu::new(RtsConfig::budget(iters).with_seed(args.seed));

        let t0 = std::time::Instant::now();
        let cpu = rts.run(&inst, &mut TableEvaluator::new(), init.clone());
        let cpu_wall = t0.elapsed();

        let mut gpu_eval = GpuSwapEvaluator::new(&inst, lnls_gpu_sim::DeviceSpec::gtx280());
        let gpu = rts.run(&inst, &mut gpu_eval, init);
        let book = SwapEvaluator::book(&gpu_eval).expect("gpu book");

        assert_eq!(cpu.best_cost, gpu.best_cost, "backends must agree");
        println!(
            "  n={n:>3}: best {:>9}  ({} iters, CPU wall {:>7.2?})  modeled GPU {:>8.3} s vs host {:>8.3} s  (x{:.1})",
            cpu.best_cost,
            cpu.iterations,
            cpu_wall,
            book.gpu_total_s(),
            book.host_s,
            book.speedup().unwrap_or(0.0),
        );
    }
    println!("\n(the GPU scan recomputes deltas in O(n) per thread; the CPU ledger");
    println!(" prices the same work on the Xeon host model — Fig. 8's shape on swaps)");
}

fn run_ablations(args: &Args) {
    println!("== A1: f32 mapping precision boundary ==");
    match ablation::mapping_precision_boundary(1 << 16) {
        Some((n, idx)) => println!(
            "first f32 unranking failure: n = {n} (index {idx}); paper sizes (n ≤ 1517) are safe\n"
        ),
        None => println!("no failure found below n = 65536\n"),
    }

    println!("== A2: threads-per-block sweep (2-Hamming, 101×101) ==");
    for (bs, s) in ablation::block_size_sweep(101, 101, &[32, 64, 128, 256, 512], args.seed) {
        println!("  block {bs:>4}: {:>10.3} ms / iteration", s * 1e3);
    }
    println!();

    println!("== A3: texture vs global ε-matrix (1-Hamming) ==");
    for row in ablation::texture_vs_global(&[(101, 117), (501, 517), (1001, 1017)], args.seed) {
        println!(
            "  {:>4}x{:<4}  texture {:>9.3} ms   global {:>9.3} ms   ({:.2}x)",
            row.m,
            row.n,
            row.texture_s * 1e3,
            row.global_s * 1e3,
            row.global_s / row.texture_s
        );
    }
    println!();

    println!("== A4: multi-GPU partitioning (3-Hamming, 101×117) ==");
    let rows = ablation::multigpu_scaling(101, 117, 3, &[1, 2, 4, 8], args.seed);
    let base = rows[0].per_iter_s;
    for r in &rows {
        println!(
            "  {} device(s): {:>9.3} ms / iteration  (speedup x{:.2})",
            r.devices,
            r.per_iter_s * 1e3,
            base / r.per_iter_s
        );
    }
    println!();

    println!("== A5: larger neighborhoods — 4-Hamming feasibility (73×73) ==");
    let rows = ablation::multigpu_scaling(73, 73, 4, &[1, 4, 8], args.seed);
    let base = rows[0].per_iter_s;
    println!("  |N4(73)| = {} moves", lnls_neighborhood::binomial(73, 4));
    for r in &rows {
        println!(
            "  {} device(s): {:>9.3} ms / iteration  (speedup x{:.2})",
            r.devices,
            r.per_iter_s * 1e3,
            base / r.per_iter_s
        );
    }
    println!();

    println!("== A8: shared-memory staging of Y (2-Hamming kernel) ==");
    for r in ablation::shared_staging(&[(73, 217), (501, 217), (1501, 217)], 2, args.seed) {
        println!(
            "  {:>4}x{:<4}  global-Y {:>8.3} ms   shared-Y {:>8.3} ms  ({:.2}x, {} block(s)/SM resident)",
            r.m,
            r.n,
            r.global_s * 1e3,
            r.shared_s * 1e3,
            r.global_s / r.shared_s,
            r.staged_blocks_per_sm
        );
    }
    println!();
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: repro table1|table2|table3|fig8|ablations|all [--tries N] [--scale F] [--seed N] [--threads N] [--iters N] [--full] [--global-mem]");
            std::process::exit(2);
        }
    };
    match args.command.as_str() {
        "table1" => run_table(1, &args),
        "table2" => run_table(2, &args),
        "table3" => run_table(3, &args),
        "fig8" => run_fig8_cmd(&args),
        "pipeline" => run_pipeline(&args),
        "qap" => run_qap(&args),
        "ablations" => run_ablations(&args),
        "all" => {
            run_table(1, &args);
            run_table(2, &args);
            run_table(3, &args);
            run_fig8_cmd(&args);
            run_ablations(&args);
            run_pipeline(&args);
            run_qap(&args);
        }
        _ => unreachable!(),
    }
}
