//! Ablations A1–A5, A8 (DESIGN.md §4): the design choices the paper
//! makes implicitly, measured explicitly.

use lnls_core::{BitString, IncrementalEval};
use lnls_gpu_sim::{Device, DeviceSpec, ExecMode, LaunchConfig, MemSpace, MultiDevice};
use lnls_neighborhood::{binomial, mapping2d, partition_ranges};
use lnls_ppp::{GpuExplorerConfig, Ppp, PppEvalKernel, PppEvalKernelShared, PppInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::per_iteration_book;

/// A1 — single-precision mapping robustness: the first dimension where
/// the paper's `f32` 2-Hamming unranking (Fig. 9, `+0.1f` guard) diverges
/// from the exact mapping. `None` if no failure below `max_n`.
pub fn mapping_precision_boundary(max_n: u64) -> Option<(u64, u64)> {
    mapping2d::f32_first_failure(max_n)
}

/// A2 — threads-per-block sweep: modeled per-iteration GPU seconds of
/// the 2-Hamming kernel on a paper-sized instance, per block size.
pub fn block_size_sweep(m: usize, n: usize, sizes: &[u32], seed: u64) -> Vec<(u32, f64)> {
    let problem = Ppp::new(PppInstance::generate(m, n, seed));
    sizes
        .iter()
        .map(|&bs| {
            let cfg = GpuExplorerConfig { block_size: bs, ..GpuExplorerConfig::default() };
            let book = per_iteration_book(&problem, 2, &cfg);
            (bs, book.gpu_total_s())
        })
        .collect()
}

/// One row of the texture-vs-global ablation.
#[derive(Clone, Debug)]
pub struct TextureRow {
    /// Rows.
    pub m: usize,
    /// Columns.
    pub n: usize,
    /// Per-iteration GPU seconds with the ε-matrix in texture memory.
    pub texture_s: f64,
    /// Per-iteration GPU seconds with it in plain global memory.
    pub global_s: f64,
}

/// A3 — texture vs. global placement of the ε-matrix (the Fig. 8 legend
/// distinguishes "GPUTexture"), on the 1-Hamming kernel.
pub fn texture_vs_global(sizes: &[(usize, usize)], seed: u64) -> Vec<TextureRow> {
    sizes
        .iter()
        .map(|&(m, n)| {
            let problem = Ppp::new(PppInstance::generate(m, n, seed));
            let tex = per_iteration_book(
                &problem,
                1,
                &GpuExplorerConfig { texture: true, ..GpuExplorerConfig::default() },
            );
            let glob = per_iteration_book(
                &problem,
                1,
                &GpuExplorerConfig { texture: false, ..GpuExplorerConfig::default() },
            );
            TextureRow { m, n, texture_s: tex.gpu_total_s(), global_s: glob.gpu_total_s() }
        })
        .collect()
}

/// One row of the multi-GPU ablation.
#[derive(Clone, Debug)]
pub struct MultiGpuRow {
    /// Devices used.
    pub devices: usize,
    /// Modeled wall-clock seconds of one partitioned iteration
    /// (slowest-device semantics).
    pub per_iter_s: f64,
}

/// A4/A5 — multi-GPU neighborhood partitioning (paper §V): one tabu
/// iteration of the `k`-Hamming neighborhood split across `counts`
/// devices. Static data is replicated per device (each GPU has private
/// memory); per-iteration traffic and the kernel partition are charged.
pub fn multigpu_scaling(
    m: usize,
    n: usize,
    k: usize,
    counts: &[usize],
    seed: u64,
) -> Vec<MultiGpuRow> {
    let problem = Ppp::new(PppInstance::generate(m, n, seed));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let s = BitString::random(&mut rng, n);
    let state = problem.init_state(&s);
    let msize = binomial(n as u64, k as u64);
    let wpc32 = (problem.inst.a.words_per_col() * 2) as u32;
    let vbits: Vec<u32> = s.words().iter().flat_map(|&w| [w as u32, (w >> 32) as u32]).collect();

    counts
        .iter()
        .map(|&d| {
            let mut multi = MultiDevice::new_uniform(d, DeviceSpec::gtx280());
            let parts = partition_ranges(msize, d);
            // Setup (excluded from the per-iteration charge): replicate
            // static data, allocate per-iteration buffers.
            let mut bufs = Vec::new();
            for (i, part) in parts.iter().enumerate() {
                let dev = multi.device_mut(i);
                let a_cols =
                    dev.upload_new(&problem.inst.a.cols_as_u32(), MemSpace::Texture, "a_cols");
                let hist_target =
                    dev.upload_new(&problem.inst.target_hist, MemSpace::Texture, "hist_t");
                let vb = dev.alloc_zeroed::<u32>(vbits.len(), MemSpace::Global, "vbits");
                let y = dev.alloc_zeroed::<i32>(m, MemSpace::Global, "y");
                let hc = dev.alloc_zeroed::<i32>(n + 1, MemSpace::Global, "hist_c");
                let out =
                    dev.alloc_zeroed::<i32>(part.len().max(1) as usize, MemSpace::Global, "out");
                bufs.push((a_cols, hist_target, vb, y, hc, out));
            }
            multi.reset(); // setup transfers are not per-iteration cost

            // Two iterations: the first profiles, the second is steady state.
            let mut last_step = 0.0;
            for _ in 0..2 {
                last_step = multi.parallel_step(|i, dev| {
                    let part = parts[i];
                    if part.is_empty() {
                        return;
                    }
                    let (a_cols, hist_target, vb, y, hc, out) = &bufs[i];
                    dev.upload(vb, &vbits);
                    dev.upload(y, &state.y);
                    dev.upload(hc, &state.hist);
                    let kernel = PppEvalKernel {
                        k: k as u8,
                        n: n as u32,
                        m: m as u32,
                        msize: part.len(),
                        base_index: part.lo,
                        wpc32,
                        a_cols: a_cols.clone(),
                        vbits: vb.clone(),
                        y: y.clone(),
                        hist_target: hist_target.clone(),
                        hist_cur: hc.clone(),
                        out: out.clone(),
                        neg_base: state.neg_cost,
                        hist_base: state.hist_cost,
                    };
                    dev.launch(&kernel, LaunchConfig::cover_1d(part.len(), 128), ExecMode::Auto);
                    let _ = dev.download(out);
                });
            }
            MultiGpuRow { devices: d, per_iter_s: last_step }
        })
        .collect()
}

/// One row of the shared-memory staging ablation.
#[derive(Clone, Debug)]
pub struct SharedStagingRow {
    /// Rows (`m`): the shared request is `2m` 32-bit words per block.
    pub m: usize,
    /// Columns (`n`).
    pub n: usize,
    /// Modeled kernel seconds of the baseline (global-`Y`) variant.
    pub global_s: f64,
    /// Modeled kernel seconds with `Y` staged in shared memory.
    pub shared_s: f64,
    /// Resident blocks/SM of the staged variant (occupancy cost).
    pub staged_blocks_per_sm: u32,
}

/// A8 — shared-memory staging of the base product vector `Y` in the
/// `k`-Hamming kernel: DRAM traffic per block instead of per thread,
/// paid for with `2m` words of shared memory (which throttles
/// residency as `m` grows).
pub fn shared_staging(sizes: &[(usize, usize)], k: usize, seed: u64) -> Vec<SharedStagingRow> {
    sizes
        .iter()
        .map(|&(m, n)| {
            let problem = Ppp::new(PppInstance::generate(m, n, seed));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xA8);
            let s = BitString::random(&mut rng, n);
            let state = problem.init_state(&s);
            let msize = binomial(n as u64, k as u64);
            let wpc32 = (problem.inst.a.words_per_col() * 2) as u32;
            let vbits: Vec<u32> =
                s.words().iter().flat_map(|&w| [w as u32, (w >> 32) as u32]).collect();

            let build = |dev: &mut Device| PppEvalKernel {
                k: k as u8,
                n: n as u32,
                m: m as u32,
                msize,
                base_index: 0,
                wpc32,
                a_cols: dev.upload_new(&problem.inst.a.cols_as_u32(), MemSpace::Texture, "a"),
                vbits: dev.upload_new(&vbits, MemSpace::Global, "v"),
                y: dev.upload_new(&state.y, MemSpace::Global, "y"),
                hist_target: dev.upload_new(&problem.inst.target_hist, MemSpace::Texture, "ht"),
                hist_cur: dev.upload_new(&state.hist, MemSpace::Global, "hc"),
                out: dev.alloc_zeroed::<i32>(msize as usize, MemSpace::Global, "f"),
                neg_base: state.neg_cost,
                hist_base: state.hist_cost,
            };

            let mut dev = Device::new(DeviceSpec::gtx280());
            let kernel = build(&mut dev);
            let base_cfg = LaunchConfig::cover_1d(msize, 128);
            let rep = dev.launch(&kernel, base_cfg, ExecMode::Auto);
            let global_s = rep.timing.kernel_seconds;

            let mut dev2 = Device::new(DeviceSpec::gtx280());
            let staged = PppEvalKernelShared { inner: build(&mut dev2) };
            let staged_cfg = LaunchConfig::cover_1d(msize, 128).with_shared_words(2 * m as u32);
            let rep2 = dev2.launch(&staged, staged_cfg, ExecMode::Auto);

            SharedStagingRow {
                m,
                n,
                global_s,
                shared_s: rep2.timing.kernel_seconds,
                staged_blocks_per_sm: rep2.timing.occupancy.blocks_per_sm,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_sweep_reports_all_sizes() {
        let rows = block_size_sweep(21, 21, &[32, 64, 128], 1);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|&(_, s)| s > 0.0));
    }

    #[test]
    fn texture_beats_global_on_the_matrix() {
        let rows = texture_vs_global(&[(73, 73)], 2);
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].texture_s < rows[0].global_s,
            "texture {} !< global {}",
            rows[0].texture_s,
            rows[0].global_s
        );
    }

    #[test]
    fn more_devices_reduce_iteration_time() {
        let rows = multigpu_scaling(41, 41, 3, &[1, 2, 4], 3);
        assert_eq!(rows.len(), 3);
        assert!(rows[1].per_iter_s < rows[0].per_iter_s, "{rows:?}");
        assert!(rows[2].per_iter_s < rows[1].per_iter_s, "{rows:?}");
    }

    #[test]
    fn mapping_boundary_is_beyond_paper_sizes() {
        if let Some((n, _)) = mapping_precision_boundary(1 << 14) {
            assert!(n > 1517, "f32 mapping must survive the paper's sizes, failed at n={n}");
        }
    }

    #[test]
    fn shared_staging_reports_occupancy_cost() {
        // n = 217 → C(217,2) = 23 436 threads: enough blocks that the
        // grid does not mask the shared-memory residency limit.
        let rows = shared_staging(&[(73, 217), (1501, 217)], 2, 4);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.global_s > 0.0 && r.shared_s > 0.0);
        }
        // The 1501-row request (3002 words) must throttle residency to 1.
        assert_eq!(rows[1].staged_blocks_per_sm, 1);
        assert!(rows[1].staged_blocks_per_sm < rows[0].staged_blocks_per_sm);
    }
}
