//! The paper's published numbers (Tables I–III and the Fig. 8 anchors),
//! embedded so every harness run prints "paper vs. reproduced" side by
//! side and the shape tests can assert against the original bands.

/// One row as printed in the paper.
#[derive(Copy, Clone, Debug)]
pub struct PaperRow {
    /// Instance label.
    pub label: &'static str,
    /// Rows, columns.
    pub m: usize,
    /// Columns (solution length).
    pub n: usize,
    /// Mean fitness over 50 tries.
    pub fitness: f64,
    /// Standard deviation (the subscript).
    pub std: f64,
    /// Mean iterations.
    pub iters: f64,
    /// Successful tries out of 50.
    pub solutions: u32,
    /// CPU seconds (Table III: extrapolated from 100 iterations).
    pub cpu_s: f64,
    /// GPU seconds.
    pub gpu_s: f64,
}

impl PaperRow {
    /// The published acceleration factor.
    pub fn acceleration(&self) -> f64 {
        self.cpu_s / self.gpu_s
    }
}

/// Table I — tabu search, 1-Hamming neighborhood.
pub const TABLE1: [PaperRow; 4] = [
    PaperRow {
        label: "73 × 73",
        m: 73,
        n: 73,
        fitness: 10.3,
        std: 5.1,
        iters: 59184.1,
        solutions: 10,
        cpu_s: 4.0,
        gpu_s: 9.0,
    },
    PaperRow {
        label: "81 × 81",
        m: 81,
        n: 81,
        fitness: 10.8,
        std: 5.6,
        iters: 77321.3,
        solutions: 6,
        cpu_s: 6.0,
        gpu_s: 13.0,
    },
    PaperRow {
        label: "101 × 101",
        m: 101,
        n: 101,
        fitness: 20.2,
        std: 14.1,
        iters: 166650.0,
        solutions: 0,
        cpu_s: 16.0,
        gpu_s: 33.0,
    },
    PaperRow {
        label: "101 × 117",
        m: 101,
        n: 117,
        fitness: 16.4,
        std: 5.4,
        iters: 260130.0,
        solutions: 0,
        cpu_s: 29.0,
        gpu_s: 57.0,
    },
];

/// Table II — tabu search, 2-Hamming neighborhood.
pub const TABLE2: [PaperRow; 4] = [
    PaperRow {
        label: "73 × 73",
        m: 73,
        n: 73,
        fitness: 16.4,
        std: 17.9,
        iters: 43031.7,
        solutions: 19,
        cpu_s: 81.0,
        gpu_s: 8.0,
    },
    PaperRow {
        label: "81 × 81",
        m: 81,
        n: 81,
        fitness: 15.5,
        std: 16.6,
        iters: 67462.5,
        solutions: 13,
        cpu_s: 174.0,
        gpu_s: 16.0,
    },
    PaperRow {
        label: "101 × 101",
        m: 101,
        n: 101,
        fitness: 14.2,
        std: 14.3,
        iters: 138349.0,
        solutions: 12,
        cpu_s: 748.0,
        gpu_s: 44.0,
    },
    PaperRow {
        label: "101 × 117",
        m: 101,
        n: 117,
        fitness: 13.8,
        std: 10.8,
        iters: 260130.0,
        solutions: 0,
        cpu_s: 1947.0,
        gpu_s: 105.0,
    },
];

/// Table III — tabu search, 3-Hamming neighborhood (CPU extrapolated
/// from 100-iteration runs).
pub const TABLE3: [PaperRow; 4] = [
    PaperRow {
        label: "73 × 73",
        m: 73,
        n: 73,
        fitness: 2.4,
        std: 4.3,
        iters: 21360.2,
        solutions: 35,
        cpu_s: 1202.0,
        gpu_s: 50.0,
    },
    PaperRow {
        label: "81 × 81",
        m: 81,
        n: 81,
        fitness: 3.5,
        std: 4.4,
        iters: 43230.7,
        solutions: 28,
        cpu_s: 3730.0,
        gpu_s: 146.0,
    },
    PaperRow {
        label: "101 × 101",
        m: 101,
        n: 101,
        fitness: 6.2,
        std: 5.4,
        iters: 117422.0,
        solutions: 18,
        cpu_s: 24657.0,
        gpu_s: 955.0,
    },
    PaperRow {
        label: "101 × 117",
        m: 101,
        n: 117,
        fitness: 7.7,
        std: 2.7,
        iters: 255337.0,
        solutions: 1,
        cpu_s: 88151.0,
        gpu_s: 3551.0,
    },
];

/// Fig. 8 anchors the text states explicitly: the GPU starts winning at
/// (201, 217) with ×1.1 and reaches ×10.8 at (1501, 1517); below
/// (201, 217) the CPU wins. 10000 iterations, 1-Hamming, texture kernel.
pub const FIG8_CROSSOVER: (usize, usize) = (201, 217);
/// Speedup at the crossover point.
pub const FIG8_CROSSOVER_ACCEL: f64 = 1.1;
/// The largest Fig. 8 size.
pub const FIG8_MAX: (usize, usize) = (1501, 1517);
/// Speedup at the largest size.
pub const FIG8_MAX_ACCEL: f64 = 10.8;

/// Which paper table corresponds to a Hamming distance.
pub fn table_for_k(k: usize) -> &'static [PaperRow; 4] {
    match k {
        1 => &TABLE1,
        2 => &TABLE2,
        3 => &TABLE3,
        _ => panic!("the paper evaluates k ∈ {{1,2,3}}, got {k}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_accelerations_match_the_text() {
        // Table II reports ×9.9 … ×18.5, Table III ×24.2 … ×25.8.
        assert!((TABLE2[0].acceleration() - 81.0 / 8.0).abs() < 1e-9);
        assert!(TABLE2.iter().all(|r| r.acceleration() >= 9.9 && r.acceleration() <= 18.6));
        assert!(TABLE3.iter().all(|r| r.acceleration() >= 24.0 && r.acceleration() <= 25.9));
        // Table I: GPU slower everywhere.
        assert!(TABLE1.iter().all(|r| r.acceleration() < 1.0));
    }

    #[test]
    fn iteration_budgets_match_the_stopping_criterion() {
        // The budget is n(n−1)(n−2)/6; rows that never succeeded show
        // exactly that number as their mean iteration count.
        assert_eq!(TABLE1[2].iters, 101.0 * 100.0 * 99.0 / 6.0);
        assert_eq!(TABLE1[3].iters, 117.0 * 116.0 * 115.0 / 6.0);
        assert_eq!(TABLE2[3].iters, 117.0 * 116.0 * 115.0 / 6.0);
    }

    #[test]
    fn quality_improves_with_neighborhood_size() {
        // The paper's core claim, visible in its own numbers.
        for i in 0..4 {
            assert!(TABLE3[i].solutions >= TABLE2[i].solutions);
            assert!(TABLE3[i].fitness <= TABLE2[i].fitness);
        }
        let s1: u32 = TABLE1.iter().map(|r| r.solutions).sum();
        let s2: u32 = TABLE2.iter().map(|r| r.solutions).sum();
        let s3: u32 = TABLE3.iter().map(|r| r.solutions).sum();
        assert!(s1 < s2 && s2 < s3);
    }
}
