//! Bench target regenerating Table III (PPP, 3-Hamming tabu) at a reduced
//! default scale — the full protocol is a multi-day CPU campaign, which is
//! the paper's own point. Override with `LNLS_TRIES`, `LNLS_SCALE`,
//! `LNLS_FULL=1`.

use lnls_bench::{env_opts, paper, print_comparison, run_paper_table};

fn main() {
    let opts = env_opts(2, 0.0005);
    println!(
        "table3 @ {} tries, {:.4}x budget (env LNLS_TRIES/LNLS_SCALE/LNLS_FULL to change)",
        opts.tries, opts.iter_scale
    );
    let rows = run_paper_table(3, &opts);
    print_comparison("Table III — PPP, 3-Hamming tabu search", &rows, &paper::TABLE3);
}
