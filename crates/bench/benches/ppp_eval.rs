//! Criterion micro-benchmarks of PPP evaluation: full re-evaluation vs
//! the O(m·k + touched) incremental path, per neighborhood size — the
//! quantity that decides every CPU column in the paper's tables.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lnls_core::{BinaryProblem, BitString, IncrementalEval};
use lnls_neighborhood::{KHamming, Neighborhood};
use lnls_ppp::{Ppp, PppInstance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(m: usize, n: usize) -> (Ppp, BitString) {
    let p = Ppp::new(PppInstance::generate(m, n, 42));
    let mut rng = StdRng::seed_from_u64(1);
    let s = BitString::random(&mut rng, n);
    (p, s)
}

fn bench_full_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("ppp_full_eval");
    for (m, n) in [(73, 73), (101, 117), (1501, 1517)] {
        let (p, s) = setup(m, n);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{n}")), &(), |b, _| {
            b.iter(|| black_box(p.evaluate(black_box(&s))))
        });
    }
    g.finish();
}

fn bench_neighbor_fitness(c: &mut Criterion) {
    let mut g = c.benchmark_group("ppp_neighbor_fitness");
    for (m, n) in [(73usize, 73usize), (101, 117)] {
        for k in 1..=3usize {
            let (p, s) = setup(m, n);
            let mut st = p.init_state(&s);
            let hood = KHamming::new(n, k);
            let mut rng = StdRng::seed_from_u64(2);
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("{m}x{n}_k{k}")),
                &(),
                |b, _| {
                    b.iter(|| {
                        let mv = hood.unrank(rng.gen_range(0..hood.size()));
                        black_box(p.neighbor_fitness(&mut st, &s, &mv))
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_iteration_scan(c: &mut Criterion) {
    // One full tabu-iteration evaluation sweep (the unit the tables
    // multiply by iteration counts).
    let mut g = c.benchmark_group("ppp_iteration_scan");
    for (m, n, k) in [(73usize, 73usize, 1usize), (73, 73, 2), (73, 73, 3)] {
        let (p, s) = setup(m, n);
        let mut st = p.init_state(&s);
        let hood = KHamming::new(n, k);
        g.throughput(Throughput::Elements(hood.size()));
        g.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{n}_k{k}")), &(), |b, _| {
            b.iter(|| {
                let mut best = i64::MAX;
                for (_, mv) in lnls_neighborhood::LexMoves::new(n, k) {
                    best = best.min(p.neighbor_fitness(&mut st, &s, &mv));
                }
                black_box(best)
            })
        });
    }
    g.finish();
}

fn bench_apply_move(c: &mut Criterion) {
    let (p, s) = setup(101, 117);
    let hood = KHamming::new(117, 3);
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("ppp_apply_move_101x117_k3", |b| {
        let mut s = s.clone();
        let mut st = p.init_state(&s);
        b.iter(|| {
            let mv = hood.unrank(rng.gen_range(0..hood.size()));
            p.apply_move(&mut st, &s, &mv);
            s.apply(&mv);
        })
    });
}

criterion_group!(
    benches,
    bench_full_eval,
    bench_neighbor_fitness,
    bench_iteration_scan,
    bench_apply_move
);
criterion_main!(benches);
