//! Fleet-throughput bench: jobs/second and makespan of the runtime
//! scheduler across device counts, placement policies, batch widths and
//! preemption quanta.
//!
//! ```text
//! cargo bench -p lnls-bench --bench fleet
//! ```
//!
//! Alongside the human-readable table, every row lands in
//! `BENCH_fleet.json` (path overridable with `LNLS_BENCH_JSON_PATH`) so
//! the perf trajectory is machine-trackable across PRs.

use lnls_core::{BitString, SearchConfig, TabuSearch};
use lnls_gpu_sim::{DeviceSpec, EngineConfig, MultiDevice, SelectionMode};
use lnls_neighborhood::{KHamming, Neighborhood};
use lnls_ppp::{Ppp, PppInstance};
use lnls_runtime::{BinaryJob, PlacePolicy, Scheduler, SchedulerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn submit_mix(fleet: &mut Scheduler, tries: u64, iters: u64) {
    for t in 0..tries {
        let problem = Ppp::new(PppInstance::generate(49, 49, 7));
        let hood = KHamming::new(49, 2);
        let mut rng = StdRng::seed_from_u64(t);
        let init = BitString::random(&mut rng, 49);
        let search = TabuSearch::paper(
            SearchConfig::budget(iters).with_seed(t).with_target(None),
            hood.size(),
        );
        fleet.submit(BinaryJob::new(format!("ppp-try{t}"), problem, hood, search, init));
    }
}

fn main() {
    let tries: u64 =
        std::env::var("LNLS_FLEET_TRIES").ok().and_then(|v| v.parse().ok()).unwrap_or(16);
    let iters: u64 =
        std::env::var("LNLS_FLEET_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(60);
    let mut json = criterion::summary::Sink::new("BENCH_fleet.json", "fleet");

    println!("fleet throughput: {tries} PPP 49x49 2-Hamming tries, {iters} iterations each\n");
    println!(
        "{:>8} {:>12} {:>7} | {:>12} {:>10} {:>9} {:>7} | {:>10}",
        "devices", "policy", "batch", "makespan(s)", "jobs/sim-s", "speedup", "fused", "sim-wall"
    );

    for devices in [1usize, 2, 4] {
        for (policy, pname) in
            [(PlacePolicy::RoundRobin, "round-robin"), (PlacePolicy::LeastLoaded, "least-load")]
        {
            for max_batch in [1usize, 4, 8] {
                let mut fleet = Scheduler::new(
                    MultiDevice::new_uniform(devices, DeviceSpec::gtx280()),
                    SchedulerConfig { policy, max_batch, ..Default::default() },
                );
                submit_mix(&mut fleet, tries, iters);
                let t0 = Instant::now();
                fleet.run_until_idle();
                let wall = t0.elapsed();
                let r = fleet.fleet_report();
                println!(
                    "{:>8} {:>12} {:>7} | {:>12.6} {:>10.1} {:>8.2}x {:>7} | {:>8.0}ms",
                    devices,
                    pname,
                    max_batch,
                    r.makespan_s,
                    r.jobs_per_sim_s,
                    r.speedup_vs_serial,
                    r.fused_launches,
                    wall.as_secs_f64() * 1e3,
                );
                json.record(&[
                    ("scenario", format!("fleet/{devices}dev/{pname}/batch{max_batch}").into()),
                    ("jobs", tries.into()),
                    ("makespan_s", r.makespan_s.into()),
                    ("throughput_jobs_per_sim_s", r.jobs_per_sim_s.into()),
                    ("speedup_vs_serial", r.speedup_vs_serial.into()),
                    ("p95_wait_s", r.wait_p95_s.into()),
                    ("device_busy_fraction", r.mean_device_utilization().into()),
                    ("fused_launches", r.fused_launches.into()),
                ]);
            }
        }
    }

    // Preemption sweep: fairness cost/benefit under contention — long
    // QAP runs submitted ahead of the PPP tries on one device. The
    // quantum trades a little re-placement churn for bounded tenant
    // waits; results are bit-identical at every setting.
    println!(
        "\n{:>8} | {:>12} {:>12} {:>12} {:>8} | {:>10}",
        "quantum", "makespan(s)", "max-wait(s)", "mean-wait(s)", "preempt", "sim-wall"
    );
    for quantum in [None, Some(4u64), Some(16), Some(64)] {
        let mut fleet = Scheduler::new(
            MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
            SchedulerConfig { max_batch: 8, quantum_iters: quantum, ..Default::default() },
        );
        for q in 0..2u64 {
            let mut rng = StdRng::seed_from_u64(900 + q);
            let inst = lnls_qap::QapInstance::random_uniform(&mut rng, 20);
            let init = lnls_qap::Permutation::random(&mut rng, 20);
            fleet.submit(lnls_runtime::QapJobSpec::new(
                format!("qap-20-{q}"),
                inst,
                lnls_qap::RtsConfig::budget(iters * 8).with_seed(q),
                init,
            ));
        }
        submit_mix(&mut fleet, tries, iters);
        let t0 = Instant::now();
        fleet.run_until_idle();
        let wall = t0.elapsed();
        let r = fleet.fleet_report();
        let qlabel = quantum.map_or("off".to_string(), |q| q.to_string());
        println!(
            "{:>8} | {:>12.6} {:>12.6} {:>12.6} {:>8} | {:>8.0}ms",
            qlabel,
            r.makespan_s,
            r.max_wait_s,
            r.mean_wait_s,
            r.preemptions,
            wall.as_secs_f64() * 1e3,
        );
        json.record(&[
            ("scenario", format!("fleet/quantum-{qlabel}").into()),
            ("jobs", (tries + 2).into()),
            ("makespan_s", r.makespan_s.into()),
            ("throughput_jobs_per_sim_s", r.jobs_per_sim_s.into()),
            ("p95_wait_s", r.wait_p95_s.into()),
            ("max_wait_s", r.max_wait_s.into()),
            ("device_busy_fraction", r.mean_device_utilization().into()),
            ("preemptions", r.preemptions.into()),
        ]);
    }

    // Stream-overlap × selection sweep: the same fused PPP mix on one
    // device under both engine layouts and both selection modes. GT200
    // cannot overlap inside a fused iteration (makespan == serial sum);
    // Fermi overlaps per-lane copies; DeviceArgmin collapses the
    // readback from m·8 bytes to one record per lane (m = 1225 here).
    println!(
        "\n{:>8} {:>8} | {:>12} {:>12} {:>9} | {:>12} {:>8}",
        "engines", "argmin", "makespan(s)", "serial(s)", "overlap", "d2h B/iter", "launches"
    );
    for (engines, ename) in [(EngineConfig::gt200(), "gt200"), (EngineConfig::fermi(), "fermi")] {
        for (selection, sname) in
            [(SelectionMode::HostArgmin, "host"), (SelectionMode::DeviceArgmin, "device")]
        {
            let mut fleet = Scheduler::new(
                MultiDevice::new_uniform(1, DeviceSpec::gtx280().with_engines(engines)),
                SchedulerConfig { max_batch: 8, selection, ..Default::default() },
            );
            submit_mix(&mut fleet, tries, iters);
            fleet.run_until_idle();
            let r = fleet.fleet_report();
            println!(
                "{:>8} {:>8} | {:>12.6} {:>12.6} {:>8.3}x | {:>12.0} {:>8}",
                ename,
                sname,
                r.stream_makespan_s,
                r.stream_serialized_s,
                r.stream_overlap_factor(),
                r.d2h_bytes_per_iteration(),
                r.fleet_book.launches,
            );
            json.record(&[
                ("scenario", format!("fleet/knobs/{ename}/{sname}").into()),
                ("jobs", tries.into()),
                ("makespan_s", r.makespan_s.into()),
                ("fused_stream_makespan_s", r.stream_makespan_s.into()),
                ("fused_serial_sum_s", r.stream_serialized_s.into()),
                ("stream_overlap_factor", r.stream_overlap_factor().into()),
                ("h2d_bytes_per_iter", r.h2d_bytes_per_iteration().into()),
                ("d2h_bytes_per_iter", r.d2h_bytes_per_iteration().into()),
                ("launches", r.fleet_book.launches.into()),
            ]);
        }
    }

    match json.finish() {
        Ok(path) => println!("\nmachine-readable summary: {}", path.display()),
        Err(e) => eprintln!("\ncould not write bench summary: {e}"),
    }

    println!("\nbatching lever: wider fused launches amortize launch overhead and PCIe latency,");
    println!("the same effect the paper gets from large neighborhoods — applied across tenants.");
    println!("preemption lever: one neighborhood iteration is the unit of GPU work, so it is the");
    println!("natural quantum — slicing bounds tenant waits without touching search results.");
}
