//! Criterion micro-benchmarks of the simulator itself: wall-clock cost of
//! simulating one evaluation kernel launch (the price of the hardware
//! substitution, not a paper artifact) and of the analytic model.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lnls_core::{BitString, Explorer, IncrementalEval};
use lnls_gpu_sim::{occupancy, DeviceSpec, LaunchConfig};
use lnls_ppp::{GpuExplorerConfig, Ppp, PppGpuExplorer, PppInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_simulated_launch(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_explore_wall");
    g.sample_size(10);
    for (m, n, k) in [(73usize, 73usize, 1usize), (73, 73, 2), (101, 117, 2)] {
        let p = Ppp::new(PppInstance::generate(m, n, 7));
        let mut rng = StdRng::seed_from_u64(1);
        let s = BitString::random(&mut rng, n);
        let mut state = p.init_state(&s);
        let mut gpu = PppGpuExplorer::new(&p, k, GpuExplorerConfig::default());
        let mut out = Vec::new();
        // Warm profile so the loop measures steady-state simulation.
        gpu.explore(&p, &s, &mut state, &mut out);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{n}_k{k}")), &(), |b, _| {
            b.iter(|| {
                gpu.explore(&p, &s, &mut state, &mut out);
                black_box(out.len())
            })
        });
    }
    g.finish();
}

fn bench_occupancy_and_model(c: &mut Criterion) {
    let spec = DeviceSpec::gtx280();
    c.bench_function("occupancy_calculator", |b| {
        let mut t = 1u64;
        b.iter(|| {
            t = (t % 500_000) + 64;
            let cfg = LaunchConfig::cover_1d(t, 128);
            black_box(occupancy(&spec, &cfg))
        })
    });
}

criterion_group!(benches, bench_simulated_launch, bench_occupancy_and_model);
criterion_main!(benches);
