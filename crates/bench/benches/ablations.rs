//! Bench target running ablations A1–A5 (DESIGN.md §4) at small scale.

use lnls_bench::ablation;

fn main() {
    println!("== A1: f32 mapping precision boundary ==");
    match ablation::mapping_precision_boundary(1 << 15) {
        Some((n, idx)) => {
            println!("first f32 failure: n = {n}, index {idx} (paper max n=1517 is safe)")
        }
        None => println!("no failure below n = 32768"),
    }

    println!("\n== A2: threads-per-block sweep (2-Hamming, 101×101) ==");
    for (bs, s) in ablation::block_size_sweep(101, 101, &[32, 64, 128, 256, 512], 1) {
        println!("  block {bs:>4}: {:>9.3} ms/iter", s * 1e3);
    }

    println!("\n== A3: texture vs global (1-Hamming) ==");
    for r in ablation::texture_vs_global(&[(101, 117), (501, 517)], 1) {
        println!(
            "  {:>4}x{:<4} texture {:>8.3} ms   global {:>8.3} ms   ({:.2}x)",
            r.m,
            r.n,
            r.texture_s * 1e3,
            r.global_s * 1e3,
            r.global_s / r.texture_s
        );
    }

    println!("\n== A4: multi-GPU partitioning (3-Hamming, 73×73) ==");
    let rows = ablation::multigpu_scaling(73, 73, 3, &[1, 2, 4], 1);
    let base = rows[0].per_iter_s;
    for r in &rows {
        println!(
            "  {} device(s): {:>8.3} ms/iter (x{:.2})",
            r.devices,
            r.per_iter_s * 1e3,
            base / r.per_iter_s
        );
    }

    println!("\n== A5: 4-Hamming feasibility (73×73) ==");
    let rows = ablation::multigpu_scaling(73, 73, 4, &[1, 4], 1);
    println!("  |N4(73)| = {} moves", lnls_neighborhood::binomial(73, 4));
    let base = rows[0].per_iter_s;
    for r in &rows {
        println!(
            "  {} device(s): {:>8.3} ms/iter (x{:.2})",
            r.devices,
            r.per_iter_s * 1e3,
            base / r.per_iter_s
        );
    }

    println!("\n== A8: shared-memory staging of Y (2-Hamming) ==");
    for r in ablation::shared_staging(&[(73, 217), (1501, 217)], 2, 1) {
        println!(
            "  {:>4}x{:<4} global-Y {:>8.3} ms   shared-Y {:>8.3} ms  ({:.2}x, {} blk/SM)",
            r.m,
            r.n,
            r.global_s * 1e3,
            r.shared_s * 1e3,
            r.global_s / r.shared_s,
            r.staged_blocks_per_sm
        );
    }
}
