//! Criterion micro-benchmarks of the index transformations (§III): the
//! paper claims the 2-Hamming mapping is "nearly constant time" (one
//! square root) and the 3-Hamming one "logarithmic in practice"
//! (Newton–Raphson). These benches quantify both and compare against the
//! exact integer implementations and lexicographic enumeration.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lnls_neighborhood::mapping2d::{rank2, size2, unrank2, unrank2_f32_paper};
use lnls_neighborhood::mapping3d::{rank3, size3, unrank3, unrank3_newton};
use lnls_neighborhood::{LexMoves, Neighborhood, ThreeHamming, TwoHamming};

fn bench_unrank2(c: &mut Criterion) {
    let mut g = c.benchmark_group("unrank2");
    for n in [73u64, 1517, 1 << 20] {
        let m = size2(n);
        g.bench_with_input(BenchmarkId::new("exact_isqrt", n), &n, |b, &n| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 997) % m;
                black_box(unrank2(n, black_box(i)))
            })
        });
        if n <= 1517 {
            g.bench_with_input(BenchmarkId::new("f32_paper", n), &n, |b, &n| {
                let mut i = 0u64;
                b.iter(|| {
                    i = (i + 997) % m;
                    black_box(unrank2_f32_paper(n, black_box(i)))
                })
            });
        }
    }
    g.finish();
}

fn bench_unrank3(c: &mut Criterion) {
    let mut g = c.benchmark_group("unrank3");
    for n in [73u64, 117, 1517] {
        let m = size3(n);
        g.bench_with_input(BenchmarkId::new("exact_icbrt", n), &n, |b, &n| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 99_991) % m;
                black_box(unrank3(n, black_box(i)))
            })
        });
        g.bench_with_input(BenchmarkId::new("newton_raphson", n), &n, |b, &n| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 99_991) % m;
                black_box(unrank3_newton(n, black_box(i)))
            })
        });
    }
    g.finish();
}

fn bench_rank(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank");
    g.bench_function("rank2_n1517", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 13) % 1515;
            black_box(rank2(1517, i, i + 1))
        })
    });
    g.bench_function("rank3_n1517", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 13) % 1514;
            black_box(rank3(1517, i, i + 1, i + 2))
        })
    });
    g.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    // Full-neighborhood scan: per-index unranking vs O(1) lexicographic
    // advance — the difference the tabu selection pass cares about.
    let mut g = c.benchmark_group("enumerate_n73_k3");
    let hood = ThreeHamming::new(73);
    g.bench_function("unrank_per_index", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (_, mv) in hood.moves() {
                acc = acc.wrapping_add(mv.bits()[2] as u64);
            }
            black_box(acc)
        })
    });
    g.bench_function("lex_advance", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (_, mv) in LexMoves::new(73, 3) {
                acc = acc.wrapping_add(mv.bits()[2] as u64);
            }
            black_box(acc)
        })
    });
    let two = TwoHamming::new(1517);
    g.bench_function("unrank_per_index_2h_n1517", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (_, mv) in two.moves().take(100_000) {
                acc = acc.wrapping_add(mv.bits()[1] as u64);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_unrank2, bench_unrank3, bench_rank, bench_enumeration);
criterion_main!(benches);
