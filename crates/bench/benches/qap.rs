//! Bench target for A7: Taillard's robust tabu search on the QAP — the
//! paper's tabu search (ref. [11]) in its original habitat, with the
//! swap neighborhood scanned on the host delta table, the naive host
//! recompute, and the simulated GPU. Criterion times the host paths;
//! the GPU path reports its modeled ledger.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lnls_gpu_sim::DeviceSpec;
use lnls_qap::{
    FreshEvaluator, GpuSwapEvaluator, Permutation, QapInstance, RobustTabu, RtsConfig,
    SwapEvaluator, TableEvaluator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_qap(c: &mut Criterion) {
    let mut group = c.benchmark_group("qap_rts");
    group.sample_size(10);

    for n in [20usize, 40] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let inst = QapInstance::random_symmetric(&mut rng, n);
        let init = Permutation::random(&mut rng, n);
        let rts = RobustTabu::new(RtsConfig::budget(50).with_seed(1));

        group.bench_with_input(BenchmarkId::new("delta_table", n), &n, |b, _| {
            b.iter(|| rts.run(&inst, &mut TableEvaluator::new(), init.clone()).best_cost)
        });
        group.bench_with_input(BenchmarkId::new("fresh_recompute", n), &n, |b, _| {
            b.iter(|| rts.run(&inst, &mut FreshEvaluator::new(), init.clone()).best_cost)
        });
    }
    group.finish();

    // Modeled GPU ledger (not a wall-clock benchmark: the simulator's
    // wall time is irrelevant, its *predicted* seconds are the result).
    println!("\n== A7: modeled GPU vs host for the full-neighborhood swap scan ==");
    for n in [20usize, 40, 80, 160] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let inst = QapInstance::random_symmetric(&mut rng, n);
        let p = Permutation::random(&mut rng, n);
        let mut gpu = GpuSwapEvaluator::new(&inst, DeviceSpec::gtx280());
        let _ = gpu.deltas(&inst, &p);
        let book = SwapEvaluator::book(&gpu).unwrap();
        println!(
            "  n={n:>4} ({:>6} swaps): gpu {:>9.5} s   host {:>9.5} s   x{:.2}",
            lnls_neighborhood::mapping2d::size2(n as u64),
            book.gpu_total_s(),
            book.host_s,
            book.speedup().unwrap_or(0.0)
        );
    }
}

criterion_group!(benches, bench_qap);
criterion_main!(benches);
