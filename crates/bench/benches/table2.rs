//! Bench target regenerating Table II (PPP, 2-Hamming tabu) at a reduced
//! default scale. Override with `LNLS_TRIES`, `LNLS_SCALE`, `LNLS_FULL=1`.

use lnls_bench::{env_opts, paper, print_comparison, run_paper_table};

fn main() {
    let opts = env_opts(3, 0.01);
    println!(
        "table2 @ {} tries, {:.3}x budget (env LNLS_TRIES/LNLS_SCALE/LNLS_FULL to change)",
        opts.tries, opts.iter_scale
    );
    let rows = run_paper_table(2, &opts);
    print_comparison("Table II — PPP, 2-Hamming tabu search", &rows, &paper::TABLE2);
}
