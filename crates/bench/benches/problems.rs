//! Criterion micro-benchmarks of the problem zoo's incremental deltas
//! (the quantity one GPU thread computes in the paper's kernel pattern)
//! and of full neighborhood scans — fixed radius vs the mixed-radius
//! union.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lnls_core::{BinaryProblem, BitString, Explorer, IncrementalEval, SequentialExplorer};
use lnls_neighborhood::{KHamming, Neighborhood, UnionHamming};
use lnls_problems::{IsingLattice, Knapsack, MaxCut, MaxSat, NkLandscape, OneMax, Qubo};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_deltas(c: &mut Criterion) {
    let n = 96;
    let mut rng = StdRng::seed_from_u64(1);
    let s = BitString::random(&mut rng, n);
    let hood = KHamming::new(n, 2);

    let mut group = c.benchmark_group("neighbor_delta_2h");

    macro_rules! delta_bench {
        ($name:literal, $p:expr) => {{
            let p = $p;
            let mut st = p.init_state(&s);
            let mv = hood.unrank(hood.size() / 2);
            group.bench_function($name, |b| {
                b.iter(|| black_box(p.neighbor_fitness(&mut st, &s, black_box(&mv))))
            });
            // The delta must be honest — cross-check once per target.
            let mut s2 = s.clone();
            s2.apply(&mv);
            assert_eq!(p.neighbor_fitness(&mut st, &s, &mv), p.evaluate(&s2));
        }};
    }

    delta_bench!("onemax", OneMax::new(n));
    delta_bench!("qubo", Qubo::random(&mut rng, n, 9, 0.5));
    delta_bench!("maxcut", MaxCut::random(&mut rng, n, 0.3, 9));
    delta_bench!("knapsack", Knapsack::random(&mut rng, n, 20, 10));
    delta_bench!("maxsat", MaxSat::random(&mut rng, n, 400));
    delta_bench!("nk", NkLandscape::random(&mut rng, n, 4, 100));
    group.finish();

    // Ising lives on a square lattice; bench it at its own size.
    let mut group = c.benchmark_group("neighbor_delta_lattice");
    let l = 10;
    let ising = IsingLattice::random_pm(&mut rng, l, 1);
    let s = BitString::random(&mut rng, l * l);
    let mut st = ising.init_state(&s);
    let hood = KHamming::new(l * l, 2);
    let mv = hood.unrank(hood.size() / 3);
    group.bench_function("ising_10x10", |b| {
        b.iter(|| black_box(ising.neighbor_fitness(&mut st, &s, black_box(&mv))))
    });
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let n = 64;
    let mut rng = StdRng::seed_from_u64(2);
    let q = Qubo::random(&mut rng, n, 9, 0.5);
    let s = BitString::random(&mut rng, n);

    let mut group = c.benchmark_group("full_scan_qubo");
    group.sample_size(20);

    for k in 1..=3usize {
        group.bench_with_input(BenchmarkId::new("fixed_k", k), &k, |b, &k| {
            let mut ex = SequentialExplorer::new(KHamming::new(n, k));
            let mut st = q.init_state(&s);
            let mut out = Vec::new();
            b.iter(|| {
                Explorer::<Qubo>::explore(&mut ex, &q, &s, &mut st, &mut out);
                black_box(out.len())
            })
        });
    }
    group.bench_function("union_123", |b| {
        let mut ex = SequentialExplorer::new(UnionHamming::ladder123(n));
        let mut st = q.init_state(&s);
        let mut out = Vec::new();
        b.iter(|| {
            Explorer::<Qubo>::explore(&mut ex, &q, &s, &mut st, &mut out);
            black_box(out.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_deltas, bench_scans);
criterion_main!(benches);
