//! Bench target regenerating Table I (PPP, 1-Hamming tabu) at a reduced
//! default scale. Override with `LNLS_TRIES`, `LNLS_SCALE`, `LNLS_FULL=1`.

use lnls_bench::{env_opts, paper, print_comparison, run_paper_table};

fn main() {
    let opts = env_opts(5, 0.2);
    println!(
        "table1 @ {} tries, {:.3}x budget (env LNLS_TRIES/LNLS_SCALE/LNLS_FULL to change)",
        opts.tries, opts.iter_scale
    );
    let rows = run_paper_table(1, &opts);
    print_comparison("Table I — PPP, 1-Hamming tabu search", &rows, &paper::TABLE1);
}
