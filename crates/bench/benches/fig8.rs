//! Bench target regenerating Fig. 8: CPU vs GPU-texture execution time of
//! 10000 1-Hamming tabu iterations over the size ladder
//! (101,117) … (1501,1517).

use lnls_bench::{paper, print_fig8, run_fig8};
use lnls_ppp::{GpuExplorerConfig, PppInstance};

fn main() {
    let iters =
        std::env::var("LNLS_FIG8_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(10_000u64);
    let points = run_fig8(iters, &PppInstance::fig8_sizes(), &GpuExplorerConfig::default(), 2010);
    print_fig8(&points, iters);
    // The figure's qualitative anchors from the paper text.
    println!(
        "paper anchors: CPU wins below {}-{}; crossover x{:.1}; x{:.1} at {}-{}",
        paper::FIG8_CROSSOVER.0,
        paper::FIG8_CROSSOVER.1,
        paper::FIG8_CROSSOVER_ACCEL,
        paper::FIG8_MAX_ACCEL,
        paper::FIG8_MAX.0,
        paper::FIG8_MAX.1
    );
}
