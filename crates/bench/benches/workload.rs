//! Workload-scenario bench: every catalog scenario driven end to end
//! through the record/replay driver, reporting modeled throughput, tail
//! latency and backpressure — the regression surface of the scheduling
//! claims.
//!
//! ```text
//! cargo bench -p lnls-bench --bench workload
//! LNLS_WORKLOAD_SCALE=4 cargo bench -p lnls-bench --bench workload   # heavier traffic
//! ```
//!
//! Every row also lands in `BENCH_fleet.json` (path overridable with
//! `LNLS_BENCH_JSON_PATH`), merged with the fleet bench's rows, so the
//! perf trajectory is machine-trackable across PRs.

use lnls_gpu_sim::{EngineConfig, SelectionMode};
use lnls_runtime::RingSink;
use lnls_workload::{Driver, Scenario, TrafficGen};
use std::time::Instant;

fn main() {
    let scale: f64 =
        std::env::var("LNLS_WORKLOAD_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);
    let seed: u64 = std::env::var("LNLS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let mut json = criterion::summary::Sink::new("BENCH_fleet.json", "workload");

    println!("workload catalog sweep: scale ×{scale}, seed {seed}\n");
    println!(
        "{:>20} {:>5} | {:>12} {:>10} {:>12} {:>12} {:>9} {:>7} | {:>9}",
        "scenario",
        "jobs",
        "makespan(s)",
        "jobs/sim-s",
        "p95-wait(s)",
        "p99-turn(s)",
        "busy-frac",
        "reject",
        "sim-wall"
    );
    for scenario in Scenario::catalog() {
        let scenario = scenario.scaled(scale);
        let t0 = Instant::now();
        let (_, report) = Driver::record(&scenario, seed);
        let wall = t0.elapsed();
        let f = &report.fleet;
        let telemetry = f.telemetry.as_ref().expect("scenarios record telemetry");
        println!(
            "{:>20} {:>5} | {:>12.6} {:>10.1} {:>12.6} {:>12.6} {:>8.0}% {:>7} | {:>7.0}ms",
            report.scenario,
            report.submitted,
            f.makespan_s,
            f.jobs_per_sim_s,
            f.wait_p95_s,
            f.turnaround_p99_s,
            f.mean_device_utilization() * 100.0,
            f.jobs_rejected,
            wall.as_secs_f64() * 1e3,
        );
        json.record(&[
            ("scenario", report.scenario.as_str().into()),
            ("seed", seed.into()),
            ("jobs", report.submitted.into()),
            ("makespan_s", f.makespan_s.into()),
            ("throughput_jobs_per_sim_s", f.jobs_per_sim_s.into()),
            ("p50_wait_s", f.wait_p50_s.into()),
            ("p95_wait_s", f.wait_p95_s.into()),
            ("p99_wait_s", f.wait_p99_s.into()),
            ("p99_turnaround_s", f.turnaround_p99_s.into()),
            ("device_busy_fraction", f.mean_device_utilization().into()),
            ("max_queue_depth", telemetry.max_queue_depth().into()),
            ("jobs_rejected", f.jobs_rejected.into()),
            ("jobs_cancelled", f.jobs_cancelled.into()),
            ("crashes", report.crashes.into()),
        ]);
    }

    // Fleet-knob sweep: every catalog scenario re-run under the four
    // (engine layout × selection mode) combinations — the overlap +
    // argmin pricing trajectory. Traffic and search results are
    // identical across a row's four runs (the knobs are pricing-only);
    // what moves is the stream makespan and the PCIe bytes per
    // iteration.
    println!(
        "\n{:>20} {:>7} {:>7} | {:>12} {:>12} {:>9} | {:>12}",
        "scenario", "engines", "argmin", "makespan(s)", "serial(s)", "overlap", "d2h B/iter"
    );
    for scenario in Scenario::catalog() {
        for (engines, ename) in [(EngineConfig::gt200(), "gt200"), (EngineConfig::fermi(), "fermi")]
        {
            for (selection, sname) in
                [(SelectionMode::HostArgmin, "host"), (SelectionMode::DeviceArgmin, "device")]
            {
                let scenario = scenario.clone().scaled(scale).with_fleet_knobs(engines, selection);
                let (_, report) = Driver::record(&scenario, seed);
                let f = &report.fleet;
                println!(
                    "{:>20} {:>7} {:>7} | {:>12.6} {:>12.6} {:>8.3}x | {:>12.0}",
                    report.scenario,
                    ename,
                    sname,
                    f.stream_makespan_s,
                    f.stream_serialized_s,
                    f.stream_overlap_factor(),
                    f.d2h_bytes_per_iteration(),
                );
                json.record(&[
                    ("scenario", format!("{}/{ename}/{sname}", report.scenario).into()),
                    ("seed", seed.into()),
                    ("jobs", report.submitted.into()),
                    ("makespan_s", f.makespan_s.into()),
                    ("fused_stream_makespan_s", f.stream_makespan_s.into()),
                    ("fused_serial_sum_s", f.stream_serialized_s.into()),
                    ("stream_overlap_factor", f.stream_overlap_factor().into()),
                    ("h2d_bytes_per_iter", f.h2d_bytes_per_iteration().into()),
                    ("d2h_bytes_per_iter", f.d2h_bytes_per_iteration().into()),
                ]);
            }
        }
    }

    // Span-pipelining sweep: every catalog scenario re-run on a Fermi
    // layout with multi-iteration fused spans — per-iteration launches
    // first (pure double-buffered pipelining), then a persistent span
    // (pipelining plus launch-overhead amortization). Pricing-only
    // again: the per-iteration column of span 1 is exactly the fermi
    // row of the knob sweep above.
    println!(
        "\n{:>20} {:>18} | {:>12} {:>12} {:>10} {:>12}",
        "scenario", "span", "makespan(s)", "serial(s)", "iters/span", "ovh-saved(s)"
    );
    let span_settings = [
        (1u64, lnls_gpu_sim::LaunchMode::PerIteration, "span1/per-iter"),
        (8, lnls_gpu_sim::LaunchMode::PerIteration, "span8/per-iter"),
        (8, lnls_gpu_sim::LaunchMode::PersistentSpan, "span8/persistent"),
    ];
    for scenario in Scenario::catalog() {
        for (span, mode, label) in span_settings {
            let scenario = scenario
                .clone()
                .scaled(scale)
                .with_fleet_knobs(EngineConfig::fermi(), SelectionMode::HostArgmin)
                .with_span_knobs(span, mode);
            let (_, report) = Driver::record(&scenario, seed);
            let f = &report.fleet;
            println!(
                "{:>20} {:>18} | {:>12.6} {:>12.6} {:>10.2} {:>12.9}",
                report.scenario,
                label,
                f.stream_makespan_s,
                f.stream_serialized_s,
                f.mean_span_iterations(),
                f.launch_overhead_saved_s,
            );
            json.record(&[
                ("scenario", format!("{}/fermi/{label}", report.scenario).into()),
                ("seed", seed.into()),
                ("jobs", report.submitted.into()),
                ("makespan_s", f.makespan_s.into()),
                ("fused_stream_makespan_s", f.stream_makespan_s.into()),
                ("fused_serial_sum_s", f.stream_serialized_s.into()),
                ("stream_overlap_factor", f.stream_overlap_factor().into()),
                ("spans", f.spans.into()),
                ("mean_span_iterations", f.mean_span_iterations().into()),
                ("launch_overhead_saved_s", f.launch_overhead_saved_s.into()),
            ]);
        }
    }

    // Shard-scaling sweep: the same saturation-style traffic (96
    // generated tenants, fixed submission count) routed by consistent
    // hashing onto 1 → 64 single-device shards. Modeled throughput is
    // the merged fleet's jobs per simulated second; efficiency is
    // throughput over the 1-shard baseline divided by the shard count
    // (1.0 = perfect linear scaling — the tail flattens as the fixed
    // traffic stops saturating the fleet, which is the honest shape of
    // strong scaling).
    println!(
        "\n{:>20} {:>7} | {:>12} {:>10} {:>10} {:>7} | {:>9}",
        "scenario", "shards", "makespan(s)", "jobs/sim-s", "speedup", "effic", "sim-wall"
    );
    let mut base_jps = 0.0f64;
    for shards in [1usize, 2, 4, 8, 16, 32, 64] {
        let scenario = Scenario::saturation_sharded_sized(96, shards, (384.0 * scale) as u64);
        let t0 = Instant::now();
        let (_, report) = Driver::record(&scenario, seed);
        let wall = t0.elapsed();
        let f = &report.fleet;
        if shards == 1 {
            base_jps = f.jobs_per_sim_s;
        }
        let speedup = f.jobs_per_sim_s / base_jps;
        let efficiency = speedup / shards as f64;
        println!(
            "{:>20} {:>7} | {:>12.6} {:>10.1} {:>9.2}x {:>6.0}% | {:>7.0}ms",
            report.scenario,
            shards,
            f.makespan_s,
            f.jobs_per_sim_s,
            speedup,
            efficiency * 100.0,
            wall.as_secs_f64() * 1e3,
        );
        json.record(&[
            ("scenario", format!("saturation-sharded/shards-{shards}").into()),
            ("seed", seed.into()),
            ("shards", (shards as u64).into()),
            ("jobs", report.submitted.into()),
            ("makespan_s", f.makespan_s.into()),
            ("throughput_jobs_per_sim_s", f.jobs_per_sim_s.into()),
            ("scaling_speedup", speedup.into()),
            ("scaling_efficiency", efficiency.into()),
            ("jobs_rejected", f.jobs_rejected.into()),
            ("device_busy_fraction", f.mean_device_utilization().into()),
        ]);
    }

    // Worker-scaling sweep: one heavy trace (big neighborhoods, long
    // quanta — per-shard compute dominates the per-tick handoff)
    // recorded once, then replayed on the true-parallel runtime at
    // 1 → 8 worker threads. Modeled results are bit-identical at every
    // count — the parallel runtime is an execution detail — so the
    // tracked number is *wall clock*: real seconds to replay the same
    // trace, and real speedup over the 1-worker (serial-path) replay.
    // Wall speedup tracks min(workers, cores); each row records the
    // host's core count, so a 1-core CI box reporting ~1.0× is the
    // overhead bound (the barrier handoff costs nothing), while any
    // multicore host reports the actual gain.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as u64;
    println!(
        "\n{:>20} {:>8} | {:>10} {:>9} {:>7} | {:>12}   ({cores} core(s) available)",
        "scenario", "workers", "wall(ms)", "speedup", "effic", "report"
    );
    let heavy = {
        let mut s = Scenario::saturation_sharded_sized(32, 8, (48.0 * scale) as u64);
        s.name = "heavy-parallel".into();
        s.summary = "compute-heavy sharded traffic for the worker-thread sweep".into();
        for t in &mut s.tenants {
            t.dims = vec![96];
            t.iters = (192, 256);
        }
        s.fleet.quantum_iters = Some(64);
        s
    };
    let (heavy_trace, _) = Driver::record(&heavy, seed);
    let mut serial_wall = 0.0f64;
    let mut serial_bits = String::new();
    for workers in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let report = Driver::replay_with_workers(&heavy_trace, workers);
        let wall = t0.elapsed().as_secs_f64();
        let bits = format!("{:?}", report.fleet);
        if workers == 1 {
            serial_wall = wall;
            serial_bits = bits.clone();
        }
        let speedup = serial_wall / wall;
        assert_eq!(bits, serial_bits, "worker threads must not change the replayed bits");
        println!(
            "{:>20} {:>8} | {:>10.0} {:>8.2}x {:>6.0}% | {:>12}",
            heavy.name,
            workers,
            wall * 1e3,
            speedup,
            speedup / workers as f64 * 100.0,
            "identical",
        );
        json.record(&[
            ("scenario", format!("heavy-parallel/workers-{workers}").into()),
            ("seed", seed.into()),
            ("workers", (workers as u64).into()),
            ("cores", cores.into()),
            ("shards", (heavy.fleet.shards as u64).into()),
            ("jobs", (heavy_trace.arrivals.len() as u64).into()),
            ("replay_wall_s", wall.into()),
            ("wall_speedup", speedup.into()),
            ("wall_efficiency", (speedup / workers as f64).into()),
        ]);
    }

    // Delta-checkpoint size curve: fleets of growing live-job counts
    // snapshotted with the rotating base + dirty-delta checkpointer.
    // The drain cadence (max_batch) is held fixed, so per-tick churn is
    // constant while fleet state grows — base bytes must grow with the
    // fleet, delta bytes must track the (constant) churn. That gap is
    // the whole point of incremental checkpoints.
    println!(
        "\n{:>12} | {:>12} {:>12} {:>12} {:>10}",
        "live jobs", "base(B)", "mean-dlt(B)", "dlt/base", "dirty/dlt"
    );
    for live_jobs in [64usize, 128, 256, 512] {
        let dir = std::env::temp_dir()
            .join(format!("lnls-bench-delta-{live_jobs}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut fleet = lnls_runtime::Scheduler::with_uniform_fleet(
            1,
            lnls_gpu_sim::DeviceSpec::gtx280(),
            lnls_runtime::SchedulerConfig {
                max_batch: 4,
                quantum_iters: Some(8),
                ..Default::default()
            },
        );
        for i in 0..live_jobs {
            let n = 24;
            let hood = lnls_neighborhood::TwoHamming::new(n);
            let size = lnls_neighborhood::Neighborhood::size(&hood);
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(i as u64);
            let init = lnls_core::BitString::random(&mut rng, n);
            let search = lnls_core::TabuSearch::paper(
                lnls_core::SearchConfig::budget(64).with_seed(i as u64).with_target(None),
                size,
            );
            fleet.submit(lnls_runtime::BinaryJob::new(
                format!("curve-{i}"),
                lnls_problems::OneMax::new(n),
                hood,
                search,
                init,
            ));
        }
        let mut ckpt =
            lnls_runtime::DeltaCheckpointer::open(&dir, 64).expect("bench checkpoint dir opens");
        let base = ckpt.snapshot(&fleet).expect("base snapshot");
        let mut delta_bytes = 0u64;
        let mut dirty = 0usize;
        let ticks = 6u64;
        for _ in 0..ticks {
            fleet.tick();
            let stats = ckpt.snapshot(&fleet).expect("delta snapshot");
            delta_bytes += stats.bytes;
            dirty += stats.dirty_jobs;
        }
        let mean_delta = delta_bytes as f64 / ticks as f64;
        let mean_dirty = dirty as f64 / ticks as f64;
        println!(
            "{:>12} | {:>12} {:>12.0} {:>11.1}% {:>10.1}",
            live_jobs,
            base.bytes,
            mean_delta,
            mean_delta / base.bytes as f64 * 100.0,
            mean_dirty,
        );
        json.record(&[
            ("scenario", format!("delta-checkpoint/jobs-{live_jobs}").into()),
            ("seed", seed.into()),
            ("live_jobs", (live_jobs as u64).into()),
            ("base_bytes", base.bytes.into()),
            ("mean_delta_bytes", mean_delta.into()),
            ("delta_to_base_ratio", (mean_delta / base.bytes as f64).into()),
            ("mean_dirty_jobs_per_delta", mean_dirty.into()),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Observability overhead: the same trace replayed bare, with a
    // structured event sink, and with a live metrics registry. Reports
    // are bit-identical by construction (the neutrality proptest pins
    // that); what this row tracks is the *wall-time* cost of observing.
    let trace = TrafficGen::lower(&Scenario::saturation().scaled(scale), seed);
    let wall_of = |label: &str, f: &dyn Fn() -> u64| {
        let t0 = Instant::now();
        let events = f();
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        println!("{label:>20}: {wall:>7.1}ms ({events} events)");
        wall
    };
    println!("\nobservability overhead (saturation, wall-clock):");
    let bare_ms = wall_of("bare replay", &|| {
        Driver::replay(&trace);
        0
    });
    let observed_ms = wall_of("ring-sink replay", &|| {
        let ring = RingSink::unbounded().shared();
        Driver::replay_observed(&trace, Box::new(ring.clone()));
        let events = ring.lock().unwrap().len() as u64;
        events
    });
    let metered_ms = wall_of("metered replay", &|| {
        let (_, metrics) = Driver::replay_metered(&trace);
        metrics.counter("fleet_quanta_total")
    });
    json.record(&[
        ("scenario", "saturation/observability".into()),
        ("seed", seed.into()),
        ("bare_replay_ms", bare_ms.into()),
        ("observed_replay_ms", observed_ms.into()),
        ("metered_replay_ms", metered_ms.into()),
    ]);

    match json.finish() {
        Ok(path) => println!("\nmachine-readable summary: {}", path.display()),
        Err(e) => eprintln!("\ncould not write bench summary: {e}"),
    }
    println!("the nine scenarios cover: steady-state, burst storms vs. caps, priority inversion,");
    println!("deadline pressure, crash/restore churn, mixed-family saturation, destroy-and-repair");
    println!("LNS, portfolio races and sharded saturation — each one a deterministic");
    println!("(scenario, seed) pair any regression can replay bit-identically.");
}
