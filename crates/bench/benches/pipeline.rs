//! Bench target for A6: stream pipelining of independent walks (the
//! concurrency the paper's synchronous loop leaves on the table), and
//! the issue-order ablation on the GT200 FIFO engine queues.

use lnls_bench::per_iteration_book;
use lnls_gpu_sim::pipeline::{price_multiwalk_ordered, IssueOrder};
use lnls_gpu_sim::{DeviceSpec, EngineConfig, IterationProfile};
use lnls_ppp::{GpuExplorerConfig, Ppp, PppInstance};

fn main() {
    let spec = DeviceSpec::gtx280();
    println!("== A6: stream pipelining of independent tabu walks ==");
    println!("(profiled 2-Hamming PPP iteration; 1000 iterations per walk)\n");

    for (m, n) in [(101usize, 117usize), (501, 517)] {
        let problem = Ppp::new(PppInstance::generate(m, n, 1));
        let book = per_iteration_book(&problem, 2, &GpuExplorerConfig::default());
        let profile = IterationProfile {
            h2d_bytes: book.bytes_h2d,
            kernel_seconds: book.kernel_s,
            d2h_bytes: book.bytes_d2h,
        };
        println!(
            "{m}x{n}: iteration = {:.0} us upload + {:.0} us kernel + {:.0} us readback",
            lnls_gpu_sim::transfer_seconds(&spec, profile.h2d_bytes) * 1e6,
            (profile.kernel_seconds + spec.launch_overhead_s) * 1e6,
            lnls_gpu_sim::transfer_seconds(&spec, profile.d2h_bytes) * 1e6,
        );
        for (walks, streams) in [(1usize, 1usize), (2, 2), (4, 4)] {
            let bf = price_multiwalk_ordered(
                &spec,
                EngineConfig::gt200(),
                profile,
                walks,
                1000,
                streams,
                IssueOrder::BreadthFirst,
            );
            let df = price_multiwalk_ordered(
                &spec,
                EngineConfig::gt200(),
                profile,
                walks,
                1000,
                streams,
                IssueOrder::DepthFirst,
            );
            println!(
                "  {walks} walks/{streams} streams: breadth-first x{:.3}   depth-first x{:.3}",
                bf.speedup, df.speedup
            );
        }
        let fermi = price_multiwalk_ordered(
            &spec,
            EngineConfig::fermi(),
            profile,
            4,
            1000,
            4,
            IssueOrder::BreadthFirst,
        );
        println!("  (Fermi engines, 4 walks: x{:.3})\n", fermi.speedup);
    }
}
