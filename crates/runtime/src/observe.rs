//! Structured fleet observability: typed lifecycle events behind
//! pluggable sinks, a metrics registry with a Prometheus-text renderer,
//! and Chrome trace-event export.
//!
//! The paper's whole argument is an accounting one — launch overhead,
//! PCIe transfers and kernel occupancy decide whether large
//! neighborhoods pay off — yet end-of-run aggregates cannot show *where*
//! a job's latency went. This module makes the fleet's execution
//! narratable:
//!
//! * **Events**: the scheduler and the [`FleetClient`](crate::FleetClient)
//!   emit a typed [`FleetEvent`] stream ([`Submitted`](FleetEvent::Submitted)
//!   through [`Cancelled`](FleetEvent::Cancelled)), each stamped with
//!   the scheduler tick and the *modeled* fleet clock ([`EventRecord`]).
//!   No wall clock is ever read, so an attached sink observes a byte-
//!   reproducible stream.
//! * **Sinks**: anything implementing [`EventSink`] can be attached via
//!   [`Scheduler::attach_sink`](crate::Scheduler::attach_sink) — the
//!   bundled [`RingSink`] keeps records in memory (optionally bounded),
//!   [`JsonlSink`] streams JSON Lines to disk. Emission is strictly
//!   observational and zero-cost when nothing is attached: results are
//!   bit-identical with and without a sink (the neutrality proptest
//!   holds the whole `FleetReport` Debug rendering to that standard).
//! * **Metrics**: a [`MetricsRegistry`] of counters, gauges and
//!   log2-bucket [`Histogram`]s fed from the same event stream, with a
//!   snapshot API and [`MetricsRegistry::render_prometheus`].
//! * **Traces**: [`chrome_trace`] lowers per-device quantum occupancy
//!   into Chrome trace-event JSON (openable in Perfetto / `chrome://tracing`);
//!   the gpu-sim `Schedule` has the per-engine equivalent.

use crate::job::JobId;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// Why a submission was refused (the typed payload of
/// [`FleetEvent::Rejected`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The global queue cap bounced the submission outright.
    QueueFull,
    /// The per-tenant queue cap bounced the submission outright.
    TenantQueueFull,
    /// A queued job was shed to make room for a higher-priority arrival.
    Shed,
    /// The concurrency limiter bounced the submission: too many jobs
    /// already in flight (queued + running).
    Overloaded,
}

impl RejectReason {
    /// Stable lower-snake label used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::TenantQueueFull => "tenant_queue_full",
            RejectReason::Shed => "shed",
            RejectReason::Overloaded => "overloaded",
        }
    }
}

/// One typed fleet lifecycle event. All times are modeled fleet seconds;
/// device labels are backend names (`dev0[GTX 280]`, `cpu1`).
#[derive(Clone, Debug, PartialEq)]
pub enum FleetEvent {
    /// A job entered the scheduler queue.
    Submitted {
        /// The job's identity.
        job: JobId,
        /// Submission name.
        name: String,
        /// Tenant attribution from the envelope.
        tenant: String,
        /// Queue priority.
        priority: u8,
    },
    /// Admission control accepted a submission
    /// (emitted by [`FleetClient`](crate::FleetClient)).
    Admitted {
        /// The admitted job.
        job: JobId,
    },
    /// A submission was refused: an outright bounce (`job: None` — it
    /// never got an identity) or a queued job shed to make room.
    Rejected {
        /// The shed job, when one existed.
        job: Option<JobId>,
        /// Tenant the refusal hit.
        tenant: String,
        /// Which admission rule said no.
        reason: RejectReason,
    },
    /// A queued job won placement on a backend.
    Placed {
        /// The placed job.
        job: JobId,
        /// Backend label.
        device: String,
    },
    /// A placement fused multiple same-key jobs into one launch group.
    BatchFused {
        /// Backend label.
        device: String,
        /// Jobs sharing the fused assignment.
        lanes: u64,
    },
    /// A backend began one scheduling quantum.
    QuantumStart {
        /// Backend label.
        device: String,
        /// Jobs in the assignment.
        jobs: Vec<JobId>,
        /// Backend clock when the quantum began.
        start_s: f64,
    },
    /// A backend finished one scheduling quantum.
    QuantumEnd {
        /// Backend label.
        device: String,
        /// Jobs in the assignment.
        jobs: Vec<JobId>,
        /// Job-iterations executed (each fused member counts one per
        /// fused launch — the same accounting as
        /// [`FleetReport::iterations_executed`](crate::FleetReport::iterations_executed)).
        iters: u64,
        /// Modeled seconds the quantum charged to the backend clock.
        makespan_s: f64,
        /// Backend clock when the quantum began.
        start_s: f64,
        /// Backend clock when the quantum ended.
        end_s: f64,
        /// PCIe bytes uploaded during the quantum (0 on CPU workers).
        bytes_h2d: u64,
        /// PCIe bytes read back during the quantum (0 on CPU workers).
        bytes_d2h: u64,
    },
    /// An assignment hit its slice boundary and its survivors returned
    /// to the queue. One event per preempted *assignment* (the same
    /// accounting as [`FleetReport::preemptions`](crate::FleetReport::preemptions)).
    Preempted {
        /// Backend label.
        device: String,
        /// The jobs sent back to the queue.
        jobs: Vec<JobId>,
    },
    /// An auto-checkpoint was written.
    Checkpointed {
        /// Jobs captured while queued or in flight.
        pending: u64,
    },
    /// A job completed normally.
    Completed {
        /// The finished job.
        job: JobId,
        /// Backend it retired from.
        device: String,
        /// Queue wait (modeled seconds).
        wait_s: f64,
        /// Turnaround (modeled seconds).
        turnaround_s: f64,
    },
    /// A job drained through the cancellation path (explicit cancel or
    /// missed deadline).
    Cancelled {
        /// The cancelled job.
        job: JobId,
        /// Queue wait (modeled seconds).
        wait_s: f64,
        /// Turnaround (modeled seconds).
        turnaround_s: f64,
    },
}

impl FleetEvent {
    /// Stable lower-snake label used as the JSON `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            FleetEvent::Submitted { .. } => "submitted",
            FleetEvent::Admitted { .. } => "admitted",
            FleetEvent::Rejected { .. } => "rejected",
            FleetEvent::Placed { .. } => "placed",
            FleetEvent::BatchFused { .. } => "batch_fused",
            FleetEvent::QuantumStart { .. } => "quantum_start",
            FleetEvent::QuantumEnd { .. } => "quantum_end",
            FleetEvent::Preempted { .. } => "preempted",
            FleetEvent::Checkpointed { .. } => "checkpointed",
            FleetEvent::Completed { .. } => "completed",
            FleetEvent::Cancelled { .. } => "cancelled",
        }
    }
}

/// A [`FleetEvent`] stamped with the scheduler tick and the modeled
/// fleet clock at emission.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Scheduler tick counter at emission (monotone; survives
    /// checkpoint/restore).
    pub tick: u64,
    /// Fleet clock at emission (modeled seconds — never wall clock, so
    /// recorded streams are byte-reproducible).
    pub now_s: f64,
    /// The event itself.
    pub event: FleetEvent,
}

/// Render a finite f64 as a JSON number. Rust's `Debug` formatting is
/// the deterministic shortest round-trip rendering, and every string it
/// produces for a finite value (`0.1`, `5.0`, `1e-5`) is a valid JSON
/// number — which is what makes recorded JSONL streams byte-identical
/// across runs.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_jobs(jobs: &[JobId]) -> String {
    let ids: Vec<String> = jobs.iter().map(|j| j.0.to_string()).collect();
    format!("[{}]", ids.join(","))
}

impl EventRecord {
    /// One-line JSON object (the JSONL format [`JsonlSink`] writes).
    /// Hand-rolled — the offline environment has no serde — and
    /// deterministic: two identical replays produce byte-identical
    /// lines.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"tick\":{},\"now_s\":{},\"kind\":\"{}\"",
            self.tick,
            json_f64(self.now_s),
            self.event.kind()
        );
        match &self.event {
            FleetEvent::Submitted { job, name, tenant, priority } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"name\":\"{}\",\"tenant\":\"{}\",\"priority\":{}",
                    job.0,
                    json_escape(name),
                    json_escape(tenant),
                    priority
                );
            }
            FleetEvent::Admitted { job } => {
                let _ = write!(s, ",\"job\":{}", job.0);
            }
            FleetEvent::Rejected { job, tenant, reason } => {
                match job {
                    Some(id) => {
                        let _ = write!(s, ",\"job\":{}", id.0);
                    }
                    None => s.push_str(",\"job\":null"),
                }
                let _ = write!(
                    s,
                    ",\"tenant\":\"{}\",\"reason\":\"{}\"",
                    json_escape(tenant),
                    reason.as_str()
                );
            }
            FleetEvent::Placed { job, device } => {
                let _ = write!(s, ",\"job\":{},\"device\":\"{}\"", job.0, json_escape(device));
            }
            FleetEvent::BatchFused { device, lanes } => {
                let _ = write!(s, ",\"device\":\"{}\",\"lanes\":{lanes}", json_escape(device));
            }
            FleetEvent::QuantumStart { device, jobs, start_s } => {
                let _ = write!(
                    s,
                    ",\"device\":\"{}\",\"jobs\":{},\"start_s\":{}",
                    json_escape(device),
                    json_jobs(jobs),
                    json_f64(*start_s)
                );
            }
            FleetEvent::QuantumEnd {
                device,
                jobs,
                iters,
                makespan_s,
                start_s,
                end_s,
                bytes_h2d,
                bytes_d2h,
            } => {
                let _ = write!(
                    s,
                    ",\"device\":\"{}\",\"jobs\":{},\"iters\":{iters},\"makespan_s\":{},\
                     \"start_s\":{},\"end_s\":{},\"bytes_h2d\":{bytes_h2d},\"bytes_d2h\":{bytes_d2h}",
                    json_escape(device),
                    json_jobs(jobs),
                    json_f64(*makespan_s),
                    json_f64(*start_s),
                    json_f64(*end_s)
                );
            }
            FleetEvent::Preempted { device, jobs } => {
                let _ = write!(
                    s,
                    ",\"device\":\"{}\",\"jobs\":{}",
                    json_escape(device),
                    json_jobs(jobs)
                );
            }
            FleetEvent::Checkpointed { pending } => {
                let _ = write!(s, ",\"pending\":{pending}");
            }
            FleetEvent::Completed { job, device, wait_s, turnaround_s } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"device\":\"{}\",\"wait_s\":{},\"turnaround_s\":{}",
                    job.0,
                    json_escape(device),
                    json_f64(*wait_s),
                    json_f64(*turnaround_s)
                );
            }
            FleetEvent::Cancelled { job, wait_s, turnaround_s } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"wait_s\":{},\"turnaround_s\":{}",
                    job.0,
                    json_f64(*wait_s),
                    json_f64(*turnaround_s)
                );
            }
        }
        s.push('}');
        s
    }
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// Where emitted [`EventRecord`]s go. Sinks are strictly observational:
/// the scheduler never reads anything back, so attaching one cannot
/// change results (the neutrality proptest pins this down). Sinks are
/// *not* checkpointed — a restored fleet starts unobserved, like
/// telemetry. Sinks are `Send` so a whole scheduler (and therefore a
/// shard) can be handed to a worker thread by the parallel runtime.
pub trait EventSink: Send {
    /// Receive one stamped event.
    fn emit(&mut self, record: &EventRecord);
    /// Flush any buffered output (called on detach; a no-op by default).
    fn flush(&mut self) {}
}

/// Shared handles observe too: `Arc<Mutex<Sink>>` lets a caller keep a
/// read handle while the scheduler owns the attached `Box<dyn EventSink>`.
/// The scheduler never re-enters the sink while a caller holds the lock,
/// and the parallel runtime only ticks a shard from one worker at a time,
/// so the mutex is uncontended in practice.
impl<S: EventSink> EventSink for Arc<Mutex<S>> {
    fn emit(&mut self, record: &EventRecord) {
        self.lock().expect("sink lock").emit(record);
    }
    fn flush(&mut self) {
        self.lock().expect("sink lock").flush();
    }
}

/// An in-memory event sink: unbounded, or a ring keeping the newest
/// `capacity` records.
#[derive(Clone, Debug, Default)]
pub struct RingSink {
    capacity: Option<usize>,
    records: VecDeque<EventRecord>,
}

impl RingSink {
    /// A sink that keeps every record.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A ring keeping only the newest `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { capacity: Some(capacity.max(1)), records: VecDeque::new() }
    }

    /// Wrap into a shared handle: clone one side, attach the other
    /// (boxed) to the scheduler, and read the records afterwards.
    pub fn shared(self) -> Arc<Mutex<RingSink>> {
        Arc::new(Mutex::new(self))
    }

    /// Records captured so far, oldest first.
    pub fn records(&self) -> Vec<EventRecord> {
        self.records.iter().cloned().collect()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was captured (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drain the captured records, oldest first.
    pub fn take(&mut self) -> Vec<EventRecord> {
        std::mem::take(&mut self.records).into_iter().collect()
    }
}

impl EventSink for RingSink {
    fn emit(&mut self, record: &EventRecord) {
        self.records.push_back(record.clone());
        if let Some(cap) = self.capacity {
            while self.records.len() > cap {
                self.records.pop_front();
            }
        }
    }
}

/// A JSON Lines file sink: one [`EventRecord::to_json`] object per line,
/// buffered, flushed on [`flush`](EventSink::flush) and on drop. Because
/// every stamp is modeled time, two identical replays write
/// byte-identical files.
pub struct JsonlSink {
    out: io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self { out: io::BufWriter::new(std::fs::File::create(path)?) })
    }
}

impl EventSink for JsonlSink {
    fn emit(&mut self, record: &EventRecord) {
        let _ = writeln!(self.out, "{}", record.to_json());
    }
    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// Histogram bucket bounds are powers of two from `2^MIN_EXP` to
/// `2^MAX_EXP` — wide enough for microsecond quanta and gigabyte byte
/// counts alike.
const MIN_EXP: i32 = -30;
const MAX_EXP: i32 = 30;
const N_BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize;

/// A log2-bucket histogram: observation `v` lands in the first bucket
/// whose upper bound `2^k` satisfies `v ≤ 2^k` (non-positive values land
/// in the lowest bucket). Deterministic and allocation-light — the
/// per-bucket counts are a fixed array.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { counts: vec![0; N_BUCKETS], count: 0, sum: 0.0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(v: f64) -> usize {
        if v <= 0.0 || !v.is_finite() {
            return 0;
        }
        let exp = v.log2().ceil() as i32;
        (exp.clamp(MIN_EXP, MAX_EXP) - MIN_EXP) as usize
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Fold another histogram into this one (the bucket layout is
    /// fixed, so bucket counts add element-wise).
    pub fn absorb(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// `(upper_bound, cumulative_count)` for every non-empty bucket, in
    /// ascending bound order (the Prometheus exposition shape).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if c > 0 {
                out.push(((2f64).powi(MIN_EXP + i as i32), cum));
            }
        }
        out
    }
}

/// Counters, gauges and log2-bucket histograms fed from the fleet event
/// stream, with a snapshot API and a Prometheus text renderer.
///
/// Attach with [`Scheduler::attach_metrics`](crate::Scheduler::attach_metrics)
/// (or `enable_metrics`); the scheduler routes every emitted event
/// through [`record`](Self::record) before the sink sees it. The
/// registry is observational and never checkpointed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name` (created at zero on first touch).
    pub fn inc_by(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.inc_by(name, 1);
    }

    /// Set gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Fold `other` into this registry: counters and histogram buckets
    /// add (both are monotone totals, so per-shard registries merge
    /// into exact fleet-wide ones); a gauge keeps the larger of the two
    /// readings (gauges are point-in-time samples, and the merged view
    /// reports the worst shard).
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for (name, n) in &other.counters {
            self.inc_by(name, *n);
        }
        for (name, v) in &other.gauges {
            let g = self.gauges.entry(name.clone()).or_insert(f64::NEG_INFINITY);
            *g = g.max(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().absorb(h);
        }
    }

    /// Current value of counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation created it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Route one event into the standard fleet metric set:
    ///
    /// | metric | type | fed by |
    /// |---|---|---|
    /// | `fleet_jobs_submitted_total` | counter | `Submitted` |
    /// | `fleet_jobs_admitted_total` | counter | `Admitted` |
    /// | `fleet_jobs_rejected_total` | counter | `Rejected` (bounces + sheds) |
    /// | `fleet_jobs_completed_total` | counter | `Completed` |
    /// | `fleet_jobs_cancelled_total` | counter | `Cancelled` |
    /// | `fleet_placements_total` | counter | `Placed` |
    /// | `fleet_batches_fused_total` | counter | `BatchFused` (groups formed) |
    /// | `fleet_preemptions_total` | counter | `Preempted` (assignments) |
    /// | `fleet_checkpoints_total` | counter | `Checkpointed` |
    /// | `fleet_quanta_total` | counter | `QuantumEnd` |
    /// | `fleet_iterations_total` | counter | `QuantumEnd` iters |
    /// | `fleet_bytes_h2d_total` / `fleet_bytes_d2h_total` | counter | `QuantumEnd` bytes |
    /// | `fleet_wait_seconds` / `fleet_turnaround_seconds` | histogram | `Completed`/`Cancelled` |
    /// | `fleet_quantum_makespan_seconds` | histogram | `QuantumEnd` |
    /// | `fleet_bytes_per_iteration` | histogram | `QuantumEnd` |
    pub fn record(&mut self, record: &EventRecord) {
        match &record.event {
            FleetEvent::Submitted { .. } => self.inc("fleet_jobs_submitted_total"),
            FleetEvent::Admitted { .. } => self.inc("fleet_jobs_admitted_total"),
            FleetEvent::Rejected { .. } => self.inc("fleet_jobs_rejected_total"),
            FleetEvent::Placed { .. } => self.inc("fleet_placements_total"),
            FleetEvent::BatchFused { .. } => self.inc("fleet_batches_fused_total"),
            FleetEvent::QuantumStart { .. } => {}
            FleetEvent::QuantumEnd { iters, makespan_s, bytes_h2d, bytes_d2h, .. } => {
                self.inc("fleet_quanta_total");
                self.inc_by("fleet_iterations_total", *iters);
                self.inc_by("fleet_bytes_h2d_total", *bytes_h2d);
                self.inc_by("fleet_bytes_d2h_total", *bytes_d2h);
                self.observe("fleet_quantum_makespan_seconds", *makespan_s);
                if *iters > 0 {
                    let bytes = (*bytes_h2d + *bytes_d2h) as f64;
                    self.observe("fleet_bytes_per_iteration", bytes / *iters as f64);
                }
            }
            FleetEvent::Preempted { .. } => self.inc("fleet_preemptions_total"),
            FleetEvent::Checkpointed { .. } => self.inc("fleet_checkpoints_total"),
            FleetEvent::Completed { wait_s, turnaround_s, .. } => {
                self.inc("fleet_jobs_completed_total");
                self.observe("fleet_wait_seconds", *wait_s);
                self.observe("fleet_turnaround_seconds", *turnaround_s);
            }
            FleetEvent::Cancelled { wait_s, turnaround_s, .. } => {
                self.inc("fleet_jobs_cancelled_total");
                self.observe("fleet_wait_seconds", *wait_s);
                self.observe("fleet_turnaround_seconds", *turnaround_s);
            }
        }
    }

    /// Render the whole registry in the Prometheus text exposition
    /// format: `# TYPE` headers, plain counters/gauges, and cumulative
    /// `_bucket{le="..."}` lines (non-empty buckets plus `+Inf`) with
    /// `_sum`/`_count` per histogram.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", json_f64(*v));
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (bound, cum) in h.cumulative_buckets() {
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", json_f64(bound));
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", json_f64(h.sum()));
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

// ---------------------------------------------------------------------
// Scheduler-side state
// ---------------------------------------------------------------------

/// The scheduler's observability attachment point: an optional sink and
/// an optional metrics registry. Never checkpointed — a restored fleet
/// starts unobserved, exactly like telemetry.
#[derive(Default)]
pub(crate) struct ObserveState {
    pub sink: Option<Box<dyn EventSink>>,
    pub metrics: Option<MetricsRegistry>,
}

impl ObserveState {
    /// True when anything is attached — the zero-cost guard every
    /// emission site checks before building event payloads.
    pub fn enabled(&self) -> bool {
        self.sink.is_some() || self.metrics.is_some()
    }

    /// Feed the metrics registry, then the sink.
    pub fn emit(&mut self, record: EventRecord) {
        if let Some(m) = self.metrics.as_mut() {
            m.record(&record);
        }
        if let Some(s) = self.sink.as_mut() {
            s.emit(&record);
        }
    }
}

// ---------------------------------------------------------------------
// Event analytics
// ---------------------------------------------------------------------

/// Per-tenant lifecycle counts aggregated from an event stream (see
/// [`tenant_summaries`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantSummary {
    /// The tenant (empty string = unattributed submissions).
    pub tenant: String,
    /// `Submitted` events.
    pub submitted: u64,
    /// `Admitted` events.
    pub admitted: u64,
    /// `Rejected` events (bounces and sheds).
    pub rejected: u64,
    /// Preemption *hits*: how many times one of the tenant's jobs was
    /// sent back to the queue at a slice boundary.
    pub preempted: u64,
    /// `Completed` events.
    pub completed: u64,
    /// `Cancelled` events.
    pub cancelled: u64,
}

/// Aggregate an event stream into per-tenant lifecycle counts, in
/// tenant-name order. Job→tenant attribution comes from the `Submitted`
/// events in the same stream, so feed it a stream captured from the
/// beginning of the run.
pub fn tenant_summaries(records: &[EventRecord]) -> Vec<TenantSummary> {
    fn touch<'a>(
        tenants: &'a mut BTreeMap<String, TenantSummary>,
        tenant: &str,
    ) -> &'a mut TenantSummary {
        if !tenants.contains_key(tenant) {
            tenants.insert(
                tenant.to_string(),
                TenantSummary { tenant: tenant.to_string(), ..Default::default() },
            );
        }
        tenants.get_mut(tenant).expect("just inserted")
    }
    let mut tenants: BTreeMap<String, TenantSummary> = BTreeMap::new();
    let mut job_tenant: BTreeMap<JobId, String> = BTreeMap::new();
    for rec in records {
        match &rec.event {
            FleetEvent::Submitted { job, tenant, .. } => {
                job_tenant.insert(*job, tenant.clone());
                touch(&mut tenants, tenant).submitted += 1;
            }
            FleetEvent::Admitted { job } => {
                let tenant = job_tenant.get(job).cloned().unwrap_or_default();
                touch(&mut tenants, &tenant).admitted += 1;
            }
            FleetEvent::Rejected { tenant, .. } => {
                touch(&mut tenants, tenant).rejected += 1;
            }
            FleetEvent::Preempted { jobs, .. } => {
                for job in jobs {
                    let tenant = job_tenant.get(job).cloned().unwrap_or_default();
                    touch(&mut tenants, &tenant).preempted += 1;
                }
            }
            FleetEvent::Completed { job, .. } => {
                let tenant = job_tenant.get(job).cloned().unwrap_or_default();
                touch(&mut tenants, &tenant).completed += 1;
            }
            FleetEvent::Cancelled { job, .. } => {
                let tenant = job_tenant.get(job).cloned().unwrap_or_default();
                touch(&mut tenants, &tenant).cancelled += 1;
            }
            _ => {}
        }
    }
    tenants.into_values().collect()
}

/// Lower a fleet event stream into Chrome trace-event JSON
/// (`{"traceEvents":[...]}` — openable in Perfetto or
/// `chrome://tracing`). Each backend becomes one thread row (named via
/// `thread_name` metadata, in first-seen order); every `QuantumEnd`
/// becomes a complete (`ph:"X"`) span on its backend's row with
/// iteration and byte counts in `args`; preemptions and checkpoints
/// render as instant events. Timestamps are modeled seconds scaled to
/// microseconds (the trace format's unit).
pub fn chrome_trace(records: &[EventRecord]) -> String {
    let mut rows: BTreeMap<String, usize> = BTreeMap::new();
    let mut events: Vec<String> = Vec::new();
    let mut meta: Vec<String> = Vec::new();
    let tid_of = |device: &str, rows: &mut BTreeMap<String, usize>, meta: &mut Vec<String>| {
        if let Some(&tid) = rows.get(device) {
            return tid;
        }
        let tid = rows.len();
        rows.insert(device.to_string(), tid);
        meta.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(device)
        ));
        tid
    };
    for rec in records {
        match &rec.event {
            FleetEvent::QuantumEnd {
                device,
                jobs,
                iters,
                start_s,
                end_s,
                bytes_h2d,
                bytes_d2h,
                ..
            } => {
                let tid = tid_of(device, &mut rows, &mut meta);
                let names: Vec<String> = jobs.iter().map(|j| format!("j{}", j.0)).collect();
                events.push(format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"quantum\",\
                     \"ts\":{},\"dur\":{},\"args\":{{\"iters\":{iters},\"bytes_h2d\":{bytes_h2d},\
                     \"bytes_d2h\":{bytes_d2h}}}}}",
                    json_escape(&names.join("+")),
                    json_f64(start_s * 1e6),
                    json_f64((end_s - start_s).max(0.0) * 1e6)
                ));
            }
            FleetEvent::Preempted { device, jobs } => {
                let tid = tid_of(device, &mut rows, &mut meta);
                events.push(format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"name\":\"preempt ({} jobs)\",\
                     \"cat\":\"scheduler\",\"ts\":{},\"s\":\"t\"}}",
                    jobs.len(),
                    json_f64(rec.now_s * 1e6)
                ));
            }
            FleetEvent::Checkpointed { pending } => {
                events.push(format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"name\":\"checkpoint ({pending} pending)\",\
                     \"cat\":\"scheduler\",\"ts\":{},\"s\":\"g\"}}",
                    json_f64(rec.now_s * 1e6)
                ));
            }
            _ => {}
        }
    }
    let mut all = meta;
    all.extend(events);
    format!("{{\"traceEvents\":[{}]}}", all.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(event: FleetEvent) -> EventRecord {
        EventRecord { tick: 3, now_s: 0.001, event }
    }

    #[test]
    fn json_lines_are_deterministic_and_escaped() {
        let rec = record(FleetEvent::Submitted {
            job: JobId(7),
            name: "a\"b".into(),
            tenant: "t\\1".into(),
            priority: 5,
        });
        let line = rec.to_json();
        assert_eq!(line, rec.to_json(), "rendering must be deterministic");
        assert!(line.contains("\\\"b"), "quotes must be escaped: {line}");
        assert!(line.contains("t\\\\1"), "backslashes must be escaped: {line}");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"kind\":\"submitted\""));
    }

    #[test]
    fn json_f64_renders_valid_numbers() {
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(5.0), "5.0");
        assert_eq!(json_f64(1e-5), "1e-5");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
    }

    #[test]
    fn ring_sink_bounds_and_shares() {
        let mut ring = RingSink::with_capacity(2);
        for i in 0..5u64 {
            ring.emit(&EventRecord {
                tick: i,
                now_s: 0.0,
                event: FleetEvent::Admitted { job: JobId(i) },
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.records()[0].tick, 3, "oldest records are evicted first");

        let shared = RingSink::unbounded().shared();
        let mut boxed: Box<dyn EventSink> = Box::new(shared.clone());
        boxed.emit(&record(FleetEvent::Admitted { job: JobId(0) }));
        assert_eq!(
            shared.lock().unwrap().len(),
            1,
            "the shared handle sees the boxed side's emits"
        );
    }

    #[test]
    fn histogram_buckets_are_log2_and_cumulative() {
        let mut h = Histogram::new();
        for v in [0.0, 1e-6, 1e-6, 3.0, 1e12] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        for w in buckets.windows(2) {
            assert!(w[1].0 > w[0].0 && w[1].1 >= w[0].1, "bounds and counts ascend");
        }
        assert_eq!(buckets.last().unwrap().1, 5, "the top bucket is cumulative over everything");
        // 3.0 lands in the 2^2 bucket (3 ≤ 4), not 2^1.
        assert!(buckets.iter().any(|&(b, _)| (b - 4.0).abs() < 1e-12));
    }

    #[test]
    fn registry_routes_events_and_renders_prometheus() {
        let mut reg = MetricsRegistry::new();
        reg.record(&record(FleetEvent::Completed {
            job: JobId(0),
            device: "dev0".into(),
            wait_s: 1e-4,
            turnaround_s: 2e-4,
        }));
        reg.record(&record(FleetEvent::QuantumEnd {
            device: "dev0".into(),
            jobs: vec![JobId(0)],
            iters: 4,
            makespan_s: 1e-3,
            start_s: 0.0,
            end_s: 1e-3,
            bytes_h2d: 100,
            bytes_d2h: 300,
        }));
        reg.set_gauge("fleet_queue_depth", 2.0);
        assert_eq!(reg.counter("fleet_jobs_completed_total"), 1);
        assert_eq!(reg.counter("fleet_iterations_total"), 4);
        assert_eq!(reg.counter("fleet_bytes_d2h_total"), 300);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE fleet_jobs_completed_total counter"));
        assert!(text.contains("fleet_jobs_completed_total 1"));
        assert!(text.contains("# TYPE fleet_queue_depth gauge"));
        assert!(text.contains("fleet_wait_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("fleet_wait_seconds_count 1"));
    }

    #[test]
    fn tenant_summaries_attribute_through_the_job_map() {
        let records = vec![
            record(FleetEvent::Submitted {
                job: JobId(1),
                name: "a".into(),
                tenant: "alpha".into(),
                priority: 0,
            }),
            record(FleetEvent::Admitted { job: JobId(1) }),
            record(FleetEvent::Preempted { device: "dev0".into(), jobs: vec![JobId(1)] }),
            record(FleetEvent::Completed {
                job: JobId(1),
                device: "dev0".into(),
                wait_s: 0.0,
                turnaround_s: 0.0,
            }),
            record(FleetEvent::Rejected {
                job: None,
                tenant: "beta".into(),
                reason: RejectReason::QueueFull,
            }),
        ];
        let summaries = tenant_summaries(&records);
        assert_eq!(summaries.len(), 2);
        let alpha = &summaries[0];
        assert_eq!(
            (alpha.tenant.as_str(), alpha.admitted, alpha.preempted, alpha.completed),
            ("alpha", 1, 1, 1)
        );
        assert_eq!((summaries[1].tenant.as_str(), summaries[1].rejected), ("beta", 1));
    }

    #[test]
    fn chrome_trace_has_rows_and_spans() {
        let records = vec![
            record(FleetEvent::QuantumEnd {
                device: "dev0[GTX 280]".into(),
                jobs: vec![JobId(1), JobId(2)],
                iters: 2,
                makespan_s: 1e-3,
                start_s: 0.0,
                end_s: 1e-3,
                bytes_h2d: 64,
                bytes_d2h: 4096,
            }),
            record(FleetEvent::Preempted { device: "dev0[GTX 280]".into(), jobs: vec![JobId(1)] }),
        ];
        let json = chrome_trace(&records);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"j1+j2\""));
        assert!(json.contains("\"ph\":\"i\""));
    }
}
