//! Incremental (delta) checkpoints: per-shard dirty-job deltas against
//! a rotating base snapshot.
//!
//! [`Scheduler::checkpoint`](crate::Scheduler::checkpoint) serializes
//! every live job, so its cost grows with fleet size even when almost
//! nothing moved since the last snapshot — fine for one scheduler,
//! ruinous for a sharded fleet snapshotting every few ticks. A
//! [`DeltaCheckpointer`] instead writes a full **base** snapshot once
//! per epoch and then small **delta** segments against it:
//!
//! * **Dirty jobs only.** A job is re-encoded only when its iteration
//!   count moved since the last segment (every state change a cursor
//!   can make advances its iteration counter, so the counter is a
//!   sound one-word fingerprint). Jobs parked in the queue cost
//!   nothing per delta beyond their id.
//! * **Differential queue layout.** The scheduler only ever removes
//!   queue entries in place and appends at the tail, so the queue is
//!   encoded as `(removed ids, deficit updates, appended entries)`
//!   against the previous segment — `O(churn)`, not `O(queue)`. When
//!   an exotic mutation breaks that shape (e.g. a job stolen away and
//!   re-adopted between snapshots), the segment falls back to a full
//!   layout, flagged as such.
//! * **Append-only report log.** Completed-job reports are written
//!   once, in the segment where they first appeared.
//! * **Rotation + compaction.** After `deltas_per_base` segments the
//!   next snapshot is a fresh base in a new epoch, and every segment
//!   of older epochs is deleted — disk usage is bounded by one base
//!   plus one epoch of deltas.
//!
//! Segments live in one directory per scheduler (`base-NNNNNNNN.ckpt`,
//! `delta-NNNNNNNN-NNNNNNNN.ckpt`); [`CheckpointStore::load_latest`]
//! finds the newest epoch, replays its chain in index order and
//! returns a [`FleetCheckpoint`] identical to what a full
//! [`checkpoint()`](crate::Scheduler::checkpoint) at the same instant
//! would have produced. A broken chain — missing base, a gap in the
//! delta indices, a truncated or garbled segment — comes back as a
//! typed [`CheckpointError`] naming the exact segment, so the operator
//! knows *which* file to restore instead of staring at a generic
//! decode failure.

use crate::exec::JobExec;
use crate::job::{JobId, JobReport};
use crate::persist::{encode_job, read_report, write_report, JobRegistry};
use crate::scheduler::{
    ActiveJob, ActiveSnapshot, FleetCheckpoint, JobMeta, QueueEntry, Scheduler,
};
use lnls_core::persist::{Persist, PersistError, Reader};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Magic prefix of a delta segment (`LNLSDLT` + format version).
const DELTA_MAGIC: &[u8; 8] = b"LNLSDLT\x01";

/// Typed failure modes of checkpoint loading — every variant names the
/// segment (file) that broke the chain.
#[derive(Debug)]
pub enum CheckpointError {
    /// The base snapshot a chain needs is gone (or a directly-loaded
    /// checkpoint file does not exist).
    MissingBase {
        /// Path of the missing base segment.
        segment: String,
    },
    /// The delta chain has a hole: `index` is absent while later
    /// segments of the same epoch exist.
    MissingDelta {
        /// Path the missing segment should have had.
        segment: String,
        /// Epoch of the broken chain.
        epoch: u64,
        /// The first missing delta index.
        index: u64,
    },
    /// A segment exists but does not decode (truncated, garbled, or
    /// referencing a job the chain never carried).
    CorruptSegment {
        /// Path of the segment that failed to decode.
        segment: String,
        /// The decoder's diagnosis.
        source: PersistError,
    },
    /// The store directory holds no snapshot at all.
    Empty {
        /// The directory that was scanned.
        dir: String,
    },
    /// An I/O failure outside the not-found case (permissions, disk).
    Io {
        /// Path of the segment being read or written.
        segment: String,
        /// The underlying I/O error.
        source: io::Error,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::MissingBase { segment } => {
                write!(f, "missing base checkpoint segment '{segment}'")
            }
            CheckpointError::MissingDelta { segment, epoch, index } => write!(
                f,
                "delta chain of epoch {epoch} has a hole: segment '{segment}' \
                 (delta index {index}) is missing"
            ),
            CheckpointError::CorruptSegment { segment, source } => {
                write!(f, "corrupt checkpoint segment '{segment}': {source}")
            }
            CheckpointError::Empty { dir } => {
                write!(f, "checkpoint store '{dir}' holds no snapshot")
            }
            CheckpointError::Io { segment, source } => {
                write!(f, "i/o error on checkpoint segment '{segment}': {source}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::CorruptSegment { source, .. } => Some(source),
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A directory of checkpoint segments for one scheduler: rotating base
/// snapshots plus the delta chain of the current epoch.
///
/// The store is deliberately dumb — naming, scanning, gap detection and
/// chain replay. Writing segments on a cadence (and deciding *what* is
/// dirty) is [`DeltaCheckpointer`]'s job.
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) the segment directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The segment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn base_path(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("base-{epoch:08}.ckpt"))
    }

    fn delta_path(&self, epoch: u64, index: u64) -> PathBuf {
        self.dir.join(format!("delta-{epoch:08}-{index:08}.ckpt"))
    }

    fn write_segment(&self, path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
        let io_err = |source| CheckpointError::Io { segment: path.display().to_string(), source };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, bytes).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// The newest epoch any segment on disk belongs to (`None` for an
    /// empty store). A re-armed [`DeltaCheckpointer`] starts past it so
    /// its first base never collides with — or leaves stale deltas
    /// from — a previous incarnation's chain.
    pub fn newest_epoch(&self) -> io::Result<Option<u64>> {
        let mut newest = None;
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            if let Some((epoch, _)) = parse_segment_name(&name.to_string_lossy()) {
                newest = newest.max(Some(epoch));
            }
        }
        Ok(newest)
    }

    /// Delete every segment belonging to an epoch older than
    /// `keep_epoch`, returning how many files were removed. Called
    /// after a new base lands, so the store never holds more than the
    /// current chain (plus the base that anchors it).
    pub fn compact(&self, keep_epoch: u64) -> io::Result<usize> {
        let mut removed = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some((epoch, _)) = parse_segment_name(&name) {
                if epoch < keep_epoch {
                    std::fs::remove_file(entry.path())?;
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }

    /// Scan the store, pick the newest epoch, and replay its chain:
    /// the base snapshot, then every delta in index order. Returns a
    /// [`FleetCheckpoint`] identical to the full checkpoint the
    /// scheduler would have written at the instant of the last
    /// segment. Typed errors name the broken segment (see
    /// [`CheckpointError`]).
    pub fn load_latest(&self, registry: &JobRegistry) -> Result<FleetCheckpoint, CheckpointError> {
        let mut base_epochs: Vec<u64> = Vec::new();
        let mut deltas: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|source| CheckpointError::Io {
            segment: self.dir.display().to_string(),
            source,
        })?;
        for entry in entries {
            let entry = entry.map_err(|source| CheckpointError::Io {
                segment: self.dir.display().to_string(),
                source,
            })?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            match parse_segment_name(&name) {
                Some((epoch, None)) => base_epochs.push(epoch),
                Some((epoch, Some(index))) => deltas.entry(epoch).or_default().push(index),
                None => {}
            }
        }
        // The newest epoch wins; deltas newer than every base mean the
        // chain head lost its anchor.
        let newest_delta_epoch = deltas.keys().next_back().copied();
        let newest_base_epoch = base_epochs.iter().max().copied();
        let epoch = match (newest_base_epoch, newest_delta_epoch) {
            (Some(b), Some(d)) if d > b => {
                return Err(CheckpointError::MissingBase {
                    segment: self.base_path(d).display().to_string(),
                });
            }
            (Some(b), _) => b,
            (None, Some(d)) => {
                return Err(CheckpointError::MissingBase {
                    segment: self.base_path(d).display().to_string(),
                });
            }
            (None, None) => {
                return Err(CheckpointError::Empty { dir: self.dir.display().to_string() });
            }
        };
        let base = FleetCheckpoint::load(self.base_path(epoch), registry)?;
        let mut indices = deltas.remove(&epoch).unwrap_or_default();
        indices.sort_unstable();
        // Indices must run 1..=k with no holes.
        for (i, &index) in indices.iter().enumerate() {
            let expected = i as u64 + 1;
            if index != expected {
                return Err(CheckpointError::MissingDelta {
                    segment: self.delta_path(epoch, expected).display().to_string(),
                    epoch,
                    index: expected,
                });
            }
        }
        let mut chain = ChainState::from_base(base);
        for index in indices {
            let path = self.delta_path(epoch, index);
            let segment = path.display().to_string();
            let bytes = std::fs::read(&path)
                .map_err(|source| CheckpointError::Io { segment: segment.clone(), source })?;
            chain
                .apply(&bytes, registry)
                .map_err(|source| CheckpointError::CorruptSegment { segment, source })?;
        }
        Ok(chain.into_checkpoint())
    }
}

/// `base-EEEEEEEE.ckpt` → `(epoch, None)`;
/// `delta-EEEEEEEE-IIIIIIII.ckpt` → `(epoch, Some(index))`.
fn parse_segment_name(name: &str) -> Option<(u64, Option<u64>)> {
    if let Some(rest) = name.strip_prefix("base-").and_then(|r| r.strip_suffix(".ckpt")) {
        return rest.parse().ok().map(|e| (e, None));
    }
    let rest = name.strip_prefix("delta-").and_then(|r| r.strip_suffix(".ckpt"))?;
    let (epoch, index) = rest.split_once('-')?;
    Some((epoch.parse().ok()?, Some(index.parse().ok()?)))
}

/// What one [`DeltaCheckpointer::snapshot`] call wrote.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A full base snapshot opened a new epoch (and compacted the old).
    Base,
    /// A delta segment extended the current chain.
    Delta,
}

/// Size/churn accounting for one written segment — the raw material of
/// the checkpoint-size-vs-fleet-size bench curve.
#[derive(Copy, Clone, Debug)]
pub struct SnapshotStats {
    /// Whether a base or a delta was written.
    pub kind: SnapshotKind,
    /// Bytes of the written segment.
    pub bytes: u64,
    /// Jobs whose payload was (re-)encoded: every live job for a base,
    /// only the dirty ones for a delta.
    pub dirty_jobs: usize,
    /// Live (queued + running) checkpointable jobs at snapshot time.
    pub live_jobs: usize,
}

/// Writes a scheduler's snapshots as a rotating base + delta chain
/// into a [`CheckpointStore`], tracking per-job fingerprints so a
/// delta re-encodes only what moved. See the module docs for the
/// format and the dirtiness rules.
pub struct DeltaCheckpointer {
    store: CheckpointStore,
    deltas_per_base: u64,
    epoch: u64,
    next_index: u64,
    /// iteration count at the last segment, per live job.
    job_fp: BTreeMap<JobId, u64>,
    /// `first_started_s` bits at the last segment, per known job.
    meta_fp: BTreeMap<JobId, u64>,
    done_seen: BTreeSet<JobId>,
    prev_queue: Vec<(u64, u64)>,
}

fn meta_fingerprint(m: &JobMeta) -> u64 {
    m.first_started_s.map_or(u64::MAX, f64::to_bits)
}

impl DeltaCheckpointer {
    /// Open a checkpointer over `dir`, writing a fresh base every
    /// `deltas_per_base` deltas (clamped to at least 1). The first
    /// [`snapshot`](Self::snapshot) always writes a base. Over a
    /// directory that already holds segments (re-arming after a
    /// restore), that base opens a **new** epoch past everything on
    /// disk, so stale deltas from the previous incarnation can never
    /// shadow the new chain.
    pub fn open(dir: impl Into<PathBuf>, deltas_per_base: u64) -> io::Result<Self> {
        let store = CheckpointStore::open(dir)?;
        let epoch = store.newest_epoch()?.unwrap_or(0);
        Ok(Self {
            store,
            deltas_per_base: deltas_per_base.max(1),
            epoch,
            next_index: 0,
            job_fp: BTreeMap::new(),
            meta_fp: BTreeMap::new(),
            done_seen: BTreeSet::new(),
            prev_queue: Vec::new(),
        })
    }

    /// The underlying segment store (for
    /// [`CheckpointStore::load_latest`] after a crash).
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Snapshot `scheduler` now: a base when the epoch is due to
    /// rotate (first call, or `deltas_per_base` deltas written), a
    /// delta otherwise.
    pub fn snapshot(&mut self, scheduler: &Scheduler) -> Result<SnapshotStats, CheckpointError> {
        if self.next_index == 0 || self.next_index > self.deltas_per_base {
            self.write_base(scheduler)
        } else {
            self.write_delta(scheduler)
        }
    }

    fn write_base(&mut self, scheduler: &Scheduler) -> Result<SnapshotStats, CheckpointError> {
        let checkpoint = scheduler.checkpoint();
        let bytes = checkpoint.to_bytes();
        self.epoch += 1;
        let path = self.store.base_path(self.epoch);
        self.store.write_segment(&path, &bytes)?;
        // Only compact once the new anchor is durable; a crash between
        // the two leaves both epochs loadable.
        self.store.compact(self.epoch).map_err(|source| CheckpointError::Io {
            segment: path.display().to_string(),
            source,
        })?;
        self.next_index = 1;
        // Fingerprints reset to exactly what the base carries.
        self.job_fp.clear();
        self.meta_fp.clear();
        self.done_seen.clear();
        let mut live = 0usize;
        self.prev_queue.clear();
        for entry in &checkpoint.queue {
            self.job_fp.insert(entry.job.id(), entry.job.iterations());
            self.prev_queue.push((entry.job.id().0, entry.deficit));
            live += 1;
        }
        for slot in checkpoint.active.iter().flatten() {
            for aj in &slot.jobs {
                self.job_fp.insert(aj.job.id(), aj.job.iterations());
                live += 1;
            }
        }
        for (id, m) in &checkpoint.meta {
            self.meta_fp.insert(*id, meta_fingerprint(m));
        }
        self.done_seen.extend(checkpoint.done.keys().copied());
        Ok(SnapshotStats {
            kind: SnapshotKind::Base,
            bytes: bytes.len() as u64,
            dirty_jobs: live,
            live_jobs: live,
        })
    }

    fn write_delta(&mut self, scheduler: &Scheduler) -> Result<SnapshotStats, CheckpointError> {
        let parts = scheduler.delta_parts();
        let included = |id: &JobId| parts.meta.get(id).is_none_or(|m| m.checkpoint);
        let mut out = Vec::new();
        out.extend_from_slice(DELTA_MAGIC);
        self.epoch.write(&mut out);
        self.next_index.write(&mut out);
        parts.clocks.to_vec().write(&mut out);
        parts.device_books.write(&mut out);
        parts.rr_next.write(&mut out);
        parts.next_id.write(&mut out);
        parts.next_seq.write(&mut out);
        parts.serialized_s.write(&mut out);
        parts.fused_launches.write(&mut out);
        parts.launches_saved.write(&mut out);
        parts.preemptions.write(&mut out);
        parts.ticks.write(&mut out);
        parts.autosaves.write(&mut out);
        parts.iterations_executed.write(&mut out);
        parts.stream_makespan_s.write(&mut out);
        parts.stream_serialized_s.write(&mut out);
        parts.spans.write(&mut out);
        parts.span_iterations.write(&mut out);
        parts.launch_overhead_saved_s.write(&mut out);
        let cancels: Vec<u64> = parts.cancel_requested.iter().map(|id| id.0).collect();
        cancels.write(&mut out);

        // Queue layout: differential when the tick's mutations kept the
        // removal+append shape, full otherwise.
        let new_queue: Vec<(u64, u64)> = parts
            .queue
            .iter()
            .filter(|e| included(&e.job.id()))
            .map(|e| (e.job.id().0, e.deficit))
            .collect();
        match queue_diff(&self.prev_queue, &new_queue) {
            Some((removed, deficits, appended)) => {
                1u8.write(&mut out);
                removed.write(&mut out);
                deficits.write(&mut out);
                appended.write(&mut out);
            }
            None => {
                0u8.write(&mut out);
                new_queue.write(&mut out);
            }
        }
        self.prev_queue = new_queue;

        // Active layout: O(backends), always full.
        parts.active.len().write(&mut out);
        for slot in parts.active {
            let jobs: Vec<(u64, u64)> = slot
                .as_ref()
                .map(|a| {
                    a.jobs
                        .iter()
                        .filter(|aj| included(&aj.job.id()))
                        .map(|aj| (aj.job.id().0, aj.deficit))
                        .collect()
                })
                .unwrap_or_default();
            match slot {
                Some(a) if !jobs.is_empty() => {
                    1u8.write(&mut out);
                    a.started_s.write(&mut out);
                    a.slice_budget.write(&mut out);
                    a.slice_used.write(&mut out);
                    jobs.write(&mut out);
                }
                _ => 0u8.write(&mut out),
            }
        }

        // Dirty jobs: live, checkpointable, and moved since the last
        // segment (or new to the chain).
        let mut live_ids: BTreeSet<JobId> = BTreeSet::new();
        let mut dirty: Vec<&dyn JobExec> = Vec::new();
        {
            let queued = parts.queue.iter().map(|e| &e.job);
            let running =
                parts.active.iter().flatten().flat_map(|a| a.jobs.iter().map(|aj| &aj.job));
            for job in queued.chain(running) {
                let id = job.id();
                if !included(&id) {
                    continue;
                }
                live_ids.insert(id);
                let fp = job.iterations();
                if self.job_fp.get(&id) != Some(&fp) {
                    self.job_fp.insert(id, fp);
                    dirty.push(&**job);
                }
            }
        }
        self.job_fp.retain(|id, _| live_ids.contains(id));
        dirty.len().write(&mut out);
        for job in &dirty {
            encode_job(*job, &mut out);
        }

        // Meta upserts: new ids, or the one mutable field
        // (`first_started_s`) moved.
        let mut meta_upserts: Vec<(JobId, &JobMeta)> = Vec::new();
        for (id, m) in parts.meta {
            let fp = meta_fingerprint(m);
            if self.meta_fp.get(id) != Some(&fp) {
                self.meta_fp.insert(*id, fp);
                meta_upserts.push((*id, m));
            }
        }
        meta_upserts.len().write(&mut out);
        for (id, m) in &meta_upserts {
            id.0.write(&mut out);
            m.submitted_s.write(&mut out);
            m.first_started_s.write(&mut out);
            m.tenant.write(&mut out);
            m.iter_budget.write(&mut out);
            m.deadline_s.write(&mut out);
            m.checkpoint.write(&mut out);
        }

        // Done reports: append-only log, written once each.
        let mut new_done: Vec<&JobReport> = Vec::new();
        for (id, report) in parts.done {
            if self.done_seen.insert(*id) {
                new_done.push(report);
            }
        }
        new_done.len().write(&mut out);
        for report in &new_done {
            write_report(report, &mut out);
        }

        let path = self.store.delta_path(self.epoch, self.next_index);
        self.store.write_segment(&path, &out)?;
        self.next_index += 1;
        Ok(SnapshotStats {
            kind: SnapshotKind::Delta,
            bytes: out.len() as u64,
            dirty_jobs: dirty.len(),
            live_jobs: live_ids.len(),
        })
    }
}

/// Try to express `new` as `old` minus removals (order preserved), with
/// in-place deficit updates, plus a tail of appended entries — the only
/// mutations a scheduler tick performs. Returns `None` when the shape
/// does not hold (the writer then falls back to a full layout).
#[allow(clippy::type_complexity)]
fn queue_diff(
    old: &[(u64, u64)],
    new: &[(u64, u64)],
) -> Option<(Vec<u64>, Vec<(u64, u64)>, Vec<(u64, u64)>)> {
    let new_ids: BTreeSet<u64> = new.iter().map(|e| e.0).collect();
    let old_ids: BTreeSet<u64> = old.iter().map(|e| e.0).collect();
    let surviving: Vec<&(u64, u64)> = old.iter().filter(|e| new_ids.contains(&e.0)).collect();
    if new.len() < surviving.len() {
        return None;
    }
    let mut deficits = Vec::new();
    for (kept, fresh) in surviving.iter().zip(new) {
        if kept.0 != fresh.0 {
            return None; // surviving order changed: not removal+append
        }
        if kept.1 != fresh.1 {
            deficits.push(*fresh);
        }
    }
    let appended = &new[surviving.len()..];
    if appended.iter().any(|e| old_ids.contains(&e.0)) {
        return None; // an old id re-appeared at the tail
    }
    let removed: Vec<u64> = old.iter().map(|e| e.0).filter(|id| !new_ids.contains(id)).collect();
    // A diff bigger than the full layout buys nothing.
    if removed.len() + deficits.len() + appended.len() > new.len() {
        return None;
    }
    Some((removed, deficits, appended.to_vec()))
}

/// One decoded active-batch slot: `(started_s, slice_budget,
/// slice_used, [(job id, iters done)])`, or `None` for an idle device.
type ActiveSlot = Option<(f64, u64, u64, Vec<(u64, u64)>)>;

/// Chain replay state: the decoded base, updated segment by segment.
/// Queue and active state live as id layouts against a shared job
/// table until [`into_checkpoint`](Self::into_checkpoint) materializes
/// them — the base's own layouts count, so a chain of zero deltas
/// (crash right after an epoch rotation) reproduces the base exactly,
/// running jobs included.
struct ChainState {
    checkpoint: FleetCheckpoint,
    jobs: BTreeMap<u64, Box<dyn JobExec>>,
    queue_layout: Vec<(u64, u64)>,
    active_layout: Vec<ActiveSlot>,
    done_log: BTreeMap<JobId, JobReport>,
}

impl ChainState {
    fn from_base(mut base: FleetCheckpoint) -> Self {
        let mut jobs = BTreeMap::new();
        let mut queue_layout = Vec::new();
        for entry in base.queue.drain(..) {
            queue_layout.push((entry.job.id().0, entry.deficit));
            jobs.insert(entry.job.id().0, entry.job);
        }
        let mut active_layout = Vec::with_capacity(base.active.len());
        for slot in base.active.iter_mut() {
            active_layout.push(slot.take().map(|mut a| {
                let ids: Vec<(u64, u64)> =
                    a.jobs.iter().map(|aj| (aj.job.id().0, aj.deficit)).collect();
                for aj in a.jobs.drain(..) {
                    jobs.insert(aj.job.id().0, aj.job);
                }
                (a.started_s, a.slice_budget, a.slice_used, ids)
            }));
        }
        let done_log = std::mem::take(&mut base.done);
        Self { checkpoint: base, jobs, queue_layout, active_layout, done_log }
    }

    fn apply(&mut self, bytes: &[u8], registry: &JobRegistry) -> Result<(), PersistError> {
        let ckpt = &mut self.checkpoint;
        let mut r = Reader::new(bytes);
        if r.take(DELTA_MAGIC.len())? != DELTA_MAGIC {
            return Err(PersistError::new("not a delta checkpoint segment (bad magic)"));
        }
        let _epoch: u64 = r.read()?;
        let _index: u64 = r.read()?;
        ckpt.clocks = r.read()?;
        ckpt.device_books = r.read()?;
        ckpt.rr_next = r.read()?;
        ckpt.next_id = r.read()?;
        ckpt.next_seq = r.read()?;
        ckpt.serialized_s = r.read()?;
        ckpt.fused_launches = r.read()?;
        ckpt.launches_saved = r.read()?;
        ckpt.preemptions = r.read()?;
        ckpt.ticks = r.read()?;
        ckpt.autosaves = r.read()?;
        ckpt.iterations_executed = r.read()?;
        ckpt.stream_makespan_s = r.read()?;
        ckpt.stream_serialized_s = r.read()?;
        ckpt.spans = r.read()?;
        ckpt.span_iterations = r.read()?;
        ckpt.launch_overhead_saved_s = r.read()?;
        let cancels: Vec<u64> = r.read()?;
        ckpt.cancel_requested = cancels.into_iter().map(JobId).collect();

        // Queue layout (differential or full).
        self.queue_layout = match u8::read(&mut r)? {
            1 => {
                let removed: Vec<u64> = r.read()?;
                let deficits: Vec<(u64, u64)> = r.read()?;
                let appended: Vec<(u64, u64)> = r.read()?;
                let removed: BTreeSet<u64> = removed.into_iter().collect();
                let mut layout: Vec<(u64, u64)> =
                    self.queue_layout.iter().copied().filter(|e| !removed.contains(&e.0)).collect();
                for (id, deficit) in deficits {
                    match layout.iter_mut().find(|e| e.0 == id) {
                        Some(e) => e.1 = deficit,
                        None => {
                            return Err(PersistError::new(format!(
                                "queue diff updates job #{id} absent from the chain"
                            )));
                        }
                    }
                }
                layout.extend(appended);
                layout
            }
            0 => r.read()?,
            b => return Err(PersistError::new(format!("bad queue-layout tag {b}"))),
        };

        // Active layout.
        let active_len: usize = r.read()?;
        let mut active_layout: Vec<ActiveSlot> = Vec::with_capacity(active_len.min(1024));
        for _ in 0..active_len {
            active_layout.push(match u8::read(&mut r)? {
                0 => None,
                1 => {
                    let started_s: f64 = r.read()?;
                    let slice_budget: u64 = r.read()?;
                    let slice_used: u64 = r.read()?;
                    let jobs: Vec<(u64, u64)> = r.read()?;
                    Some((started_s, slice_budget, slice_used, jobs))
                }
                b => return Err(PersistError::new(format!("bad active-slot tag {b}"))),
            });
        }

        // Dirty job payloads upsert the chain's job table.
        let dirty_len: usize = r.read()?;
        for _ in 0..dirty_len {
            let job = registry.decode_job(&mut r)?;
            self.jobs.insert(job.id().0, job);
        }

        // Meta upserts.
        let meta_len: usize = r.read()?;
        for _ in 0..meta_len {
            let id = JobId(r.read::<u64>()?);
            ckpt.meta.insert(
                id,
                JobMeta {
                    submitted_s: r.read()?,
                    first_started_s: r.read()?,
                    tenant: r.read()?,
                    iter_budget: r.read()?,
                    deadline_s: r.read()?,
                    checkpoint: r.read()?,
                },
            );
        }

        // Newly completed reports.
        let done_len: usize = r.read()?;
        for _ in 0..done_len {
            let report = read_report(&mut r)?;
            self.done_log.insert(report.id, report);
        }
        if r.remaining() != 0 {
            return Err(PersistError::new(format!(
                "delta segment has {} trailing bytes",
                r.remaining()
            )));
        }

        // Jobs that left every layout are done (or cancelled): drop
        // their payloads from the chain table.
        let live: BTreeSet<u64> = self
            .queue_layout
            .iter()
            .map(|e| e.0)
            .chain(
                active_layout.iter().flatten().flat_map(|(_, _, _, jobs)| jobs.iter().map(|e| e.0)),
            )
            .collect();
        self.jobs.retain(|id, _| live.contains(id));
        // Every surviving layout id must resolve in the chain table;
        // materialization waits for `into_checkpoint`.
        for &(id, _) in active_layout.iter().flatten().flat_map(|(_, _, _, jobs)| jobs.iter()) {
            if !self.jobs.contains_key(&id) {
                return Err(PersistError::new(format!(
                    "active layout references job #{id} absent from the chain"
                )));
            }
        }
        self.active_layout = active_layout;
        Ok(())
    }

    fn into_checkpoint(mut self) -> FleetCheckpoint {
        self.checkpoint.queue = self
            .queue_layout
            .iter()
            .map(|&(id, deficit)| {
                let job = self
                    .jobs
                    .get(&id)
                    .expect("the chain verified every layout id resolves")
                    .clone_box();
                QueueEntry { job, deficit }
            })
            .collect();
        self.checkpoint.active = self
            .active_layout
            .iter()
            .map(|slot| {
                slot.as_ref().map(|(started_s, slice_budget, slice_used, jobs)| ActiveSnapshot {
                    jobs: jobs
                        .iter()
                        .map(|&(id, deficit)| ActiveJob {
                            job: self
                                .jobs
                                .get(&id)
                                .expect("the chain verified every layout id resolves")
                                .clone_box(),
                            deficit,
                        })
                        .collect(),
                    started_s: *started_s,
                    slice_budget: *slice_budget,
                    slice_used: *slice_used,
                })
            })
            .collect();
        self.checkpoint.done = self.done_log;
        self.checkpoint
    }
}
