//! Disk persistence for [`FleetCheckpoint`]: a hand-rolled byte format
//! (no serde in the offline environment) so fleets survive process
//! restarts.
//!
//! ## Format
//!
//! An 8-byte magic (`LNLSFLT` + version), then the scheduler state in
//! field order through the [`lnls_core::persist`] codec. Jobs are
//! type-erased in memory, so each one is written as a **tag** (its
//! [`PersistTag`]-derived registry key) plus a length-prefixed payload;
//! loading looks the tag up in a [`JobRegistry`] to find the concrete
//! decoder. The registry is explicit because Rust cannot conjure a
//! monomorphized `BinaryTabuJob<P, N>` from bytes alone — the host
//! process must say which `(problem, neighborhood)` pairs it was built
//! with, exactly like it had to in order to submit them.
//!
//! [`JobRegistry::with_builtin`] pre-registers every combination the
//! workspace ships (QAP robust tabu; tabu *and* annealing jobs for
//! OneMax, PPP and Max-Cut over the bundled neighborhoods; LNS
//! destroy-and-repair and portfolio races over Knapsack, Max-3-Sat and
//! QUBO); custom workloads add
//! themselves with [`JobRegistry::register`], keyed by their
//! [`JobCodec`] implementation — the same trait family submission
//! flows through.

use crate::delta::CheckpointError;
use crate::exec::JobExec;
use crate::job::{AnnealJob, BinaryJob, JobId, JobOutcome, JobReport, QapJobSpec};
use crate::lns::{LnsJob, PortfolioJob};
use crate::scheduler::{ActiveJob, ActiveSnapshot, FleetCheckpoint, JobMeta, QueueEntry};
use crate::submit::JobCodec;
use crate::{PlacePolicy, SchedulerConfig};
use lnls_core::persist::{Persist, PersistError, Reader};
use lnls_neighborhood::{KHamming, OneHamming, ThreeHamming, TwoHamming};
use lnls_ppp::Ppp;
use lnls_problems::{Knapsack, MaxCut, MaxSat, OneMax, Qubo};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"LNLSFLT\x07";

type Loader = fn(&mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError>;

/// Maps persisted job tags back to concrete decoders (see the
/// module docs above).
pub struct JobRegistry {
    loaders: BTreeMap<String, Loader>,
}

impl JobRegistry {
    /// An empty registry that can only decode QAP jobs (they are fully
    /// concrete; no type parameters to resolve).
    pub fn new() -> Self {
        let mut reg = Self { loaders: BTreeMap::new() };
        reg.register::<QapJobSpec>();
        reg
    }

    /// A registry pre-loaded with every job type the workspace bundles.
    pub fn with_builtin() -> Self {
        let mut reg = Self::new();
        reg.register::<BinaryJob<OneMax, OneHamming>>();
        reg.register::<BinaryJob<OneMax, TwoHamming>>();
        reg.register::<BinaryJob<OneMax, ThreeHamming>>();
        reg.register::<BinaryJob<OneMax, KHamming>>();
        reg.register::<BinaryJob<Ppp, TwoHamming>>();
        reg.register::<BinaryJob<Ppp, KHamming>>();
        reg.register::<BinaryJob<MaxCut, TwoHamming>>();
        reg.register::<BinaryJob<MaxCut, KHamming>>();
        reg.register::<AnnealJob<OneMax, OneHamming>>();
        reg.register::<AnnealJob<OneMax, TwoHamming>>();
        reg.register::<AnnealJob<OneMax, KHamming>>();
        reg.register::<AnnealJob<Ppp, TwoHamming>>();
        reg.register::<AnnealJob<Ppp, KHamming>>();
        reg.register::<AnnealJob<MaxCut, KHamming>>();
        reg.register::<LnsJob<Knapsack>>();
        reg.register::<LnsJob<MaxSat>>();
        reg.register::<LnsJob<Qubo>>();
        reg.register::<PortfolioJob<Knapsack>>();
        reg.register::<PortfolioJob<MaxSat>>();
        reg.register::<PortfolioJob<Qubo>>();
        reg
    }

    /// Register a job type by its [`JobCodec`]. Submission and
    /// persistence flow through the same trait family, so one
    /// registration covers a workload end to end — `BinaryJob`,
    /// `QapJobSpec`, `AnnealJob`, or anything external.
    ///
    /// # Panics
    /// Panics if the tag is already registered: two decoders under one
    /// tag means the later one would silently shadow the earlier, and
    /// which jobs decode correctly would depend on registration order.
    /// Tags must be globally unique (e.g. `"lns/knapsack"`).
    pub fn register<J: JobCodec>(&mut self) {
        let tag = J::registry_tag();
        assert!(
            self.loaders.insert(tag.clone(), J::decode as Loader).is_none(),
            "job tag '{tag}' is already registered; a second decoder would \
             silently shadow the first"
        );
    }

    pub(crate) fn decode_job(&self, r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError> {
        let tag: String = r.read()?;
        let payload: Vec<u8> = r.read()?;
        let loader = self
            .loaders
            .get(&tag)
            .ok_or_else(|| PersistError::new(format!("unregistered job tag '{tag}'")))?;
        let mut pr = Reader::new(&payload);
        let job = loader(&mut pr)?;
        if pr.remaining() != 0 {
            return Err(PersistError::new(format!(
                "job '{tag}' payload has {} trailing bytes",
                pr.remaining()
            )));
        }
        Ok(job)
    }
}

impl Default for JobRegistry {
    fn default() -> Self {
        Self::with_builtin()
    }
}

pub(crate) fn encode_job(job: &dyn JobExec, out: &mut Vec<u8>) {
    job.persist_tag().write(out);
    let mut payload = Vec::new();
    job.persist(&mut payload);
    payload.write(out);
}

fn write_cfg(cfg: &SchedulerConfig, out: &mut Vec<u8>) {
    let policy: u8 = match cfg.policy {
        PlacePolicy::RoundRobin => 0,
        PlacePolicy::LeastLoaded => 1,
    };
    policy.write(out);
    cfg.cpu_workers.write(out);
    cfg.max_batch.write(out);
    cfg.host.write(out);
    cfg.quantum_iters.write(out);
    cfg.autosave_every_ticks.write(out);
    cfg.autosave_path.as_ref().map(|p| p.to_string_lossy().into_owned()).write(out);
    cfg.telemetry_every_ticks.write(out);
    cfg.telemetry_max_samples.write(out);
    cfg.selection.write(out);
    cfg.span_iters.write(out);
    cfg.launch_mode.write(out);
    cfg.id_base.write(out);
}

fn read_cfg(r: &mut Reader<'_>) -> Result<SchedulerConfig, PersistError> {
    let policy = match u8::read(r)? {
        0 => PlacePolicy::RoundRobin,
        1 => PlacePolicy::LeastLoaded,
        b => return Err(PersistError::new(format!("bad placement policy {b}"))),
    };
    Ok(SchedulerConfig {
        policy,
        cpu_workers: r.read()?,
        max_batch: r.read()?,
        host: r.read()?,
        quantum_iters: r.read()?,
        autosave_every_ticks: r.read()?,
        autosave_path: r.read::<Option<String>>()?.map(std::path::PathBuf::from),
        telemetry_every_ticks: r.read()?,
        telemetry_max_samples: r.read()?,
        selection: r.read()?,
        span_iters: r.read()?,
        launch_mode: r.read()?,
        id_base: r.read()?,
    })
}

/// Outcomes persist as the generic record plus a tagged detail: the
/// bundled detail types round-trip losslessly; an unknown (external)
/// detail degrades to the record alone — the fitness/iteration numbers
/// survive, the typed payload does not.
fn write_outcome(outcome: &JobOutcome, out: &mut Vec<u8>) {
    if let Some(res) = outcome.as_binary() {
        0u8.write(out);
        res.write(out);
    } else if let Some(res) = outcome.as_qap() {
        1u8.write(out);
        res.write(out);
    } else if let Some(race) = outcome.detail::<lnls_lns::PortfolioOutcome>() {
        3u8.write(out);
        outcome.best_fitness().write(out);
        outcome.iterations().write(out);
        outcome.success().write(out);
        race.write(out);
    } else {
        2u8.write(out);
        outcome.best_fitness().write(out);
        outcome.iterations().write(out);
        outcome.success().write(out);
    }
}

fn read_outcome(r: &mut Reader<'_>) -> Result<JobOutcome, PersistError> {
    Ok(match u8::read(r)? {
        0 => JobOutcome::binary(r.read()?),
        1 => JobOutcome::qap(r.read()?),
        2 => {
            let best_fitness: i64 = r.read()?;
            let iterations: u64 = r.read()?;
            let success: bool = r.read()?;
            JobOutcome::new(best_fitness, iterations, success)
        }
        3 => {
            let best_fitness: i64 = r.read()?;
            let iterations: u64 = r.read()?;
            let success: bool = r.read()?;
            let race: lnls_lns::PortfolioOutcome = r.read()?;
            JobOutcome::with_detail(best_fitness, iterations, success, race)
        }
        b => return Err(PersistError::new(format!("bad outcome tag {b}"))),
    })
}

pub(crate) fn write_report(report: &JobReport, out: &mut Vec<u8>) {
    report.id.0.write(out);
    report.name.write(out);
    report.tenant.write(out);
    report.backend.write(out);
    report.submitted_s.write(out);
    report.started_s.write(out);
    report.finished_s.write(out);
    report.fused_iterations.write(out);
    report.cancelled.write(out);
    report.rejected.write(out);
    write_outcome(&report.outcome, out);
}

pub(crate) fn read_report(r: &mut Reader<'_>) -> Result<JobReport, PersistError> {
    Ok(JobReport {
        id: JobId(r.read::<u64>()?),
        name: r.read()?,
        tenant: r.read()?,
        backend: r.read()?,
        submitted_s: r.read()?,
        started_s: r.read()?,
        finished_s: r.read()?,
        fused_iterations: r.read()?,
        cancelled: r.read()?,
        rejected: r.read()?,
        outcome: read_outcome(r)?,
    })
}

impl FleetCheckpoint {
    /// Encode the whole snapshot into bytes (see the module docs
    /// for the format).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        write_cfg(&self.cfg, &mut out);
        self.specs.write(&mut out);
        self.device_books.write(&mut out);
        self.queue.len().write(&mut out);
        for entry in &self.queue {
            entry.deficit.write(&mut out);
            encode_job(&*entry.job, &mut out);
        }
        self.active.len().write(&mut out);
        for slot in &self.active {
            match slot {
                None => 0u8.write(&mut out),
                Some(a) => {
                    1u8.write(&mut out);
                    a.started_s.write(&mut out);
                    a.slice_budget.write(&mut out);
                    a.slice_used.write(&mut out);
                    a.jobs.len().write(&mut out);
                    for aj in &a.jobs {
                        aj.deficit.write(&mut out);
                        encode_job(&*aj.job, &mut out);
                    }
                }
            }
        }
        self.clocks.write(&mut out);
        self.rr_next.write(&mut out);
        self.next_id.write(&mut out);
        self.next_seq.write(&mut out);
        self.done.len().write(&mut out);
        for report in self.done.values() {
            write_report(report, &mut out);
        }
        self.meta.len().write(&mut out);
        for (id, m) in &self.meta {
            id.0.write(&mut out);
            m.submitted_s.write(&mut out);
            m.first_started_s.write(&mut out);
            m.tenant.write(&mut out);
            m.iter_budget.write(&mut out);
            m.deadline_s.write(&mut out);
            m.checkpoint.write(&mut out);
        }
        let cancels: Vec<u64> = self.cancel_requested.iter().map(|id| id.0).collect();
        cancels.write(&mut out);
        self.serialized_s.write(&mut out);
        self.fused_launches.write(&mut out);
        self.launches_saved.write(&mut out);
        self.preemptions.write(&mut out);
        self.ticks.write(&mut out);
        self.autosaves.write(&mut out);
        self.iterations_executed.write(&mut out);
        self.stream_makespan_s.write(&mut out);
        self.stream_serialized_s.write(&mut out);
        self.spans.write(&mut out);
        self.span_iterations.write(&mut out);
        self.launch_overhead_saved_s.write(&mut out);
        out
    }

    /// Decode a snapshot produced by [`to_bytes`](Self::to_bytes),
    /// resolving job tags through `registry`.
    pub fn from_bytes(bytes: &[u8], registry: &JobRegistry) -> Result<Self, PersistError> {
        let mut r = Reader::new(bytes);
        if r.take(MAGIC.len())? != MAGIC {
            return Err(PersistError::new("not a fleet checkpoint (bad magic)"));
        }
        let cfg = read_cfg(&mut r)?;
        let specs: Vec<_> = r.read()?;
        let device_books: Vec<_> = r.read()?;
        let queue_len: usize = r.read()?;
        let mut queue = Vec::with_capacity(queue_len.min(1024));
        for _ in 0..queue_len {
            let deficit: u64 = r.read()?;
            let job = registry.decode_job(&mut r)?;
            queue.push(QueueEntry { job, deficit });
        }
        let active_len: usize = r.read()?;
        let mut active = Vec::with_capacity(active_len.min(1024));
        for _ in 0..active_len {
            active.push(match u8::read(&mut r)? {
                0 => None,
                1 => {
                    let started_s: f64 = r.read()?;
                    let slice_budget: u64 = r.read()?;
                    let slice_used: u64 = r.read()?;
                    let njobs: usize = r.read()?;
                    let mut jobs = Vec::with_capacity(njobs.min(1024));
                    for _ in 0..njobs {
                        let deficit: u64 = r.read()?;
                        let job = registry.decode_job(&mut r)?;
                        jobs.push(ActiveJob { job, deficit });
                    }
                    Some(ActiveSnapshot { jobs, started_s, slice_budget, slice_used })
                }
                b => return Err(PersistError::new(format!("bad active-slot tag {b}"))),
            });
        }
        let clocks: Vec<f64> = r.read()?;
        let rr_next: usize = r.read()?;
        let next_id: u64 = r.read()?;
        let next_seq: u64 = r.read()?;
        let done_len: usize = r.read()?;
        let mut done = BTreeMap::new();
        for _ in 0..done_len {
            let report = read_report(&mut r)?;
            done.insert(report.id, report);
        }
        let meta_len: usize = r.read()?;
        let mut meta = BTreeMap::new();
        for _ in 0..meta_len {
            let id = JobId(r.read::<u64>()?);
            meta.insert(
                id,
                JobMeta {
                    submitted_s: r.read()?,
                    first_started_s: r.read()?,
                    tenant: r.read()?,
                    iter_budget: r.read()?,
                    deadline_s: r.read()?,
                    checkpoint: r.read()?,
                },
            );
        }
        let cancels: Vec<u64> = r.read()?;
        let cancel_requested: BTreeSet<JobId> = cancels.into_iter().map(JobId).collect();
        let checkpoint = Self {
            specs,
            device_books,
            cfg,
            queue,
            active,
            clocks,
            rr_next,
            next_id,
            next_seq,
            done,
            meta,
            cancel_requested,
            serialized_s: r.read()?,
            fused_launches: r.read()?,
            launches_saved: r.read()?,
            preemptions: r.read()?,
            ticks: r.read()?,
            autosaves: r.read()?,
            iterations_executed: r.read()?,
            stream_makespan_s: r.read()?,
            stream_serialized_s: r.read()?,
            spans: r.read()?,
            span_iterations: r.read()?,
            launch_overhead_saved_s: r.read()?,
        };
        if r.remaining() != 0 {
            return Err(PersistError::new(format!(
                "checkpoint has {} trailing bytes",
                r.remaining()
            )));
        }
        if checkpoint.clocks.len() != checkpoint.active.len()
            || checkpoint.specs.len() != checkpoint.device_books.len()
            || checkpoint.specs.len() + checkpoint.cfg.cpu_workers != checkpoint.active.len()
        {
            return Err(PersistError::new("inconsistent backend counts in checkpoint"));
        }
        Ok(checkpoint)
    }

    /// Write the snapshot to `path` (atomically enough for a checkpoint:
    /// temp file + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Read a snapshot written by [`save`](Self::save), resolving job
    /// tags through `registry`.
    ///
    /// Failures come back as a typed [`CheckpointError`] naming the
    /// offending segment: a vanished file is
    /// [`MissingBase`](CheckpointError::MissingBase), a truncated or
    /// garbled one is
    /// [`CorruptSegment`](CheckpointError::CorruptSegment) carrying the
    /// file name and the decoder's diagnosis — so a broken delta chain
    /// (see [`CheckpointStore`](crate::CheckpointStore)) tells the
    /// operator *which* segment to restore from backup instead of a
    /// generic decode failure.
    pub fn load(path: impl AsRef<Path>, registry: &JobRegistry) -> Result<Self, CheckpointError> {
        let path = path.as_ref();
        let segment = path.display().to_string();
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(CheckpointError::MissingBase { segment });
            }
            Err(e) => return Err(CheckpointError::Io { segment, source: e }),
        };
        Self::from_bytes(&bytes, registry)
            .map_err(|source| CheckpointError::CorruptSegment { segment, source })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_tag_registration_is_rejected() {
        let mut reg = JobRegistry::new();
        // QapJobSpec is already in `new()`; a second registration would
        // silently shadow the first decoder.
        reg.register::<QapJobSpec>();
    }

    #[test]
    fn builtin_registry_rejects_unknown_tags_with_the_tag_name() {
        let reg = JobRegistry::with_builtin();
        let mut bytes = Vec::new();
        "no/such-job".to_string().write(&mut bytes);
        Vec::<u8>::new().write(&mut bytes);
        let err = match reg.decode_job(&mut Reader::new(&bytes)) {
            Err(e) => e,
            Ok(_) => panic!("unknown tag must not decode"),
        };
        assert!(err.to_string().contains("no/such-job"), "{err}");
    }
}
