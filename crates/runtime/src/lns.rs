//! Executors for the `lnls-lns` cursor families: destroy-and-repair
//! jobs ([`LnsJob`]) and portfolio races ([`PortfolioJob`]).
//!
//! Neither family fuses with *other* tenants (`batch_key` is `None`) —
//! each job is its own fused batch. A destroy-and-repair round repairs
//! `L` lanes of the freed sub-problem in lockstep, so the executor
//! prices every round as one multi-lane stream span of `inner_iters`
//! fused repair launches through [`price_fused_span`] — the paper's
//! launch-amortization argument applied *inside* a single tenant. A
//! portfolio round advances three heterogeneous lanes (tabu, annealing,
//! shaken descent) whose per-iteration shapes differ wildly; the
//! executor prices one span per leader window (the leader is constant
//! between reallocation boundaries) with a kernel chain entry per lane
//! sub-step, which is exactly the stress test the heterogeneous-lane
//! batcher needed.

use crate::exec::{BatchKey, JobExec, StepRun};
use crate::job::{JobId, JobOutcome, JobReport};
use crate::submit::{JobCodec, SearchJob, SubmitCtx};
use lnls_core::persist::{Persist, PersistError, PersistTag, Reader};
use lnls_core::{BitString, DynCursor, IncrementalEval, LaneProfile, ProblemCursor};
use lnls_gpu_sim::{
    price_fused_span, transfer_seconds, Device, DeviceSpec, HostSpec, LaneIo, LaunchMode, TimeBook,
};
use lnls_lns::{LnsCursor, LnsSearch, PortfolioCursor, PortfolioSearch};
use lnls_neighborhood::Neighborhood;
use std::any::Any;
use std::sync::Arc;

/// Registry tag of destroy-and-repair jobs over `P`.
pub(crate) fn lns_tag<P: PersistTag>() -> String {
    format!("lns/{}", P::TAG)
}

/// Registry tag of portfolio-race jobs over `P`.
pub(crate) fn portfolio_tag<P: PersistTag>() -> String {
    format!("portfolio/{}", P::TAG)
}

// ---------------------------------------------------------------------
// Destroy-and-repair jobs
// ---------------------------------------------------------------------

/// A destroy-and-repair large-neighborhood-search job, submitted via the
/// generic [`Scheduler::submit`](crate::Scheduler::submit).
///
/// One scheduler iteration is one LNS round (destroy → multi-lane
/// repair → accept/reject); the repair lanes are priced as one fused
/// multi-lane stream span per round, sized by the adaptive destroy
/// radius. Reports through [`SearchResult`](lnls_core::SearchResult),
/// so [`JobOutcome::as_binary`] works.
pub struct LnsJob<P> {
    /// Submission name (reports only).
    pub name: String,
    /// The problem instance (moved into the scheduler).
    pub problem: P,
    /// Driver configuration (budget, seed, lanes, destroy op, radius).
    pub search: LnsSearch,
    /// Initial solution — explicit so fleet runs are bit-comparable to
    /// solo runs.
    pub init: BitString,
    /// Larger runs first when the queue is contended (0 = bulk).
    pub priority: u8,
    /// Per-repair-pass incremental-state upload, bytes (pricing input);
    /// defaults to `4·dim` like [`BinaryJob`](crate::BinaryJob).
    pub state_h2d_bytes: Option<u64>,
    /// How the per-round repair span charges launch overhead
    /// (pricing-only; results identical either way).
    pub launch_mode: LaunchMode,
}

impl<P> LnsJob<P> {
    /// A job with default priority, pricing hints and per-iteration
    /// launches.
    pub fn new(name: impl Into<String>, problem: P, search: LnsSearch, init: BitString) -> Self {
        Self {
            name: name.into(),
            problem,
            search,
            init,
            priority: 0,
            state_h2d_bytes: None,
            launch_mode: LaunchMode::PerIteration,
        }
    }

    /// Set the queue priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Override the per-pass state-upload pricing hint.
    pub fn with_state_bytes(mut self, bytes: u64) -> Self {
        self.state_h2d_bytes = Some(bytes);
        self
    }

    /// Price repair spans under `mode` (e.g. persistent-kernel
    /// residency).
    pub fn with_launch_mode(mut self, mode: LaunchMode) -> Self {
        self.launch_mode = mode;
        self
    }
}

impl<P> SearchJob for LnsJob<P>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn persist_tag(&self) -> String {
        lns_tag::<P>()
    }

    fn into_exec(self: Box<Self>, ctx: SubmitCtx) -> Box<dyn JobExec> {
        Box::new(LnsExec::new(ctx, *self))
    }
}

impl<P> JobCodec for LnsJob<P>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
{
    fn registry_tag() -> String {
        lns_tag::<P>()
    }

    fn decode(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError> {
        read_lns_job::<P>(r)
    }
}

/// Executor for [`LnsJob`]: an [`LnsCursor`] stepped round by round,
/// each round priced as one fused multi-lane repair span.
pub(crate) struct LnsExec<P>
where
    P: IncrementalEval + Send + Sync + 'static,
{
    pub id: JobId,
    pub name: String,
    pub priority: u8,
    pub seq: u64,
    pub state_h2d_bytes: u64,
    pub host: HostSpec,
    pub launch_mode: LaunchMode,
    /// Accumulated launch-per-pass solo cost of the rounds executed so
    /// far — the serialized-fleet baseline contribution (the freed-set
    /// size varies round to round, so this cannot be reconstructed from
    /// the final state).
    pub serial_s: f64,
    pub walk: ProblemCursor<P, LnsCursor<P>>,
}

impl<P> LnsExec<P>
where
    P: IncrementalEval + Send + Sync + 'static,
{
    pub fn new(ctx: SubmitCtx, spec: LnsJob<P>) -> Self {
        let cursor = spec.search.cursor(&spec.problem, spec.init);
        let state_h2d_bytes = spec.state_h2d_bytes.unwrap_or(4 * spec.problem.dim() as u64);
        Self {
            id: ctx.id,
            name: ctx.name(spec.name),
            priority: ctx.priority(spec.priority),
            seq: ctx.seq,
            state_h2d_bytes,
            host: ctx.host,
            launch_mode: spec.launch_mode,
            serial_s: 0.0,
            walk: ProblemCursor::new(Arc::new(spec.problem), cursor),
        }
    }

    /// One repair lane's per-pass shape for the *next* round: `m` freed
    /// single-flip candidates, re-evaluated incrementally.
    fn profile(&self, spec: &DeviceSpec) -> LaneProfile {
        LaneProfile::incremental_eval(
            spec,
            &self.host,
            self.walk.cursor().planned_free_count() as u64,
            1,
            self.walk.problem().dim(),
            self.state_h2d_bytes,
        )
    }

    /// Step up to `quota` rounds, pricing each round as one fused
    /// multi-lane span of `inner_iters` repair launches.
    fn run_rounds(&mut self, dev: &mut Device, quota: u64, mode: LaunchMode) -> StepRun {
        let spec = dev.spec().clone();
        let lanes_n = self.walk.cursor().lanes();
        let inner = self.walk.cursor().inner_iters();
        let mut run = StepRun::default();
        while run.iters < quota && !self.walk.is_done() {
            // The radius (and therefore the freed-set size) is only
            // known round by round — capture the shape before stepping.
            let prof = self.profile(&spec);
            if self.walk.step(1) == 0 {
                break;
            }
            let lanes =
                vec![LaneIo { h2d_bytes: prof.h2d_bytes, d2h_bytes: prof.d2h_bytes }; lanes_n];
            // One fused kernel per repair pass covers all lanes (work is
            // additive across the fused grid).
            let kernel_s = prof.kernel_seconds * lanes_n as f64;
            let sched = price_fused_span(&spec, &lanes, &[kernel_s], inner as usize, mode);
            let launches = match mode {
                LaunchMode::PerIteration => inner,
                LaunchMode::PersistentSpan => 1,
            };
            let n = inner as f64;
            let h2d_one: f64 = lanes.iter().map(|l| transfer_seconds(&spec, l.h2d_bytes)).sum();
            let d2h_one: f64 = lanes.iter().map(|l| transfer_seconds(&spec, l.d2h_bytes)).sum();
            let book = TimeBook {
                kernel_s: kernel_s * n,
                overhead_s: spec.launch_overhead_s * launches as f64,
                h2d_s: h2d_one * n,
                d2h_s: d2h_one * n,
                bytes_h2d: lanes.iter().map(|l| l.h2d_bytes).sum::<u64>() * inner,
                bytes_d2h: lanes.iter().map(|l| l.d2h_bytes).sum::<u64>() * inner,
                launches,
                host_s: prof.host_seconds * lanes_n as f64 * n,
            };
            dev.charge(&book);
            self.serial_s += prof.solo_seconds(&spec) * (lanes_n as u64 * inner) as f64;
            run.iters += 1;
            run.seconds += sched.makespan;
            run.serialized_s += sched.serialized;
            run.spans += 1;
            run.launch_overhead_saved_s += (inner - launches) as f64 * spec.launch_overhead_s;
        }
        run
    }
}

impl<P> JobExec for LnsExec<P>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
{
    fn id(&self) -> JobId {
        self.id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn seq(&self) -> u64 {
        self.seq
    }

    fn done(&self) -> bool {
        self.walk.is_done()
    }

    fn iterations(&self) -> u64 {
        self.walk.iterations()
    }

    fn batch_key(&self) -> Option<BatchKey> {
        // Each round already *is* a fused multi-lane batch; rounds of
        // different jobs have unrelated freed sets, so cross-tenant
        // fusion has nothing coherent to fuse.
        None
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn step_device(&mut self, dev: &mut Device, quota: u64) -> StepRun {
        let mode = self.launch_mode;
        self.run_rounds(dev, quota, mode)
    }

    fn step_host(&mut self, _host: &HostSpec, quota: u64) -> StepRun {
        // Host repairs run the same passes serially; `profile` folds the
        // executor's host model in (reference device irrelevant).
        let ref_spec = DeviceSpec::gtx280();
        let lanes_n = self.walk.cursor().lanes();
        let inner = self.walk.cursor().inner_iters();
        let mut run = StepRun::default();
        while run.iters < quota && !self.walk.is_done() {
            let prof = self.profile(&ref_spec);
            if self.walk.step(1) == 0 {
                break;
            }
            let seconds = prof.host_seconds * (lanes_n as u64 * inner) as f64;
            self.serial_s += seconds;
            run.iters += 1;
            run.seconds += seconds;
            run.serialized_s += seconds;
        }
        run
    }

    fn step_batch(
        &mut self,
        peers: &mut [&mut Box<dyn JobExec>],
        dev: &mut Device,
        span_iters: u64,
        mode: LaunchMode,
    ) -> StepRun {
        assert!(peers.is_empty(), "batch_key() is None, so no peers ever arrive");
        self.run_rounds(dev, span_iters.max(1), mode)
    }

    fn serial_equivalent_s(&self, _spec: &DeviceSpec) -> f64 {
        self.serial_s
    }

    fn finish(&mut self, backend: String, started_s: f64, finished_s: f64) -> JobReport {
        let result = self.walk.cursor().clone().into_result(std::time::Duration::ZERO);
        JobReport {
            id: self.id,
            name: self.name.clone(),
            tenant: String::new(),
            backend,
            submitted_s: 0.0,
            started_s,
            finished_s,
            fused_iterations: 0,
            cancelled: false,
            rejected: false,
            outcome: JobOutcome::binary(result),
        }
    }

    fn clone_box(&self) -> Box<dyn JobExec> {
        Box::new(Self {
            id: self.id,
            name: self.name.clone(),
            priority: self.priority,
            seq: self.seq,
            state_h2d_bytes: self.state_h2d_bytes,
            host: self.host.clone(),
            launch_mode: self.launch_mode,
            serial_s: self.serial_s,
            walk: self.walk.clone(),
        })
    }

    fn persist_tag(&self) -> String {
        lns_tag::<P>()
    }

    fn persist(&self, out: &mut Vec<u8>) {
        self.id.0.write(out);
        self.name.write(out);
        self.priority.write(out);
        self.seq.write(out);
        self.state_h2d_bytes.write(out);
        self.host.write(out);
        self.launch_mode.write(out);
        self.serial_s.write(out);
        self.walk.problem().write(out);
        self.walk.cursor().persist(out);
    }
}

/// Decode one [`LnsExec`] payload (inverse of its `persist`).
pub(crate) fn read_lns_job<P>(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
{
    let id = JobId(r.read::<u64>()?);
    let name: String = r.read()?;
    let priority: u8 = r.read()?;
    let seq: u64 = r.read()?;
    let state_h2d_bytes: u64 = r.read()?;
    let host: HostSpec = r.read()?;
    let launch_mode: LaunchMode = r.read()?;
    let serial_s: f64 = r.read()?;
    let problem: P = r.read()?;
    let cursor = LnsCursor::read_persisted(r, &problem)?;
    Ok(Box::new(LnsExec {
        id,
        name,
        priority,
        seq,
        state_h2d_bytes,
        host,
        launch_mode,
        serial_s,
        walk: ProblemCursor::new(Arc::new(problem), cursor),
    }))
}

// ---------------------------------------------------------------------
// Portfolio-race jobs
// ---------------------------------------------------------------------

/// A portfolio-race job — tabu vs. simulated annealing vs. shaken
/// descent on one instance — submitted via the generic
/// [`Scheduler::submit`](crate::Scheduler::submit).
///
/// One scheduler iteration is one race round. The three heterogeneous
/// lanes are priced as one fused stream span per leader window, and the
/// finished job attaches a
/// [`PortfolioOutcome`](lnls_lns::PortfolioOutcome) detail
/// ([`JobOutcome::detail`]) reporting where the iteration budget went.
pub struct PortfolioJob<P> {
    /// Submission name (reports only).
    pub name: String,
    /// The problem instance (moved into the scheduler).
    pub problem: P,
    /// Driver configuration (budget, seed, reallocation quantum, boost).
    pub search: PortfolioSearch,
    /// Initial solution — explicit so fleet runs are bit-comparable to
    /// solo runs.
    pub init: BitString,
    /// Larger runs first when the queue is contended (0 = bulk).
    pub priority: u8,
    /// Per-sub-step incremental-state upload, bytes (pricing input);
    /// defaults to `4·dim` like [`BinaryJob`](crate::BinaryJob).
    pub state_h2d_bytes: Option<u64>,
    /// How leader-window spans charge launch overhead (pricing-only).
    pub launch_mode: LaunchMode,
}

impl<P> PortfolioJob<P> {
    /// A job with default priority, pricing hints and per-iteration
    /// launches.
    pub fn new(
        name: impl Into<String>,
        problem: P,
        search: PortfolioSearch,
        init: BitString,
    ) -> Self {
        Self {
            name: name.into(),
            problem,
            search,
            init,
            priority: 0,
            state_h2d_bytes: None,
            launch_mode: LaunchMode::PerIteration,
        }
    }

    /// Set the queue priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Override the per-sub-step state-upload pricing hint.
    pub fn with_state_bytes(mut self, bytes: u64) -> Self {
        self.state_h2d_bytes = Some(bytes);
        self
    }

    /// Price leader-window spans under `mode`.
    pub fn with_launch_mode(mut self, mode: LaunchMode) -> Self {
        self.launch_mode = mode;
        self
    }
}

impl<P> SearchJob for PortfolioJob<P>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn persist_tag(&self) -> String {
        portfolio_tag::<P>()
    }

    fn into_exec(self: Box<Self>, ctx: SubmitCtx) -> Box<dyn JobExec> {
        Box::new(PortfolioExec::new(ctx, *self))
    }
}

impl<P> JobCodec for PortfolioJob<P>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
{
    fn registry_tag() -> String {
        portfolio_tag::<P>()
    }

    fn decode(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError> {
        read_portfolio_job::<P>(r)
    }
}

/// Executor for [`PortfolioJob`]: a [`PortfolioCursor`] stepped round by
/// round, priced one heterogeneous-lane span per leader window.
pub(crate) struct PortfolioExec<P>
where
    P: IncrementalEval + Send + Sync + 'static,
{
    pub id: JobId,
    pub name: String,
    pub priority: u8,
    pub seq: u64,
    pub state_h2d_bytes: u64,
    pub host: HostSpec,
    pub launch_mode: LaunchMode,
    /// Accumulated solo cost of the sub-steps executed so far (the
    /// leader schedule varies, so this cannot be reconstructed from the
    /// final state).
    pub serial_s: f64,
    pub walk: ProblemCursor<P, PortfolioCursor<P>>,
}

impl<P> PortfolioExec<P>
where
    P: IncrementalEval + Send + Sync + 'static,
{
    pub fn new(ctx: SubmitCtx, spec: PortfolioJob<P>) -> Self {
        let cursor = spec.search.cursor(&spec.problem, spec.init);
        let state_h2d_bytes = spec.state_h2d_bytes.unwrap_or(4 * spec.problem.dim() as u64);
        Self {
            id: ctx.id,
            name: ctx.name(spec.name),
            priority: ctx.priority(spec.priority),
            seq: ctx.seq,
            state_h2d_bytes,
            host: ctx.host,
            launch_mode: spec.launch_mode,
            serial_s: 0.0,
            walk: ProblemCursor::new(Arc::new(spec.problem), cursor),
        }
    }

    /// The three lanes' per-sub-step shapes: full-neighborhood tabu
    /// scan, one sampled annealing move, whole-string greedy descent.
    fn profiles(&self, spec: &DeviceSpec) -> [LaneProfile; 3] {
        let cursor = self.walk.cursor();
        let dim = self.walk.problem().dim();
        let hood = cursor.hood();
        [
            LaneProfile::incremental_eval(
                spec,
                &self.host,
                hood.size(),
                hood.k(),
                dim,
                self.state_h2d_bytes,
            ),
            LaneProfile::incremental_eval(spec, &self.host, 1, hood.k(), dim, self.state_h2d_bytes),
            LaneProfile::incremental_eval(
                spec,
                &self.host,
                dim as u64,
                1,
                dim,
                self.state_h2d_bytes,
            ),
        ]
    }

    /// Sub-steps lane `lane` runs per round under `leader`.
    fn substeps(&self, lane: usize, leader: usize) -> u64 {
        if lane == leader {
            self.walk.cursor().boost()
        } else {
            1
        }
    }

    /// Step up to `quota` rounds; each leader window (the leader is
    /// constant between reallocation boundaries) is priced as one fused
    /// heterogeneous-lane span with one kernel-chain entry per lane
    /// sub-step.
    fn run_rounds(&mut self, dev: &mut Device, quota: u64, mode: LaunchMode) -> StepRun {
        let spec = dev.spec().clone();
        let mut run = StepRun::default();
        while run.iters < quota && !self.walk.is_done() {
            let leader = self.walk.cursor().leader();
            let realloc = self.walk.cursor().realloc_every();
            let window = realloc - self.walk.iterations() % realloc;
            let profs = self.profiles(&spec);
            let lanes: Vec<LaneIo> = profs
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let s = self.substeps(i, leader);
                    LaneIo { h2d_bytes: p.h2d_bytes * s, d2h_bytes: p.d2h_bytes * s }
                })
                .collect();
            let kernels: Vec<f64> = profs
                .iter()
                .enumerate()
                .flat_map(|(i, p)| {
                    std::iter::repeat_n(p.kernel_seconds, self.substeps(i, leader) as usize)
                })
                .collect();
            let ran = self.walk.step(window.min(quota - run.iters));
            if ran == 0 {
                break;
            }
            let sched = price_fused_span(&spec, &lanes, &kernels, ran as usize, mode);
            let per_iter = kernels.len() as u64;
            let launches = match mode {
                LaunchMode::PerIteration => ran * per_iter,
                LaunchMode::PersistentSpan => per_iter,
            };
            let n = ran as f64;
            let h2d_one: f64 = lanes.iter().map(|l| transfer_seconds(&spec, l.h2d_bytes)).sum();
            let d2h_one: f64 = lanes.iter().map(|l| transfer_seconds(&spec, l.d2h_bytes)).sum();
            let host_one: f64 = profs
                .iter()
                .enumerate()
                .map(|(i, p)| p.host_seconds * self.substeps(i, leader) as f64)
                .sum();
            let book = TimeBook {
                kernel_s: kernels.iter().sum::<f64>() * n,
                overhead_s: spec.launch_overhead_s * launches as f64,
                h2d_s: h2d_one * n,
                d2h_s: d2h_one * n,
                bytes_h2d: lanes.iter().map(|l| l.h2d_bytes).sum::<u64>() * ran,
                bytes_d2h: lanes.iter().map(|l| l.d2h_bytes).sum::<u64>() * ran,
                launches,
                host_s: host_one * n,
            };
            dev.charge(&book);
            self.serial_s += profs
                .iter()
                .enumerate()
                .map(|(i, p)| p.solo_seconds(&spec) * self.substeps(i, leader) as f64)
                .sum::<f64>()
                * n;
            run.iters += ran;
            run.seconds += sched.makespan;
            run.serialized_s += sched.serialized;
            run.spans += 1;
            run.launch_overhead_saved_s +=
                (ran * per_iter - launches) as f64 * spec.launch_overhead_s;
        }
        run
    }
}

impl<P> JobExec for PortfolioExec<P>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
{
    fn id(&self) -> JobId {
        self.id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn seq(&self) -> u64 {
        self.seq
    }

    fn done(&self) -> bool {
        self.walk.is_done()
    }

    fn iterations(&self) -> u64 {
        self.walk.iterations()
    }

    fn batch_key(&self) -> Option<BatchKey> {
        // The race is already a fused heterogeneous batch of its own
        // three lanes; it never fuses with other tenants.
        None
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn step_device(&mut self, dev: &mut Device, quota: u64) -> StepRun {
        let mode = self.launch_mode;
        self.run_rounds(dev, quota, mode)
    }

    fn step_host(&mut self, _host: &HostSpec, quota: u64) -> StepRun {
        let ref_spec = DeviceSpec::gtx280();
        let mut run = StepRun::default();
        while run.iters < quota && !self.walk.is_done() {
            let leader = self.walk.cursor().leader();
            let profs = self.profiles(&ref_spec);
            if self.walk.step(1) == 0 {
                break;
            }
            let seconds: f64 = profs
                .iter()
                .enumerate()
                .map(|(i, p)| p.host_seconds * self.substeps(i, leader) as f64)
                .sum();
            self.serial_s += seconds;
            run.iters += 1;
            run.seconds += seconds;
            run.serialized_s += seconds;
        }
        run
    }

    fn step_batch(
        &mut self,
        peers: &mut [&mut Box<dyn JobExec>],
        dev: &mut Device,
        span_iters: u64,
        mode: LaunchMode,
    ) -> StepRun {
        assert!(peers.is_empty(), "batch_key() is None, so no peers ever arrive");
        self.run_rounds(dev, span_iters.max(1), mode)
    }

    fn serial_equivalent_s(&self, _spec: &DeviceSpec) -> f64 {
        self.serial_s
    }

    fn finish(&mut self, backend: String, started_s: f64, finished_s: f64) -> JobReport {
        let outcome = self.walk.cursor().outcome();
        let result = self.walk.cursor().clone().into_result(std::time::Duration::ZERO);
        JobReport {
            id: self.id,
            name: self.name.clone(),
            tenant: String::new(),
            backend,
            submitted_s: 0.0,
            started_s,
            finished_s,
            fused_iterations: 0,
            cancelled: false,
            rejected: false,
            outcome: JobOutcome::with_detail(
                result.best_fitness,
                result.iterations,
                result.success,
                outcome,
            ),
        }
    }

    fn clone_box(&self) -> Box<dyn JobExec> {
        Box::new(Self {
            id: self.id,
            name: self.name.clone(),
            priority: self.priority,
            seq: self.seq,
            state_h2d_bytes: self.state_h2d_bytes,
            host: self.host.clone(),
            launch_mode: self.launch_mode,
            serial_s: self.serial_s,
            walk: self.walk.clone(),
        })
    }

    fn persist_tag(&self) -> String {
        portfolio_tag::<P>()
    }

    fn persist(&self, out: &mut Vec<u8>) {
        self.id.0.write(out);
        self.name.write(out);
        self.priority.write(out);
        self.seq.write(out);
        self.state_h2d_bytes.write(out);
        self.host.write(out);
        self.launch_mode.write(out);
        self.serial_s.write(out);
        self.walk.problem().write(out);
        self.walk.cursor().persist(out);
    }
}

/// Decode one [`PortfolioExec`] payload (inverse of its `persist`).
pub(crate) fn read_portfolio_job<P>(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
{
    let id = JobId(r.read::<u64>()?);
    let name: String = r.read()?;
    let priority: u8 = r.read()?;
    let seq: u64 = r.read()?;
    let state_h2d_bytes: u64 = r.read()?;
    let host: HostSpec = r.read()?;
    let launch_mode: LaunchMode = r.read()?;
    let serial_s: f64 = r.read()?;
    let problem: P = r.read()?;
    let cursor = PortfolioCursor::read_persisted(r, &problem)?;
    Ok(Box::new(PortfolioExec {
        id,
        name,
        priority,
        seq,
        state_h2d_bytes,
        host,
        launch_mode,
        serial_s,
        walk: ProblemCursor::new(Arc::new(problem), cursor),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FleetCheckpoint, JobRegistry, Scheduler, SchedulerConfig};
    use lnls_core::{SearchConfig, SearchCursor};
    use lnls_problems::{Knapsack, MaxSat, Qubo};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lns_search(rounds: u64, seed: u64) -> LnsSearch {
        LnsSearch::paper(SearchConfig::budget(rounds).with_seed(seed).with_target(None))
    }

    fn portfolio_search(rounds: u64, seed: u64) -> PortfolioSearch {
        PortfolioSearch::paper(SearchConfig::budget(rounds).with_seed(seed).with_target(None))
    }

    fn knap_lns(i: u64, rounds: u64) -> LnsJob<Knapsack> {
        let mut rng = StdRng::seed_from_u64(i);
        let problem = Knapsack::random(&mut rng, 24, 9, 5);
        let init = BitString::random(&mut rng, 24);
        LnsJob::new(format!("lns-{i}"), problem, lns_search(rounds, i), init)
    }

    fn qubo_portfolio(i: u64, rounds: u64) -> PortfolioJob<Qubo> {
        let mut rng = StdRng::seed_from_u64(i);
        let problem = Qubo::random(&mut rng, 20, 7, 0.5);
        let init = BitString::random(&mut rng, 20);
        PortfolioJob::new(format!("race-{i}"), problem, portfolio_search(rounds, i), init)
    }

    #[test]
    fn fleet_lns_results_match_solo_runs() {
        let mut fleet = Scheduler::with_uniform_fleet(
            2,
            lnls_gpu_sim::DeviceSpec::gtx280(),
            SchedulerConfig { quantum_iters: Some(3), ..Default::default() },
        );
        let handles: Vec<_> = (0..4).map(|i| fleet.submit(knap_lns(i, 25))).collect();
        fleet.run_until_idle();
        for (i, h) in handles.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(i as u64);
            let problem = Knapsack::random(&mut rng, 24, 9, 5);
            let init = BitString::random(&mut rng, 24);
            let want = lns_search(25, i as u64).run(&problem, init);
            let got = fleet.report(*h).expect("done");
            let got = got.outcome.as_binary().expect("lns reports SearchResult");
            assert_eq!(got.best, want.best, "job {i}");
            assert_eq!(got.best_fitness, want.best_fitness, "job {i}");
            assert_eq!(got.iterations, want.iterations, "job {i}");
            assert_eq!(got.evals, want.evals, "job {i}");
        }
        let report = fleet.fleet_report();
        assert!(report.spans > 0, "every round prices one fused span");
    }

    #[test]
    fn fleet_portfolio_matches_solo_and_reports_reallocation() {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            lnls_gpu_sim::DeviceSpec::gtx280(),
            SchedulerConfig { quantum_iters: Some(5), ..Default::default() },
        );
        let h = fleet.submit(qubo_portfolio(3, 48));
        fleet.run_until_idle();
        let mut rng = StdRng::seed_from_u64(3);
        let problem = Qubo::random(&mut rng, 20, 7, 0.5);
        let init = BitString::random(&mut rng, 20);
        let mut solo = portfolio_search(48, 3).cursor(&problem, init);
        solo.step_batch(&problem, u64::MAX);
        let report = fleet.report(h).expect("done");
        let detail: &lnls_lns::PortfolioOutcome =
            report.outcome.detail().expect("portfolio attaches its race outcome");
        assert_eq!(*detail, solo.outcome(), "fleet race must equal the solo race");
        assert_eq!(report.outcome.best_fitness(), solo.best());
        let total: u64 = detail.lane_iterations.iter().sum();
        let max_lane = *detail.lane_iterations.iter().max().expect("lanes");
        assert!(
            max_lane > total / 3,
            "the boost must concentrate budget on the leading lane: {:?}",
            detail.lane_iterations
        );
    }

    #[test]
    fn lns_and_portfolio_survive_checkpoint_bytes_mid_run() {
        let build = || {
            let mut fleet = Scheduler::with_uniform_fleet(
                1,
                lnls_gpu_sim::DeviceSpec::gtx280(),
                SchedulerConfig { quantum_iters: Some(4), ..Default::default() },
            );
            fleet.submit(knap_lns(7, 30));
            fleet.submit(qubo_portfolio(8, 40));
            fleet
        };
        let mut straight = build();
        straight.run_until_idle();

        let mut fleet = build();
        for _ in 0..3 {
            fleet.tick();
        }
        let bytes = fleet.checkpoint().to_bytes();
        drop(fleet);
        let registry = JobRegistry::with_builtin();
        let revived = FleetCheckpoint::from_bytes(&bytes, &registry).expect("both tags registered");
        let mut resumed = Scheduler::restore(revived);
        resumed.run_until_idle();

        for (ra, rb) in straight.reports().zip(resumed.reports()) {
            assert_eq!(ra.id, rb.id);
            assert_eq!(ra.outcome.best_fitness(), rb.outcome.best_fitness(), "{}", ra.name);
            assert_eq!(ra.outcome.iterations(), rb.outcome.iterations(), "{}", ra.name);
        }
        let a = straight.fleet_report();
        let b = resumed.fleet_report();
        assert!((a.makespan_s - b.makespan_s).abs() < 1e-9, "{} vs {}", a.makespan_s, b.makespan_s);
    }

    #[test]
    fn builtin_registry_knows_all_six_new_tags() {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            lnls_gpu_sim::DeviceSpec::gtx280(),
            SchedulerConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(5);
        let sat = MaxSat::random(&mut rng, 12, 40);
        let qubo = Qubo::random(&mut rng, 12, 5, 0.5);
        let knap = Knapsack::random(&mut rng, 12, 8, 4);
        let init = BitString::random(&mut rng, 12);
        fleet.submit(LnsJob::new("a", sat.clone(), lns_search(6, 1), init.clone()));
        fleet.submit(LnsJob::new("b", qubo.clone(), lns_search(6, 2), init.clone()));
        fleet.submit(LnsJob::new("c", knap.clone(), lns_search(6, 3), init.clone()));
        fleet.submit(PortfolioJob::new("d", sat, portfolio_search(6, 4), init.clone()));
        fleet.submit(PortfolioJob::new("e", qubo, portfolio_search(6, 5), init.clone()));
        fleet.submit(PortfolioJob::new("f", knap, portfolio_search(6, 6), init));
        fleet.tick();
        let bytes = fleet.checkpoint().to_bytes();
        let registry = JobRegistry::with_builtin();
        let revived =
            FleetCheckpoint::from_bytes(&bytes, &registry).expect("all six tags registered");
        let mut resumed = Scheduler::restore(revived);
        resumed.run_until_idle();
        assert_eq!(resumed.fleet_report().jobs_completed, 6);
    }
}
