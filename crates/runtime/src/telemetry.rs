//! Fleet time-series telemetry: what the scheduler looked like at every
//! tick, not just at the end.
//!
//! The ROADMAP asks for *admission backpressure signals over time* —
//! queue depth history, not final counts. With
//! [`SchedulerConfig::telemetry_every_ticks`](crate::SchedulerConfig::telemetry_every_ticks)
//! set, the tick loop appends one [`TickSample`] per cadence beat to a
//! [`Telemetry`] series; the series rides along in
//! [`FleetReport::telemetry`](crate::FleetReport::telemetry) so the
//! workload driver, the benches and the `Display` summary can all read
//! the same record. Telemetry is observational: it never influences
//! scheduling, and it is not checkpointed (a restored fleet starts a
//! fresh series at its inherited tick counter).

use std::fmt;

/// One sampled instant of the fleet: the tick-loop state after the
/// backends stepped. Count fields are cumulative; `queue_depth` and
/// `running` are instantaneous.
#[derive(Clone, Debug, PartialEq)]
pub struct TickSample {
    /// The scheduler tick this sample was taken at (monotone, survives
    /// checkpoint/restore).
    pub tick: u64,
    /// Fleet clock at the sample (modeled seconds — the max backend
    /// clock).
    pub now_s: f64,
    /// Jobs waiting in the queue — the backpressure signal admission
    /// caps act on.
    pub queue_depth: u64,
    /// Jobs currently placed on a backend.
    pub running: u64,
    /// Jobs completed so far (cumulative, cancelled/rejected excluded).
    pub completed: u64,
    /// Jobs cancelled so far (cumulative).
    pub cancelled: u64,
    /// Jobs rejected/shed so far (cumulative; scheduler-side sheds only
    /// — outright submission bounces never reach the scheduler).
    pub rejected: u64,
    /// Preemptions so far (cumulative).
    pub preemptions: u64,
    /// Busy seconds per device backend at the sample.
    pub device_busy_s: Vec<f64>,
    /// Bytes uploaded over PCIe so far, summed across devices
    /// (cumulative).
    pub bytes_h2d: u64,
    /// Bytes read back over PCIe so far, summed across devices
    /// (cumulative) — the series that collapses under
    /// [`SelectionMode::DeviceArgmin`](lnls_gpu_sim::SelectionMode).
    pub bytes_d2h: u64,
}

/// A time series of [`TickSample`]s plus summary accessors.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Telemetry {
    samples: Vec<TickSample>,
}

impl Telemetry {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, sample: TickSample) {
        self.samples.push(sample);
    }

    /// The recorded samples, in tick order.
    pub fn samples(&self) -> &[TickSample] {
        &self.samples
    }

    /// True when nothing was recorded (telemetry off or no ticks ran).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Deepest queue observed at any sample.
    pub fn max_queue_depth(&self) -> u64 {
        self.samples.iter().map(|s| s.queue_depth).max().unwrap_or(0)
    }

    /// Mean queue depth over the samples (0 when empty).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.queue_depth as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Rejections/sheds that landed between consecutive samples — the
    /// per-tick backpressure response (first entry counts from zero).
    pub fn rejections_per_sample(&self) -> Vec<u64> {
        let mut prev = 0;
        self.samples
            .iter()
            .map(|s| {
                let d = s.rejected.saturating_sub(prev);
                prev = s.rejected;
                d
            })
            .collect()
    }

    /// Queue depth compressed to at most `buckets` points (max within
    /// each bucket — backpressure spikes must survive the compression).
    pub fn queue_depth_buckets(&self, buckets: usize) -> Vec<u64> {
        bucket_max(&self.samples.iter().map(|s| s.queue_depth).collect::<Vec<_>>(), buckets)
    }

    /// One-line sparkline of the queue depth (empty string when no
    /// samples) — the `Display` backpressure summary.
    pub fn queue_sparkline(&self, buckets: usize) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let series = self.queue_depth_buckets(buckets);
        let peak = series.iter().copied().max().unwrap_or(0).max(1);
        series
            .iter()
            .map(|&d| {
                if d == 0 {
                    ' '
                } else {
                    BARS[((d * (BARS.len() as u64 - 1)).div_ceil(peak) as usize)
                        .min(BARS.len() - 1)]
                }
            })
            .collect()
    }
}

impl fmt::Display for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue depth max {} mean {:.1} over {} samples [{}]",
            self.max_queue_depth(),
            self.mean_queue_depth(),
            self.samples.len(),
            self.queue_sparkline(32),
        )
    }
}

/// Compress `values` to at most `buckets` entries, keeping the max of
/// each bucket.
fn bucket_max(values: &[u64], buckets: usize) -> Vec<u64> {
    if values.is_empty() || buckets == 0 {
        return Vec::new();
    }
    let per = values.len().div_ceil(buckets);
    values.chunks(per).map(|c| c.iter().copied().max().unwrap_or(0)).collect()
}

/// Nearest-rank percentile of an **unsorted** sample set (`q` in
/// `[0, 1]`); 0.0 for an empty set. Deterministic — the workload replay
/// proptest compares reports bit for bit.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tick: u64, depth: u64, rejected: u64) -> TickSample {
        TickSample {
            tick,
            now_s: tick as f64,
            queue_depth: depth,
            running: 1,
            completed: 0,
            cancelled: 0,
            rejected,
            preemptions: 0,
            device_busy_s: vec![0.0],
            bytes_h2d: 0,
            bytes_d2h: 0,
        }
    }

    #[test]
    fn summaries_over_a_small_series() {
        let mut t = Telemetry::new();
        for (i, d) in [3u64, 5, 2, 0].iter().enumerate() {
            t.push(sample(i as u64, *d, i as u64));
        }
        assert_eq!(t.max_queue_depth(), 5);
        assert!((t.mean_queue_depth() - 2.5).abs() < 1e-12);
        assert_eq!(t.rejections_per_sample(), vec![0, 1, 1, 1]);
        assert_eq!(t.queue_depth_buckets(2), vec![5, 2]);
        assert_eq!(t.queue_sparkline(4).chars().count(), 4);
        assert!(t.queue_sparkline(4).ends_with(' '), "empty queue renders blank");
    }

    #[test]
    fn empty_series_is_harmless() {
        let t = Telemetry::new();
        assert!(t.is_empty());
        assert_eq!(t.max_queue_depth(), 0);
        assert_eq!(t.mean_queue_depth(), 0.0);
        assert_eq!(t.queue_sparkline(8), "");
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        // Unsorted input is handled.
        assert_eq!(percentile(&[9.0, 1.0, 5.0], 0.5), 5.0);
    }
}
