//! Fleet time-series telemetry: what the scheduler looked like at every
//! tick, not just at the end.
//!
//! The ROADMAP asks for *admission backpressure signals over time* —
//! queue depth history, not final counts. With
//! [`SchedulerConfig::telemetry_every_ticks`](crate::SchedulerConfig::telemetry_every_ticks)
//! set, the tick loop appends one [`TickSample`] per cadence beat to a
//! [`Telemetry`] series; the series rides along in
//! [`FleetReport::telemetry`](crate::FleetReport::telemetry) so the
//! workload driver, the benches and the `Display` summary can all read
//! the same record. Telemetry is observational: it never influences
//! scheduling, and it is not checkpointed (a restored fleet starts a
//! fresh series at its inherited tick counter).

use std::fmt;

/// One sampled instant of the fleet: the tick-loop state after the
/// backends stepped. Count fields are cumulative; `queue_depth` and
/// `running` are instantaneous.
#[derive(Clone, Debug, PartialEq)]
pub struct TickSample {
    /// The scheduler tick this sample was taken at (monotone, survives
    /// checkpoint/restore).
    pub tick: u64,
    /// Fleet clock at the sample (modeled seconds — the max backend
    /// clock).
    pub now_s: f64,
    /// Jobs waiting in the queue — the backpressure signal admission
    /// caps act on.
    pub queue_depth: u64,
    /// Jobs currently placed on a backend.
    pub running: u64,
    /// Jobs completed so far (cumulative, cancelled/rejected excluded).
    pub completed: u64,
    /// Jobs cancelled so far (cumulative).
    pub cancelled: u64,
    /// Jobs rejected/shed so far (cumulative; scheduler-side sheds only
    /// — outright submission bounces never reach the scheduler).
    pub rejected: u64,
    /// Preemptions so far (cumulative).
    pub preemptions: u64,
    /// Busy seconds per device backend at the sample.
    pub device_busy_s: Vec<f64>,
    /// Bytes uploaded over PCIe so far, summed across devices
    /// (cumulative).
    pub bytes_h2d: u64,
    /// Bytes read back over PCIe so far, summed across devices
    /// (cumulative) — the series that collapses under
    /// [`SelectionMode::DeviceArgmin`](lnls_gpu_sim::SelectionMode).
    pub bytes_d2h: u64,
}

/// A time series of [`TickSample`]s plus summary accessors.
///
/// Long saturation runs can record millions of ticks; a
/// [`with_cap`](Self::with_cap) bound keeps memory flat by
/// deterministically thinning the series (keep-every-other compaction)
/// whenever it outgrows the cap — the surviving samples are a coarser
/// but faithful history, and the compaction depends only on push count,
/// so replayed runs thin identically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Telemetry {
    samples: Vec<TickSample>,
    max_samples: Option<usize>,
}

impl Telemetry {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty series bounded to at most `cap` samples (clamped to a
    /// floor of 2 so thinning always keeps the endpoints meaningful);
    /// `None` keeps every sample.
    pub fn with_cap(cap: Option<usize>) -> Self {
        Self { samples: Vec::new(), max_samples: cap.map(|c| c.max(2)) }
    }

    /// The configured sample cap, if any.
    pub fn max_samples(&self) -> Option<usize> {
        self.max_samples
    }

    pub(crate) fn push(&mut self, sample: TickSample) {
        self.samples.push(sample);
        if let Some(cap) = self.max_samples {
            if self.samples.len() > cap {
                // Keep-every-other compaction: retain even indices,
                // halving the series while preserving its oldest sample
                // and overall shape. Purely a function of push count —
                // bit-identical across replays.
                let mut i = 0usize;
                self.samples.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
            }
        }
    }

    /// The recorded samples, in tick order.
    pub fn samples(&self) -> &[TickSample] {
        &self.samples
    }

    /// True when nothing was recorded (telemetry off or no ticks ran).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Deepest queue observed at any sample.
    pub fn max_queue_depth(&self) -> u64 {
        self.samples.iter().map(|s| s.queue_depth).max().unwrap_or(0)
    }

    /// Mean queue depth over the samples (0 when empty).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.queue_depth as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Rejections/sheds that landed between consecutive samples — the
    /// per-tick backpressure response (first entry counts from zero).
    pub fn rejections_per_sample(&self) -> Vec<u64> {
        let mut prev = 0;
        self.samples
            .iter()
            .map(|s| {
                let d = s.rejected.saturating_sub(prev);
                prev = s.rejected;
                d
            })
            .collect()
    }

    /// Queue depth compressed to at most `buckets` points (max within
    /// each bucket — backpressure spikes must survive the compression).
    pub fn queue_depth_buckets(&self, buckets: usize) -> Vec<u64> {
        bucket_max(&self.samples.iter().map(|s| s.queue_depth).collect::<Vec<_>>(), buckets)
    }

    /// Merge per-shard series into one fleet-wide series, sample by
    /// sample. Shards tick in lockstep under the sharded facades, so
    /// series recorded with the same cadence and cap align index for
    /// index; the merge sums the count fields, concatenates
    /// `device_busy_s` shard-major (shard 0's devices first), and takes
    /// the max clock — the same "fleet clock is the max backend clock"
    /// rule the scheduler itself uses. `tick` comes from the first
    /// series. Deterministic: a pure fold over the input order, so the
    /// parallel runtime merges bit-identically to the serial path.
    ///
    /// Series of unequal length (shards configured with different
    /// cadences or caps) are truncated to the shortest — the aligned
    /// prefix is the only part with a coherent fleet-wide meaning.
    pub fn merge(series: &[&Telemetry]) -> Telemetry {
        let Some((first, rest)) = series.split_first() else {
            return Telemetry::new();
        };
        debug_assert!(
            rest.iter().all(|t| t.samples.len() == first.samples.len()),
            "lockstep shards should record equally long series"
        );
        let len = series.iter().map(|t| t.samples.len()).min().unwrap_or(0);
        let mut merged = Telemetry::with_cap(first.max_samples);
        for i in 0..len {
            let mut sample = first.samples[i].clone();
            for t in rest {
                let s = &t.samples[i];
                sample.now_s = sample.now_s.max(s.now_s);
                sample.queue_depth += s.queue_depth;
                sample.running += s.running;
                sample.completed += s.completed;
                sample.cancelled += s.cancelled;
                sample.rejected += s.rejected;
                sample.preemptions += s.preemptions;
                sample.device_busy_s.extend_from_slice(&s.device_busy_s);
                sample.bytes_h2d += s.bytes_h2d;
                sample.bytes_d2h += s.bytes_d2h;
            }
            merged.samples.push(sample);
        }
        merged
    }

    /// One-line sparkline of the queue depth (empty string when no
    /// samples) — the `Display` backpressure summary.
    pub fn queue_sparkline(&self, buckets: usize) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let series = self.queue_depth_buckets(buckets);
        let peak = series.iter().copied().max().unwrap_or(0).max(1);
        series
            .iter()
            .map(|&d| {
                if d == 0 {
                    ' '
                } else {
                    BARS[((d * (BARS.len() as u64 - 1)).div_ceil(peak) as usize)
                        .min(BARS.len() - 1)]
                }
            })
            .collect()
    }
}

impl fmt::Display for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue depth max {} mean {:.1} over {} samples [{}]",
            self.max_queue_depth(),
            self.mean_queue_depth(),
            self.samples.len(),
            self.queue_sparkline(32),
        )
    }
}

/// Compress `values` to at most `buckets` entries, keeping the max of
/// each bucket.
fn bucket_max(values: &[u64], buckets: usize) -> Vec<u64> {
    if values.is_empty() || buckets == 0 {
        return Vec::new();
    }
    let per = values.len().div_ceil(buckets);
    values.chunks(per).map(|c| c.iter().copied().max().unwrap_or(0)).collect()
}

/// Nearest-rank percentile of an **unsorted** sample set (`q` in
/// `[0, 1]`); 0.0 for an empty set. Deterministic — the workload replay
/// proptest compares reports bit for bit. Clones and sorts per call:
/// when reading several quantiles from one set, sort once and use
/// [`percentile_sorted`].
pub fn percentile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, q)
}

/// Nearest-rank percentile of an **already sorted** (ascending,
/// `f64::total_cmp` order) sample set — the allocation-free fast path
/// for reading many quantiles from one series. Same rank arithmetic as
/// [`percentile`], so the two agree bit for bit.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tick: u64, depth: u64, rejected: u64) -> TickSample {
        TickSample {
            tick,
            now_s: tick as f64,
            queue_depth: depth,
            running: 1,
            completed: 0,
            cancelled: 0,
            rejected,
            preemptions: 0,
            device_busy_s: vec![0.0],
            bytes_h2d: 0,
            bytes_d2h: 0,
        }
    }

    #[test]
    fn summaries_over_a_small_series() {
        let mut t = Telemetry::new();
        for (i, d) in [3u64, 5, 2, 0].iter().enumerate() {
            t.push(sample(i as u64, *d, i as u64));
        }
        assert_eq!(t.max_queue_depth(), 5);
        assert!((t.mean_queue_depth() - 2.5).abs() < 1e-12);
        assert_eq!(t.rejections_per_sample(), vec![0, 1, 1, 1]);
        assert_eq!(t.queue_depth_buckets(2), vec![5, 2]);
        assert_eq!(t.queue_sparkline(4).chars().count(), 4);
        assert!(t.queue_sparkline(4).ends_with(' '), "empty queue renders blank");
    }

    #[test]
    fn empty_series_is_harmless() {
        let t = Telemetry::new();
        assert!(t.is_empty());
        assert_eq!(t.max_queue_depth(), 0);
        assert_eq!(t.mean_queue_depth(), 0.0);
        assert_eq!(t.queue_sparkline(8), "");
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        // Unsorted input is handled.
        assert_eq!(percentile(&[9.0, 1.0, 5.0], 0.5), 5.0);
    }

    #[test]
    fn percentile_sorted_agrees_with_percentile() {
        let v = [9.0, 1.0, 5.0, 2.0, 8.0, 3.0, 0.5];
        let mut sorted = v.to_vec();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&v, q), percentile_sorted(&sorted, q), "q={q}");
        }
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn merge_sums_counts_concats_devices_and_maxes_the_clock() {
        let mut a = Telemetry::new();
        let mut b = Telemetry::new();
        for i in 0..3u64 {
            let mut s = sample(i, 2, 1);
            s.now_s = i as f64;
            s.device_busy_s = vec![1.0];
            a.push(s);
            let mut s = sample(i, 3, 4);
            s.now_s = i as f64 + 0.5;
            s.device_busy_s = vec![2.0, 3.0];
            b.push(s);
        }
        let merged = Telemetry::merge(&[&a, &b]);
        assert_eq!(merged.samples().len(), 3);
        let s = &merged.samples()[1];
        assert_eq!(s.tick, 1, "tick comes from the first series");
        assert_eq!(s.now_s, 1.5, "clock is the max across shards");
        assert_eq!(s.queue_depth, 5);
        assert_eq!(s.rejected, 5);
        assert_eq!(s.running, 2);
        assert_eq!(s.device_busy_s, vec![1.0, 2.0, 3.0], "devices concatenate shard-major");

        assert!(Telemetry::merge(&[]).is_empty());
        let solo = Telemetry::merge(&[&a]);
        assert_eq!(solo, a, "merging one series is the identity");
    }

    #[test]
    fn capped_series_thins_deterministically_and_stays_bounded() {
        let cap = 8usize;
        let mut a = Telemetry::with_cap(Some(cap));
        let mut b = Telemetry::with_cap(Some(cap));
        for i in 0..1000u64 {
            a.push(sample(i, i % 7, 0));
            b.push(sample(i, i % 7, 0));
            assert!(a.samples().len() <= cap, "cap must hold at every push");
        }
        assert_eq!(a, b, "compaction is a pure function of the push sequence");
        assert_eq!(a.samples()[0].tick, 0, "the oldest sample survives every halving");
        let ticks: Vec<u64> = a.samples().iter().map(|s| s.tick).collect();
        assert!(ticks.windows(2).all(|w| w[0] < w[1]), "order preserved: {ticks:?}");

        // A cap below the floor is clamped, not honored literally.
        let mut tiny = Telemetry::with_cap(Some(0));
        for i in 0..10u64 {
            tiny.push(sample(i, 0, 0));
        }
        assert!(tiny.samples().len() <= 2);
        assert_eq!(tiny.max_samples(), Some(2));

        // Uncapped series keep everything.
        let mut unbounded = Telemetry::with_cap(None);
        for i in 0..100u64 {
            unbounded.push(sample(i, 0, 0));
        }
        assert_eq!(unbounded.samples().len(), 100);
    }
}
