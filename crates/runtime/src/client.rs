//! The fleet front-end: admission-controlled submission over a
//! [`Scheduler`].
//!
//! A raw [`Scheduler`] accepts every submission — fine for a library,
//! wrong for a service: a fleet serving many tenants must be able to
//! say *no* before a queue grows without bound. [`FleetClient`] wraps a
//! scheduler with an [`AdmissionPolicy`] (global and per-tenant queue
//! caps, reject vs. shed-lowest-priority) and turns submission into
//! `Result<JobHandle, SubmitError>`. Everything else — status, reports,
//! ticking, checkpoints — passes through to the scheduler, which is
//! also reachable directly for anything not wrapped here.
//!
//! Admission never changes what accepted jobs compute: the admission
//! proptest asserts accepted jobs' results are bit-identical with the
//! policy on and off.

use crate::job::{JobHandle, JobId, JobReport, JobStatus};
use crate::observe::{EventSink, FleetEvent, MetricsRegistry, RejectReason};
use crate::report::FleetReport;
use crate::scheduler::{FleetCheckpoint, Scheduler, StolenJob};
use crate::submit::{JobSpec, SearchJob};
use lnls_core::persist::{Persist, PersistError, Reader};
use std::collections::BTreeMap;
use std::fmt;

/// Queue caps and the overload response of a [`FleetClient`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum jobs waiting in the queue across all tenants (`None` =
    /// unbounded).
    pub max_queued: Option<usize>,
    /// Maximum queued jobs per tenant (`None` = unbounded).
    pub max_queued_per_tenant: Option<usize>,
    /// When a cap is hit: `false` rejects the incoming submission;
    /// `true` sheds the lowest-priority queued job instead — newest
    /// first among equals, and only when it ranks strictly below the
    /// incoming priority (otherwise the submission is still rejected).
    pub shed_lowest_priority: bool,
}

impl AdmissionPolicy {
    /// No caps: every submission is admitted.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A global queue cap that rejects on overflow.
    pub fn queue_cap(max_queued: usize) -> Self {
        Self { max_queued: Some(max_queued), ..Self::default() }
    }

    /// Cap each tenant's queue occupancy.
    pub fn with_tenant_cap(mut self, max_queued: usize) -> Self {
        self.max_queued_per_tenant = Some(max_queued);
        self
    }

    /// Shed the lowest-priority queued job instead of rejecting a
    /// higher-priority submission.
    pub fn with_shedding(mut self) -> Self {
        self.shed_lowest_priority = true;
        self
    }
}

/// Policies ride along in workload traces, so a recorded run replays
/// under the very admission rules it was captured with.
impl Persist for AdmissionPolicy {
    fn write(&self, out: &mut Vec<u8>) {
        self.max_queued.write(out);
        self.max_queued_per_tenant.write(out);
        self.shed_lowest_priority.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            max_queued: r.read()?,
            max_queued_per_tenant: r.read()?,
            shed_lowest_priority: r.read()?,
        })
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The global queue cap is reached and nothing shed-eligible ranks
    /// below the submission.
    QueueFull {
        /// Jobs currently queued.
        queued: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The tenant's queue cap is reached and nothing of the tenant's
    /// ranks below the submission.
    TenantQueueFull {
        /// The tenant whose cap was hit.
        tenant: String,
        /// The tenant's queued jobs.
        queued: usize,
        /// The configured per-tenant cap.
        limit: usize,
    },
    /// The concurrency limiter bounced the submission: the client
    /// already has `limit` or more jobs in flight (queued + running).
    /// Unlike the queue caps this is load shedding, not admission
    /// policy — a closed-loop caller should back off and retry.
    Overloaded {
        /// Jobs in flight (queued + running) at the bounce.
        inflight: usize,
        /// The configured in-flight limit.
        limit: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { queued, limit } => {
                write!(f, "queue full: {queued} jobs queued, cap {limit}")
            }
            SubmitError::TenantQueueFull { tenant, queued, limit } => {
                write!(f, "tenant '{tenant}' queue full: {queued} jobs queued, cap {limit}")
            }
            SubmitError::Overloaded { inflight, limit } => {
                write!(f, "overloaded: {inflight} jobs in flight, limit {limit}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A hard bound on jobs in flight (queued **and** running) fronting a
/// [`FleetClient`] — the service-runtime backstop the queue caps alone
/// cannot provide. Admission caps bound *waiting* work per policy;
/// the limiter bounds *total* resident work so an overloaded shard
/// sheds submissions immediately ([`SubmitError::Overloaded`]) instead
/// of queueing without bound. Deterministic by construction: the
/// decision reads only scheduler state, never wall-clock load, so a
/// recorded trace replays its bounces bit-identically at any worker
/// count.
///
/// The limiter is host-side front-door state, like event sinks: it is
/// not checkpointed. Re-install it after a restore (the workload driver
/// does) — its shed count restarts at zero, while the client-level
/// [`rejected_submissions`](FleetClient::rejected_submissions) total is
/// carried across the crash by [`FleetClient::resume`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcurrencyLimiter {
    max_inflight: usize,
    sheds: u64,
}

impl ConcurrencyLimiter {
    /// A limiter admitting at most `max_inflight` jobs in flight
    /// (clamped to a floor of 1 — a limit of 0 would shed everything).
    pub fn new(max_inflight: usize) -> Self {
        Self { max_inflight: max_inflight.max(1), sheds: 0 }
    }

    /// The configured in-flight bound.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Submissions this limiter has shed since it was installed.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Admit or shed a submission given the current in-flight count.
    fn admit(&mut self, inflight: usize) -> Result<(), SubmitError> {
        if inflight >= self.max_inflight {
            self.sheds += 1;
            Err(SubmitError::Overloaded { inflight, limit: self.max_inflight })
        } else {
            Ok(())
        }
    }
}

/// What the client remembers about an admitted job (for per-tenant
/// counting and shed candidate ranking).
#[derive(Clone, Debug)]
struct Admitted {
    tenant: String,
    priority: u8,
}

/// One queued job in an admission-planning snapshot.
struct QueuedRow {
    id: JobId,
    tenant: String,
    priority: u8,
}

/// Admission-controlled front-end over a [`Scheduler`].
///
/// ```
/// use lnls_runtime::{AdmissionPolicy, BinaryJob, FleetClient, Scheduler, SchedulerConfig};
/// use lnls_core::{BitString, SearchConfig, TabuSearch};
/// use lnls_gpu_sim::DeviceSpec;
/// use lnls_neighborhood::{Neighborhood, TwoHamming};
/// use lnls_problems::OneMax;
///
/// let fleet = Scheduler::with_uniform_fleet(1, DeviceSpec::gtx280(), SchedulerConfig::default());
/// let mut client = FleetClient::new(fleet, AdmissionPolicy::queue_cap(2));
/// let hood = TwoHamming::new(16);
/// let job = |i: u64| {
///     let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(i);
///     let init = BitString::random(&mut rng, 16);
///     let search = TabuSearch::paper(SearchConfig::budget(10).with_seed(i), hood.size());
///     BinaryJob::new(format!("onemax-{i}"), OneMax::new(16), hood, search, init)
/// };
/// let a = client.submit(job(0)).expect("under the cap");
/// let b = client.submit(job(1)).expect("under the cap");
/// assert!(client.submit(job(2)).is_err(), "third submission overflows the cap");
/// client.run_until_idle();
/// assert!(client.report(a).is_some() && client.report(b).is_some());
/// assert_eq!(client.fleet_report().jobs_rejected, 1);
/// ```
pub struct FleetClient {
    fleet: Scheduler,
    policy: AdmissionPolicy,
    admitted: BTreeMap<JobId, Admitted>,
    /// Submissions rejected outright (they never got a handle, so the
    /// scheduler cannot count them).
    rejected_submissions: u64,
    /// Optional in-flight bound checked before the admission policy.
    limiter: Option<ConcurrencyLimiter>,
}

impl FleetClient {
    /// Wrap `fleet` with `policy`.
    pub fn new(fleet: Scheduler, policy: AdmissionPolicy) -> Self {
        Self { fleet, policy, admitted: BTreeMap::new(), rejected_submissions: 0, limiter: None }
    }

    /// Wrap a *restored* scheduler (see
    /// [`Scheduler::restore`](crate::Scheduler::restore)), rebuilding
    /// the admission bookkeeping from its live jobs — queued *and*
    /// running, since preemption returns running jobs to the queue
    /// where caps and shed planning must see them — so admission keeps
    /// working across a crash/restore boundary.
    ///
    /// `rejected_submissions` carries forward the count of submissions
    /// the pre-crash client bounced outright — they never reached the
    /// scheduler, so the checkpoint cannot know about them; pass 0 to
    /// forget them.
    pub fn resume(fleet: Scheduler, policy: AdmissionPolicy, rejected_submissions: u64) -> Self {
        let admitted = fleet
            .live_rows()
            .into_iter()
            .map(|(id, tenant, priority)| (id, Admitted { tenant, priority }))
            .collect();
        Self { fleet, policy, admitted, rejected_submissions, limiter: None }
    }

    /// Submit any [`SearchJob`] under the admission policy.
    pub fn submit<J: SearchJob>(&mut self, job: J) -> Result<JobHandle, SubmitError> {
        self.submit_spec(JobSpec::new(job))
    }

    /// Submit an enveloped [`SearchJob`] under the admission policy.
    ///
    /// Caps count *queued* jobs (running jobs have already won
    /// placement). With shedding enabled, a full queue evicts its
    /// lowest-priority waiting jobs — newest first among equals — but
    /// only jobs ranking strictly below the submission; shed jobs'
    /// reports are marked [`rejected`](JobReport::rejected) and their
    /// handles report [`JobStatus::Rejected`]. Admission is
    /// all-or-nothing: victims are *planned* against every cap first
    /// and evicted only once the submission is certain to be admitted,
    /// so a rejected submission never sheds anyone.
    pub fn submit_spec<J: SearchJob>(
        &mut self,
        spec: JobSpec<J>,
    ) -> Result<JobHandle, SubmitError> {
        let tenant = spec.tenant().to_string();
        let priority = spec.effective_priority();
        // The concurrency limiter fronts everything: an overloaded
        // client sheds before admission planning even looks at the
        // queue (no victims are ever planned for a shed submission).
        if let Some(limiter) = self.limiter.as_mut() {
            let inflight = self.fleet.queued_len() + self.fleet.running_len();
            if let Err(err) = limiter.admit(inflight) {
                self.rejected_submissions += 1;
                if self.fleet.observing() {
                    self.fleet.emit_event(FleetEvent::Rejected {
                        job: None,
                        tenant,
                        reason: RejectReason::Overloaded,
                    });
                }
                return Err(err);
            }
        }
        // One snapshot of the queue, pruning finished bookkeeping on
        // the way (the admitted map stays bounded by *live* jobs).
        let mut queued = self.queued_snapshot();

        // Phase 1: plan. Pop victims from the snapshot until both caps
        // admit the submission; any infeasible cap rejects with nothing
        // evicted yet.
        let mut victims: Vec<JobId> = Vec::new();
        if let Some(limit) = self.policy.max_queued_per_tenant {
            while queued.iter().filter(|q| q.tenant == tenant).count() >= limit {
                match self.plan_shed(&mut queued, priority, Some(&tenant)) {
                    Some(id) => victims.push(id),
                    None => {
                        self.rejected_submissions += 1;
                        if self.fleet.observing() {
                            self.fleet.emit_event(FleetEvent::Rejected {
                                job: None,
                                tenant: tenant.clone(),
                                reason: RejectReason::TenantQueueFull,
                            });
                        }
                        return Err(SubmitError::TenantQueueFull {
                            queued: queued.iter().filter(|q| q.tenant == tenant).count(),
                            tenant,
                            limit,
                        });
                    }
                }
            }
        }
        if let Some(limit) = self.policy.max_queued {
            while queued.len() >= limit {
                match self.plan_shed(&mut queued, priority, None) {
                    Some(id) => victims.push(id),
                    None => {
                        self.rejected_submissions += 1;
                        if self.fleet.observing() {
                            self.fleet.emit_event(FleetEvent::Rejected {
                                job: None,
                                tenant: tenant.clone(),
                                reason: RejectReason::QueueFull,
                            });
                        }
                        return Err(SubmitError::QueueFull { queued: queued.len(), limit });
                    }
                }
            }
        }

        // Phase 2: commit — evict the planned victims, then submit.
        for id in victims {
            self.fleet.reject_queued(JobHandle { id });
            self.admitted.remove(&id);
        }
        let handle = self.fleet.submit_spec(spec);
        if self.fleet.observing() {
            self.fleet.emit_event(FleetEvent::Admitted { job: handle.id() });
        }
        self.admitted.insert(handle.id(), Admitted { tenant, priority });
        Ok(handle)
    }

    /// One pass over the fleet's queue: prune terminal jobs from the
    /// admitted map and return the live queued rows this client admitted.
    fn queued_snapshot(&mut self) -> Vec<QueuedRow> {
        let queued_ids = self.fleet.queued_job_ids();
        let fleet = &self.fleet;
        self.admitted.retain(|id, _| !fleet.is_terminal(JobHandle { id: *id }));
        self.admitted
            .iter()
            .filter(|(id, _)| queued_ids.contains(id))
            .map(|(id, a)| QueuedRow { id: *id, tenant: a.tenant.clone(), priority: a.priority })
            .collect()
    }

    /// Pick the next shed victim from the snapshot: lowest priority
    /// strictly below `incoming`, newest first among equals, restricted
    /// to `tenant` when given. Removes it from the snapshot and returns
    /// its id; `None` when shedding is off or nothing qualifies.
    fn plan_shed(
        &self,
        queued: &mut Vec<QueuedRow>,
        incoming: u8,
        tenant: Option<&str>,
    ) -> Option<JobId> {
        if !self.policy.shed_lowest_priority {
            return None;
        }
        let (idx, _) = queued
            .iter()
            .enumerate()
            .filter(|(_, q)| tenant.is_none_or(|t| q.tenant == t) && q.priority < incoming)
            .min_by_key(|(_, q)| (q.priority, std::cmp::Reverse(q.id)))?;
        Some(queued.swap_remove(idx).id)
    }

    // -- pass-throughs ------------------------------------------------

    /// Advance the fleet one step (see [`Scheduler::tick`]).
    pub fn tick(&mut self) -> bool {
        self.fleet.tick()
    }

    /// Run until every admitted job has completed.
    pub fn run_until_idle(&mut self) {
        self.fleet.run_until_idle()
    }

    /// Where `handle`'s job currently is (see [`Scheduler::status`]).
    pub fn status(&self, handle: JobHandle) -> JobStatus {
        self.fleet.status(handle)
    }

    /// Request cancellation (see [`Scheduler::cancel`]).
    pub fn cancel(&mut self, handle: JobHandle) -> bool {
        self.fleet.cancel(handle)
    }

    /// The report of a completed job, if it completed.
    pub fn report(&self, handle: JobHandle) -> Option<&JobReport> {
        self.fleet.report(handle)
    }

    /// Drive the fleet until `handle` completes, then return its report
    /// (see [`Scheduler::await_report`]).
    pub fn await_report(&mut self, handle: JobHandle) -> &JobReport {
        self.fleet.await_report(handle)
    }

    /// All completed reports, in job-id order.
    pub fn reports(&self) -> impl Iterator<Item = &JobReport> {
        self.fleet.reports()
    }

    /// Snapshot the underlying fleet (see [`Scheduler::checkpoint`]).
    pub fn checkpoint(&self) -> FleetCheckpoint {
        self.fleet.checkpoint()
    }

    /// Fleet summary; [`jobs_rejected`](FleetReport::jobs_rejected)
    /// includes submissions this client rejected outright on top of the
    /// jobs the scheduler shed.
    pub fn fleet_report(&self) -> FleetReport {
        let mut report = self.fleet.fleet_report();
        report.jobs_rejected += self.rejected_submissions;
        report
    }

    /// Attach an event sink (see [`Scheduler::attach_sink`]). Sinks
    /// attached through the client also see the client-side admission
    /// events (`Admitted`, outright-bounce `Rejected`).
    pub fn attach_sink(&mut self, sink: Box<dyn EventSink>) {
        self.fleet.attach_sink(sink);
    }

    /// Detach the current event sink, flushed (see
    /// [`Scheduler::detach_sink`]).
    pub fn detach_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.fleet.detach_sink()
    }

    /// Attach a metrics registry (see [`Scheduler::attach_metrics`]).
    pub fn attach_metrics(&mut self, registry: MetricsRegistry) {
        self.fleet.attach_metrics(registry);
    }

    /// Attach a fresh, empty metrics registry (see
    /// [`Scheduler::enable_metrics`]).
    pub fn enable_metrics(&mut self) {
        self.fleet.enable_metrics();
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.fleet.metrics()
    }

    /// Detach and return the attached metrics registry, if any.
    pub fn take_metrics(&mut self) -> Option<MetricsRegistry> {
        self.fleet.take_metrics()
    }

    /// Submissions this client refused (admission policy or limiter,
    /// not the scheduler). Carried across a crash via
    /// [`resume`](Self::resume)'s `rejected_submissions` argument.
    pub fn rejected_submissions(&self) -> u64 {
        self.rejected_submissions
    }

    /// Install (`Some`) or remove (`None`) a [`ConcurrencyLimiter`]
    /// bounding jobs in flight. Not checkpointed — re-install after a
    /// restore.
    pub fn set_inflight_limit(&mut self, max_inflight: Option<usize>) {
        self.limiter = max_inflight.map(ConcurrencyLimiter::new);
    }

    /// The limiter fronting this client, if one is installed.
    pub fn limiter(&self) -> Option<&ConcurrencyLimiter> {
        self.limiter.as_ref()
    }

    /// Extract a *queued* job for a shard-level steal, forgetting it
    /// from this client's admission ledger. Running jobs are never
    /// donated. `None` when the id is not queued here.
    pub fn donate_queued(&mut self, id: JobId) -> Option<StolenJob> {
        let stolen = self.fleet.donate_queued(id)?;
        self.admitted.remove(&id);
        Some(stolen)
    }

    /// Adopt a job stolen from another shard, adding it to this
    /// client's admission ledger (a steal bypasses admission policy:
    /// the job was already admitted fleet-wide by its donor).
    pub fn adopt(&mut self, stolen: StolenJob) -> JobHandle {
        let tenant = stolen.tenant().to_string();
        let priority = stolen.priority();
        let handle = self.fleet.adopt(stolen);
        self.admitted.insert(handle.id(), Admitted { tenant, priority });
        handle
    }

    /// The wrapped scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.fleet
    }

    /// Mutable access to the wrapped scheduler (placement, devices,
    /// anything not wrapped here). Submitting through the scheduler
    /// directly bypasses admission control, by design.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.fleet
    }

    /// Unwrap into the scheduler.
    pub fn into_scheduler(self) -> Scheduler {
        self.fleet
    }
}
