//! Fleet-level reporting.

use crate::telemetry::Telemetry;
use lnls_gpu_sim::TimeBook;
use std::collections::BTreeMap;
use std::fmt;

/// One tenant's lifecycle inside a scheduler run (a completed or
/// cancelled job). All times are modeled fleet seconds.
#[derive(Clone, Debug)]
pub struct TenantStat {
    /// Submission name.
    pub name: String,
    /// Tenant attribution from the submission envelope.
    pub tenant: String,
    /// When the job entered the queue.
    pub submitted_s: f64,
    /// When the job first left the queue (its first slice under
    /// preemption).
    pub started_s: f64,
    /// When the job finished (or was drained by cancellation).
    pub finished_s: f64,
    /// Queue wait: `started_s − submitted_s`.
    pub wait_s: f64,
    /// Turnaround: `finished_s − submitted_s`.
    pub turnaround_s: f64,
    /// True when the job was cancelled rather than completed.
    pub cancelled: bool,
    /// True when the job was evicted by admission control; rejected
    /// rows are excluded from the wait/turnaround aggregates.
    pub rejected: bool,
}

/// Throughput, utilization and fairness summary of one scheduler run.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Jobs completed so far (cancelled jobs not included).
    pub jobs_completed: u64,
    /// Jobs drained by cancellation.
    pub jobs_cancelled: u64,
    /// Jobs evicted by admission control (shed from the queue, plus —
    /// through [`FleetClient`](crate::FleetClient) — submissions
    /// rejected outright).
    pub jobs_rejected: u64,
    /// Jobs still queued.
    pub jobs_queued: u64,
    /// Jobs currently placed on a backend.
    pub jobs_running: u64,
    /// Simulated fleet makespan: the latest backend clock (seconds).
    pub makespan_s: f64,
    /// What the completed work would cost run back-to-back, unfused, on
    /// the reference device (device 0) — the sequential baseline.
    pub serialized_s: f64,
    /// `serialized_s / makespan_s` (1.0 when nothing ran).
    pub speedup_vs_serial: f64,
    /// Busy seconds per device backend.
    pub device_busy_s: Vec<f64>,
    /// `device_busy_s / makespan_s` per device.
    pub device_utilization: Vec<f64>,
    /// Busy seconds per CPU worker backend.
    pub cpu_busy_s: Vec<f64>,
    /// Completed jobs per simulated second of makespan.
    pub jobs_per_sim_s: f64,
    /// Fused launches the batcher issued.
    pub fused_launches: u64,
    /// Launches saved versus one-launch-per-lane (the amortization win).
    pub launches_saved: u64,
    /// Assignments preempted at a quantum boundary (0 when
    /// `quantum_iters` is off).
    pub preemptions: u64,
    /// Job-iterations executed across every backend step (each member of
    /// a fused group counts one per fused launch) — the denominator of
    /// the bytes-moved-per-iteration headline.
    pub iterations_executed: u64,
    /// Cumulative stream-schedule makespan actually charged by device
    /// steps (seconds): per-iteration launches priced breadth-first
    /// under each device's engine layout.
    pub stream_makespan_s: f64,
    /// What the same device operations would cost executed back-to-back
    /// on one queue — the synchronous baseline the stream makespan is
    /// measured against. Equal to [`stream_makespan_s`](Self::stream_makespan_s)
    /// on single-engine (GT200) layouts.
    pub stream_serialized_s: f64,
    /// Multi-iteration stream spans priced by fused device steps (see
    /// [`SchedulerConfig::span_iters`](crate::SchedulerConfig::span_iters)).
    /// One per fused assignment step; 0 when nothing fused.
    pub spans: u64,
    /// Iterations executed inside those spans (per group, not per
    /// member) — `span_iterations / spans` is the mean span length the
    /// fleet actually achieved after quantum, budget and retirement
    /// caps.
    pub span_iterations: u64,
    /// Kernel-launch overhead amortized away by persistent-kernel spans
    /// (seconds; nonzero only under
    /// [`LaunchMode::PersistentSpan`](lnls_gpu_sim::LaunchMode)).
    pub launch_overhead_saved_s: f64,
    /// Auto-checkpoints written (see
    /// [`SchedulerConfig::autosave_every_ticks`](crate::SchedulerConfig::autosave_every_ticks)).
    pub autosaves: u64,
    /// Worst queue wait over finished tenants — the headline fairness
    /// number preemption exists to lower.
    pub max_wait_s: f64,
    /// Mean queue wait over finished tenants.
    pub mean_wait_s: f64,
    /// Worst turnaround over finished tenants.
    pub max_turnaround_s: f64,
    /// Mean turnaround over finished tenants.
    pub mean_turnaround_s: f64,
    /// Median queue wait over finished tenants (nearest rank).
    pub wait_p50_s: f64,
    /// 95th-percentile queue wait — the tail-latency headline the
    /// workload scenarios regress on.
    pub wait_p95_s: f64,
    /// 99th-percentile queue wait.
    pub wait_p99_s: f64,
    /// Median turnaround over finished tenants.
    pub turnaround_p50_s: f64,
    /// 95th-percentile turnaround.
    pub turnaround_p95_s: f64,
    /// 99th-percentile turnaround.
    pub turnaround_p99_s: f64,
    /// Per-tenant lifecycle stats, in job-id order.
    pub tenant_stats: Vec<TenantStat>,
    /// Tick-by-tick fleet time series (queue depth, running jobs,
    /// cumulative outcomes, device busy time), present when
    /// [`SchedulerConfig::telemetry_every_ticks`](crate::SchedulerConfig::telemetry_every_ticks)
    /// was set.
    pub telemetry: Option<Telemetry>,
    /// Sum of the device ledgers (kernels, overhead, transfers, and the
    /// counterfactual sequential-host column). CPU-worker execution time
    /// is reported separately in [`cpu_busy_s`](Self::cpu_busy_s) — it is
    /// real busy time, not a baseline, so it never mixes into this book.
    pub fleet_book: TimeBook,
}

impl FleetReport {
    /// Rejections/sheds per tenant — who admission control said *no* to
    /// (outright bounces never got a report row, so they are not here;
    /// [`jobs_rejected`](Self::jobs_rejected) counts both).
    pub fn rejections_by_tenant(&self) -> BTreeMap<String, u64> {
        let mut by_tenant = BTreeMap::new();
        for t in self.tenant_stats.iter().filter(|t| t.rejected) {
            *by_tenant.entry(t.tenant.clone()).or_insert(0) += 1;
        }
        by_tenant
    }

    /// Stream-level overlap win of the device launches: serialized cost
    /// over charged makespan (≥ 1; exactly 1 when nothing overlapped —
    /// single-engine layouts, or nothing ran on a device).
    pub fn stream_overlap_factor(&self) -> f64 {
        if self.stream_makespan_s > 0.0 {
            self.stream_serialized_s / self.stream_makespan_s
        } else {
            1.0
        }
    }

    /// Mean bytes uploaded per executed job-iteration (0 when nothing
    /// ran on a device).
    pub fn h2d_bytes_per_iteration(&self) -> f64 {
        if self.iterations_executed > 0 {
            self.fleet_book.bytes_h2d as f64 / self.iterations_executed as f64
        } else {
            0.0
        }
    }

    /// Mean bytes read back per executed job-iteration — the PCIe
    /// headline [`SelectionMode::DeviceArgmin`](lnls_gpu_sim::SelectionMode)
    /// exists to shrink (0 when nothing ran on a device).
    pub fn d2h_bytes_per_iteration(&self) -> f64 {
        if self.iterations_executed > 0 {
            self.fleet_book.bytes_d2h as f64 / self.iterations_executed as f64
        } else {
            0.0
        }
    }

    /// A [`MetricsRegistry`](crate::MetricsRegistry) derived from the
    /// finished report itself: outcome counters from the `jobs_*`
    /// fields plus preemptions, and wait/turnaround histograms rebuilt
    /// from the non-rejected [`tenant_stats`](Self::tenant_stats) rows.
    /// Useful for exporting Prometheus text from a run that did not
    /// attach a live registry; live registries additionally carry
    /// placement, batching, byte, and quantum series the report does
    /// not retain.
    pub fn metrics(&self) -> crate::MetricsRegistry {
        let mut m = crate::MetricsRegistry::new();
        m.inc_by("fleet_jobs_completed_total", self.jobs_completed);
        m.inc_by("fleet_jobs_cancelled_total", self.jobs_cancelled);
        m.inc_by("fleet_jobs_rejected_total", self.jobs_rejected);
        m.inc_by("fleet_preemptions_total", self.preemptions);
        m.inc_by("fleet_iterations_total", self.iterations_executed);
        m.set_gauge("fleet_queue_depth", self.jobs_queued as f64);
        m.set_gauge("fleet_jobs_running", self.jobs_running as f64);
        for t in self.tenant_stats.iter().filter(|t| !t.rejected) {
            m.observe("fleet_wait_seconds", t.wait_s);
            m.observe("fleet_turnaround_seconds", t.turnaround_s);
        }
        m
    }

    /// Mean iterations per fused stream span (1.0 is the legacy
    /// one-iteration-per-tick contract; 0.0 when nothing fused).
    pub fn mean_span_iterations(&self) -> f64 {
        if self.spans > 0 {
            self.span_iterations as f64 / self.spans as f64
        } else {
            0.0
        }
    }

    /// Fraction of the makespan the average device was busy (0.0 with
    /// no devices or no makespan) — the utilization headline the bench
    /// summaries track.
    pub fn mean_device_utilization(&self) -> f64 {
        if self.device_utilization.is_empty() {
            return 0.0;
        }
        self.device_utilization.iter().sum::<f64>() / self.device_utilization.len() as f64
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} done / {} cancelled / {} rejected / {} running / {} queued",
            self.jobs_completed,
            self.jobs_cancelled,
            self.jobs_rejected,
            self.jobs_running,
            self.jobs_queued
        )?;
        writeln!(
            f,
            "makespan {:.6}s | serialized {:.6}s | speedup ×{:.2} | {:.1} jobs/s",
            self.makespan_s, self.serialized_s, self.speedup_vs_serial, self.jobs_per_sim_s
        )?;
        writeln!(
            f,
            "wait max {:.6}s mean {:.6}s | turnaround max {:.6}s mean {:.6}s | {} preemptions",
            self.max_wait_s,
            self.mean_wait_s,
            self.max_turnaround_s,
            self.mean_turnaround_s,
            self.preemptions
        )?;
        writeln!(
            f,
            "wait p50/p95/p99 {:.6}/{:.6}/{:.6}s | turnaround p50/p95/p99 {:.6}/{:.6}/{:.6}s",
            self.wait_p50_s,
            self.wait_p95_s,
            self.wait_p99_s,
            self.turnaround_p50_s,
            self.turnaround_p95_s,
            self.turnaround_p99_s
        )?;
        let rejections = self.rejections_by_tenant();
        if !rejections.is_empty() {
            let rows: Vec<String> = rejections
                .iter()
                .map(|(tenant, n)| {
                    let name = if tenant.is_empty() { "(unattributed)" } else { tenant };
                    format!("{name}: {n}")
                })
                .collect();
            writeln!(f, "rejected by tenant: {}", rows.join(", "))?;
        }
        if let Some(t) = self.telemetry.as_ref().filter(|t| !t.is_empty()) {
            writeln!(f, "backpressure: {t}")?;
        }
        for (i, (busy, util)) in self.device_busy_s.iter().zip(&self.device_utilization).enumerate()
        {
            writeln!(f, "  dev{i}: busy {busy:.6}s ({:.0}%)", util * 100.0)?;
        }
        for (i, busy) in self.cpu_busy_s.iter().enumerate() {
            writeln!(f, "  cpu{i}: busy {busy:.6}s")?;
        }
        writeln!(
            f,
            "  batching: {} fused launches, {} launches saved",
            self.fused_launches, self.launches_saved
        )?;
        if self.spans > 0 {
            writeln!(
                f,
                "  spans: {} spans, {:.2} iterations/span, {:.9}s launch overhead amortized",
                self.spans,
                self.mean_span_iterations(),
                self.launch_overhead_saved_s
            )?;
        }
        write!(
            f,
            "  pcie: {:.0} B up / {:.0} B down per iteration ({} iterations) | stream overlap ×{:.3}",
            self.h2d_bytes_per_iteration(),
            self.d2h_bytes_per_iteration(),
            self.iterations_executed,
            self.stream_overlap_factor()
        )
    }
}
