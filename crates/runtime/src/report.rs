//! Fleet-level reporting.

use lnls_gpu_sim::TimeBook;
use std::fmt;

/// Throughput and utilization summary of one scheduler run.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Jobs completed so far.
    pub jobs_completed: u64,
    /// Jobs still queued.
    pub jobs_queued: u64,
    /// Jobs currently placed on a backend.
    pub jobs_running: u64,
    /// Simulated fleet makespan: the latest backend clock (seconds).
    pub makespan_s: f64,
    /// What the completed work would cost run back-to-back, unfused, on
    /// the reference device (device 0) — the sequential baseline.
    pub serialized_s: f64,
    /// `serialized_s / makespan_s` (1.0 when nothing ran).
    pub speedup_vs_serial: f64,
    /// Busy seconds per device backend.
    pub device_busy_s: Vec<f64>,
    /// `device_busy_s / makespan_s` per device.
    pub device_utilization: Vec<f64>,
    /// Busy seconds per CPU worker backend.
    pub cpu_busy_s: Vec<f64>,
    /// Completed jobs per simulated second of makespan.
    pub jobs_per_sim_s: f64,
    /// Fused launches the batcher issued.
    pub fused_launches: u64,
    /// Launches saved versus one-launch-per-lane (the amortization win).
    pub launches_saved: u64,
    /// Sum of the device ledgers (kernels, overhead, transfers, and the
    /// counterfactual sequential-host column). CPU-worker execution time
    /// is reported separately in [`cpu_busy_s`](Self::cpu_busy_s) — it is
    /// real busy time, not a baseline, so it never mixes into this book.
    pub fleet_book: TimeBook,
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} done / {} running / {} queued",
            self.jobs_completed, self.jobs_running, self.jobs_queued
        )?;
        writeln!(
            f,
            "makespan {:.6}s | serialized {:.6}s | speedup ×{:.2} | {:.1} jobs/s",
            self.makespan_s, self.serialized_s, self.speedup_vs_serial, self.jobs_per_sim_s
        )?;
        for (i, (busy, util)) in self.device_busy_s.iter().zip(&self.device_utilization).enumerate()
        {
            writeln!(f, "  dev{i}: busy {busy:.6}s ({:.0}%)", util * 100.0)?;
        }
        for (i, busy) in self.cpu_busy_s.iter().enumerate() {
            writeln!(f, "  cpu{i}: busy {busy:.6}s")?;
        }
        write!(
            f,
            "  batching: {} fused launches, {} launches saved",
            self.fused_launches, self.launches_saved
        )
    }
}
