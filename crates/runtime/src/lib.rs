//! # lnls-runtime — a batched multi-tenant search scheduler
//!
//! The paper's protocol never runs *one* search: every configuration is
//! 50 independent tries, and its §V perspective spreads work across
//! devices. This crate turns the workspace's single-search machinery
//! into a service-shaped subsystem:
//!
//! * **Jobs** ([`BinaryJob`], [`QapJobSpec`]) describe a search —
//!   problem + neighborhood + driver config + initial solution +
//!   priority — and submission returns a typed [`JobHandle`] for
//!   polling ([`Scheduler::status`]) or awaiting
//!   ([`Scheduler::await_report`]).
//! * The [`Scheduler`] owns a [`MultiDevice`](lnls_gpu_sim::MultiDevice)
//!   fleet plus CPU worker backends and places queued jobs under a
//!   [`PlacePolicy`] (round-robin or least-loaded), charging modeled
//!   wall-clock through the gpu-sim cost models so fleet makespan and
//!   per-device utilization come out of one consistent ledger.
//! * **Launch batching**: queued jobs sharing a problem family and
//!   neighborhood fuse their per-iteration evaluations into one larger
//!   simulated launch (driven by
//!   [`BatchedExplorer`](lnls_core::BatchedExplorer)), amortizing launch
//!   overhead and PCIe latency — the paper's large-neighborhood effect
//!   applied across tenants instead of within one search.
//! * **Checkpoint/resume** ([`Scheduler::checkpoint`],
//!   [`Scheduler::restore`]) snapshots queued *and in-flight* jobs
//!   (mid-search cursor state included); a restored fleet continues
//!   deterministically.
//! * [`FleetReport`] summarizes throughput: makespan, busy fractions,
//!   jobs per simulated second, and speedup versus the serialized
//!   one-device baseline.
//!
//! Determinism is a design invariant: evaluation is functional and the
//! event loop is single-threaded over *modeled* time, so a job's result
//! is bit-for-bit the result of running the same search solo.
//!
//! ## Example
//!
//! ```
//! use lnls_runtime::{BinaryJob, Scheduler, SchedulerConfig};
//! use lnls_core::{BitString, SearchConfig, TabuSearch};
//! use lnls_gpu_sim::DeviceSpec;
//! use lnls_neighborhood::{Neighborhood, TwoHamming};
//! use lnls_problems::OneMax;
//!
//! let mut fleet = Scheduler::with_uniform_fleet(
//!     2,
//!     DeviceSpec::gtx280(),
//!     SchedulerConfig::default(),
//! );
//! let hood = TwoHamming::new(32);
//! let handles: Vec<_> = (0..6)
//!     .map(|i| {
//!         let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(i);
//!         let init = BitString::random(&mut rng, 32);
//!         let search = TabuSearch::paper(SearchConfig::budget(40).with_seed(i), hood.size());
//!         fleet.submit_binary(BinaryJob::new(
//!             format!("onemax-{i}"),
//!             OneMax::new(32),
//!             hood,
//!             search,
//!             init,
//!         ))
//!     })
//!     .collect();
//! fleet.run_until_idle();
//! let report = fleet.fleet_report();
//! assert_eq!(report.jobs_completed, 6);
//! assert!(report.speedup_vs_serial > 1.0);
//! for h in &handles {
//!     assert!(fleet.report(h).expect("completed").outcome.iterations() > 0);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod exec;
mod job;
mod report;
mod scheduler;

pub use exec::BatchKey;
pub use job::{BinaryJob, JobHandle, JobId, JobOutcome, JobReport, JobStatus, QapJobSpec};
pub use report::FleetReport;
pub use scheduler::{FleetCheckpoint, PlacePolicy, Scheduler, SchedulerConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_core::{BitString, SearchConfig, SequentialExplorer, TabuSearch};
    use lnls_gpu_sim::{DeviceSpec, MultiDevice};
    use lnls_neighborhood::{Neighborhood, TwoHamming};
    use lnls_problems::OneMax;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn onemax_job(i: u64, n: usize, iters: u64) -> BinaryJob<OneMax, TwoHamming> {
        let hood = TwoHamming::new(n);
        let mut rng = StdRng::seed_from_u64(i);
        let init = BitString::random(&mut rng, n);
        let search = TabuSearch::paper(SearchConfig::budget(iters).with_seed(i), hood.size());
        BinaryJob::new(format!("onemax-{i}"), OneMax::new(n), hood, search, init)
    }

    fn solo_result(i: u64, n: usize, iters: u64) -> lnls_core::SearchResult {
        let hood = TwoHamming::new(n);
        let mut rng = StdRng::seed_from_u64(i);
        let init = BitString::random(&mut rng, n);
        let search = TabuSearch::paper(SearchConfig::budget(iters).with_seed(i), hood.size());
        let mut ex = SequentialExplorer::new(hood);
        search.run(&OneMax::new(n), &mut ex, init)
    }

    #[test]
    fn fleet_results_are_bit_identical_to_solo_runs() {
        let mut fleet =
            Scheduler::with_uniform_fleet(2, DeviceSpec::gtx280(), SchedulerConfig::default());
        let handles: Vec<_> = (0..5).map(|i| fleet.submit_binary(onemax_job(i, 24, 30))).collect();
        fleet.run_until_idle();
        for (i, h) in handles.iter().enumerate() {
            let got = fleet.report(h).expect("done");
            let want = solo_result(i as u64, 24, 30);
            let got = got.outcome.as_binary().expect("binary job");
            assert_eq!(got.best, want.best, "job {i}");
            assert_eq!(got.best_fitness, want.best_fitness, "job {i}");
            assert_eq!(got.iterations, want.iterations, "job {i}");
            assert_eq!(got.evals, want.evals, "job {i}");
        }
    }

    #[test]
    fn batching_fuses_same_family_jobs() {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 4, ..Default::default() },
        );
        for i in 0..4 {
            fleet.submit_binary(onemax_job(i, 24, 10));
        }
        fleet.run_until_idle();
        let report = fleet.fleet_report();
        assert!(report.fused_launches > 0, "same-key jobs must fuse");
        assert!(report.launches_saved > 0);
        // 4 fused lanes on one device still beat 4 serialized solo runs.
        assert!(report.speedup_vs_serial > 1.0, "×{}", report.speedup_vs_serial);
    }

    #[test]
    fn batching_disabled_runs_solo() {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 1, ..Default::default() },
        );
        for i in 0..3 {
            fleet.submit_binary(onemax_job(i, 16, 8));
        }
        fleet.run_until_idle();
        let report = fleet.fleet_report();
        assert_eq!(report.fused_launches, 0);
        assert_eq!(report.jobs_completed, 3);
    }

    #[test]
    fn two_devices_beat_one_on_makespan() {
        let run = |devs: usize| {
            let mut fleet = Scheduler::with_uniform_fleet(
                devs,
                DeviceSpec::gtx280(),
                SchedulerConfig { max_batch: 1, ..Default::default() },
            );
            for i in 0..6 {
                fleet.submit_binary(onemax_job(i, 24, 20));
            }
            fleet.run_until_idle();
            fleet.fleet_report().makespan_s
        };
        let one = run(1);
        let two = run(2);
        assert!(two < one, "2 devices ({two}) must beat 1 ({one})");
    }

    #[test]
    fn priorities_run_first() {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 1, ..Default::default() },
        );
        let low = fleet.submit_binary(onemax_job(0, 16, 5));
        let high = fleet.submit_binary(onemax_job(1, 16, 5).with_priority(9));
        fleet.run_until_idle();
        let r_low = fleet.report(&low).unwrap();
        let r_high = fleet.report(&high).unwrap();
        assert!(
            r_high.finished_s <= r_low.started_s + 1e-12,
            "high priority must be scheduled first"
        );
    }

    #[test]
    fn status_lifecycle_and_await() {
        let mut fleet =
            Scheduler::with_uniform_fleet(1, DeviceSpec::gtx280(), SchedulerConfig::default());
        let h = fleet.submit_binary(onemax_job(3, 16, 5));
        assert_eq!(fleet.status(&h), JobStatus::Queued);
        assert!(fleet.tick());
        assert_ne!(fleet.status(&h), JobStatus::Queued, "placed after first tick");
        // 2-Hamming moves preserve ones-count parity, so the target may
        // be unreachable; completion, not success, is what's under test.
        let report = fleet.await_report(&h).outcome.clone();
        assert!(report.iterations() > 0);
        assert_eq!(fleet.status(&h), JobStatus::Done);
    }

    #[test]
    fn checkpoint_resume_is_deterministic() {
        let build = || {
            let mut fleet = Scheduler::with_uniform_fleet(
                2,
                DeviceSpec::gtx280(),
                SchedulerConfig { max_batch: 2, ..Default::default() },
            );
            for i in 0..4 {
                fleet.submit_binary(onemax_job(i, 24, 25));
            }
            fleet
        };

        // Reference: run to completion in one go.
        let mut straight = build();
        straight.run_until_idle();

        // Checkpoint mid-flight, drop the original, restore, continue.
        let mut fleet = build();
        fleet.tick();
        fleet.tick();
        let checkpoint = fleet.checkpoint();
        assert!(checkpoint.in_flight_jobs() > 0, "jobs must be captured mid-run");
        drop(fleet);
        let mut resumed = Scheduler::restore(checkpoint);
        resumed.run_until_idle();

        let a = straight.fleet_report();
        let b = resumed.fleet_report();
        assert_eq!(a.jobs_completed, b.jobs_completed);
        assert!((a.makespan_s - b.makespan_s).abs() < 1e-12);
        for (ra, rb) in straight.reports().zip(resumed.reports()) {
            let (ra, rb) = (ra.outcome.as_binary().unwrap(), rb.outcome.as_binary().unwrap());
            assert_eq!(ra.best, rb.best);
            assert_eq!(ra.best_fitness, rb.best_fitness);
            assert_eq!(ra.iterations, rb.iterations);
        }
    }

    #[test]
    fn cpu_workers_complete_jobs_identically() {
        let mut fleet = Scheduler::new(
            MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
            SchedulerConfig { cpu_workers: 2, max_batch: 1, ..Default::default() },
        );
        let handles: Vec<_> = (0..6).map(|i| fleet.submit_binary(onemax_job(i, 20, 12))).collect();
        fleet.run_until_idle();
        let report = fleet.fleet_report();
        assert_eq!(report.jobs_completed, 6);
        assert!(
            report.cpu_busy_s.iter().any(|&b| b > 0.0),
            "CPU workers must have taken jobs: {:?}",
            report.cpu_busy_s
        );
        for (i, h) in handles.iter().enumerate() {
            let got = fleet.report(h).unwrap().outcome.as_binary().unwrap().best.clone();
            assert_eq!(got, solo_result(i as u64, 20, 12).best, "job {i}");
        }
    }

    #[test]
    fn batching_does_not_starve_idle_devices() {
        // Six same-key jobs, two devices, wide max_batch: the drain cap
        // must split the key 3/3 across devices instead of fusing all
        // six onto one while the other idles (fusion amortizes overhead,
        // not kernel seconds, so parallel devices win).
        let mut fleet = Scheduler::with_uniform_fleet(
            2,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 8, ..Default::default() },
        );
        for i in 0..6 {
            fleet.submit_binary(onemax_job(i, 24, 15));
        }
        fleet.run_until_idle();
        let report = fleet.fleet_report();
        assert!(
            report.device_busy_s.iter().all(|&b| b > 0.0),
            "both devices must share the key: {:?}",
            report.device_busy_s
        );
        assert!(report.fused_launches > 0, "groups of three must still fuse");
    }

    #[test]
    fn round_robin_spreads_jobs() {
        let mut fleet = Scheduler::with_uniform_fleet(
            3,
            DeviceSpec::gtx280(),
            SchedulerConfig { policy: PlacePolicy::RoundRobin, max_batch: 1, ..Default::default() },
        );
        for i in 0..3 {
            fleet.submit_binary(onemax_job(i, 20, 10));
        }
        fleet.run_until_idle();
        let report = fleet.fleet_report();
        let used = report.device_busy_s.iter().filter(|&&b| b > 0.0).count();
        assert_eq!(used, 3, "round-robin must touch every device: {:?}", report.device_busy_s);
    }

    #[test]
    fn unknown_handle_reports_unknown() {
        let fleet =
            Scheduler::with_uniform_fleet(1, DeviceSpec::gtx280(), SchedulerConfig::default());
        let ghost = JobHandle { id: JobId(999) };
        assert_eq!(fleet.status(&ghost), JobStatus::Unknown);
    }
}
