//! # lnls-runtime — a batched multi-tenant search scheduler
//!
//! The paper's protocol never runs *one* search: every configuration is
//! 50 independent tries, and its §V perspective spreads work across
//! devices. This crate turns the workspace's single-search machinery
//! into a service-shaped subsystem:
//!
//! * **One problem-agnostic submission API**: anything implementing
//!   [`SearchJob`] — build a steppable executor, price its launches,
//!   name a persistence tag — goes through the single generic
//!   [`Scheduler::submit`]. Five workloads ship: [`BinaryJob`]
//!   (full-neighborhood tabu, fusable), [`QapJobSpec`] (robust tabu
//!   over swap moves), [`AnnealJob`] (simulated annealing with
//!   sampling-style pricing), [`LnsJob`] (destroy-and-repair large
//!   neighborhood search whose per-round repair lanes price as one
//!   fused multi-lane stream span) and [`PortfolioJob`] (a
//!   tabu/annealing/descent race over one instance that reallocates
//!   iteration budget to the leading lane at quantum boundaries, and
//!   attaches a [`PortfolioOutcome`](lnls_lns::PortfolioOutcome)
//!   detail saying where the budget went). Submission returns a
//!   `Copy`-able
//!   [`JobHandle`] for polling ([`Scheduler::status`]) or awaiting
//!   ([`Scheduler::await_report`]).
//! * **Admission control**: [`FleetClient`] fronts a scheduler with an
//!   [`AdmissionPolicy`] — global and per-tenant queue caps, reject vs.
//!   shed-lowest-priority — turning submission into
//!   `Result<JobHandle, SubmitError>`; shed jobs report
//!   [`JobStatus::Rejected`]. [`JobSpec`] envelopes add tenant
//!   attribution, name/priority overrides, iteration budgets, deadlines
//!   and a per-job checkpoint policy. A [`ConcurrencyLimiter`]
//!   optionally fronts the client with a hard in-flight bound
//!   (queued + running), shedding overload submissions with
//!   [`SubmitError::Overloaded`] instead of queueing without bound —
//!   the backstop the parallel service runtime's closed-loop clients
//!   retry against.
//! * The [`Scheduler`] owns a [`MultiDevice`](lnls_gpu_sim::MultiDevice)
//!   fleet plus CPU worker backends and places queued jobs under a
//!   [`PlacePolicy`] (round-robin or least-loaded), charging modeled
//!   wall-clock through the gpu-sim cost models so fleet makespan and
//!   per-device utilization come out of one consistent ledger.
//! * **Launch batching with stream-overlapped pricing**: queued jobs
//!   sharing a problem family and neighborhood fuse their per-iteration
//!   evaluations into one larger simulated launch (driven by
//!   [`BatchedExplorer`](lnls_core::BatchedExplorer)), amortizing launch
//!   overhead — the paper's large-neighborhood effect applied across
//!   tenants instead of within one search. Each fused iteration is
//!   priced as a breadth-first stream schedule under the device's engine
//!   layout ([`DeviceSpec::engines`](lnls_gpu_sim::DeviceSpec)): on the
//!   paper's GT200 the makespan equals the serial sum, while multi-engine
//!   layouts overlap per-lane copies and the fleet clock charges the
//!   (smaller) makespan. [`FleetReport::stream_overlap_factor`] reports
//!   the win.
//! * **On-device argmin selection**: [`SchedulerConfig::selection`]
//!   (overridable per job via [`JobSpec::with_selection`]) prices the
//!   readback either as the paper's full `m·8`-byte fitness download
//!   ([`SelectionMode::HostArgmin`]) or as one extra tree-reduction
//!   launch plus a single packed `(fitness, index)` record per lane
//!   ([`SelectionMode::DeviceArgmin`]) — pricing-only, results
//!   bit-identical; [`FleetReport::d2h_bytes_per_iteration`] shows the
//!   traffic collapse.
//! * **Preemption & fair share**: every job — binary tabu and QAP robust
//!   tabu alike — is a resumable [`SearchCursor`](lnls_core::SearchCursor),
//!   so with [`SchedulerConfig::quantum_iters`] set, assignments become
//!   time slices served by deficit round-robin weighted by `priority + 1`.
//!   A long QAP run no longer starves short tenants, and results are
//!   provably invariant under any quantum (the preemption proptest
//!   sweeps it).
//! * **Cancellation**: [`Scheduler::cancel`] drains a queued or running
//!   job at the next quantum boundary; its report is marked
//!   [`cancelled`](JobReport::cancelled) and carries the best-so-far.
//! * **Checkpoint/resume** ([`Scheduler::checkpoint`],
//!   [`Scheduler::restore`]) snapshots queued *and in-flight* jobs
//!   (mid-search cursor state included); a restored fleet continues
//!   deterministically. [`FleetCheckpoint::save`] /
//!   [`FleetCheckpoint::load`] round-trip the snapshot through a
//!   hand-rolled byte format (no serde offline) so fleets survive
//!   process restarts; [`JobRegistry`] maps persisted job tags back to
//!   concrete types through the same [`JobCodec`] trait family
//!   submission uses. [`SchedulerConfig::autosave_every_ticks`] writes
//!   rotating auto-checkpoints so a crashed fleet resumes from its last
//!   snapshot.
//! * [`FleetReport`] summarizes throughput *and fairness*: makespan,
//!   busy fractions, jobs per simulated second, speedup versus the
//!   serialized one-device baseline, preemption counts, per-tenant
//!   wait/turnaround stats ([`TenantStat`]) and p50/p95/p99 wait and
//!   turnaround percentiles.
//! * **Telemetry over time**: with
//!   [`SchedulerConfig::telemetry_every_ticks`] set, the tick loop
//!   records a [`TickSample`] series — queue depth, running jobs,
//!   cumulative completions/cancellations/rejections, per-device busy
//!   time — surfaced through [`Scheduler::telemetry`] and
//!   [`FleetReport::telemetry`]; this is the backpressure history the
//!   `lnls-workload` scenario driver plots and regresses on.
//! * **Structured observability** ([`observe`](crate::EventSink)): a
//!   typed [`FleetEvent`] stream (submission through completion, quantum
//!   by quantum) emitted behind a pluggable [`EventSink`]
//!   ([`RingSink`] in memory, [`JsonlSink`] to disk), a
//!   [`MetricsRegistry`] of counters/gauges/log2 histograms with a
//!   Prometheus-text renderer, per-tenant event analytics
//!   ([`tenant_summaries`]) and Chrome trace-event export
//!   ([`chrome_trace`]). Strictly observational: zero-cost when nothing
//!   is attached, never checkpointed, results bit-identical either way.
//!
//! Determinism is a design invariant: evaluation is functional and the
//! event loop is single-threaded over *modeled* time, so a job's result
//! is bit-for-bit the result of running the same search solo.
//!
//! ## Example
//!
//! One generic `submit` serves every workload — tabu, annealing and QAP
//! jobs below all flow through the same entry point:
//!
//! ```
//! use lnls_runtime::{AnnealJob, BinaryJob, Scheduler, SchedulerConfig};
//! use lnls_core::{BitString, SearchConfig, SimulatedAnnealing, TabuSearch};
//! use lnls_gpu_sim::DeviceSpec;
//! use lnls_neighborhood::{Neighborhood, TwoHamming};
//! use lnls_problems::OneMax;
//!
//! let mut fleet = Scheduler::with_uniform_fleet(
//!     2,
//!     DeviceSpec::gtx280(),
//!     SchedulerConfig::default(),
//! );
//! let hood = TwoHamming::new(32);
//! let mut handles = Vec::new();
//! for i in 0..4u64 {
//!     let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(i);
//!     let init = BitString::random(&mut rng, 32);
//!     let search = TabuSearch::paper(SearchConfig::budget(40).with_seed(i), hood.size());
//!     handles.push(fleet.submit(BinaryJob::new(
//!         format!("tabu-{i}"),
//!         OneMax::new(32),
//!         hood,
//!         search,
//!         init,
//!     )));
//! }
//! let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
//! let init = BitString::random(&mut rng, 32);
//! let sa = SimulatedAnnealing::new(SearchConfig::budget(200).with_seed(7), hood, 1.5);
//! handles.push(fleet.submit(AnnealJob::new("sa-0", OneMax::new(32), sa, init)));
//! fleet.run_until_idle();
//! let report = fleet.fleet_report();
//! assert_eq!(report.jobs_completed, 5);
//! assert!(report.speedup_vs_serial > 1.0);
//! for h in handles {
//!     assert!(fleet.report(h).expect("completed").outcome.iterations() > 0);
//! }
//! ```
//!
//! ## Migrating from `submit_binary` / `submit_qap`
//!
//! Earlier revisions exposed one submission method per workload. Both
//! are replaced by the generic path — the job types are unchanged:
//!
//! ```text
//! fleet.submit_binary(BinaryJob::new(..))  →  fleet.submit(BinaryJob::new(..))
//! fleet.submit_qap(QapJobSpec::new(..))    →  fleet.submit(QapJobSpec::new(..))
//! ```
//!
//! Handle-taking methods now take handles by value (they are `Copy`):
//! `fleet.status(h)`, `fleet.report(h)`, `fleet.cancel(h)`,
//! `fleet.await_report(h)`. Registry registration is generic too:
//! `registry.register_tabu::<P, N>()` became
//! `registry.register::<BinaryJob<P, N>>()`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
mod delta;
mod exec;
mod job;
mod lns;
mod observe;
mod persist;
mod report;
mod scheduler;
mod submit;
mod telemetry;

pub use client::{AdmissionPolicy, ConcurrencyLimiter, FleetClient, SubmitError};
pub use delta::{CheckpointError, CheckpointStore, DeltaCheckpointer, SnapshotKind, SnapshotStats};
pub use exec::{BatchKey, JobExec, StepRun};
pub use job::{
    AnnealJob, BinaryJob, JobHandle, JobId, JobOutcome, JobReport, JobStatus, QapJobSpec,
};
pub use lnls_gpu_sim::{LaunchMode, SelectionMode};
pub use lns::{LnsJob, PortfolioJob};
pub use observe::{
    chrome_trace, tenant_summaries, EventRecord, EventSink, FleetEvent, Histogram, JsonlSink,
    MetricsRegistry, RejectReason, RingSink, TenantSummary,
};
pub use persist::JobRegistry;
pub use report::{FleetReport, TenantStat};
pub use scheduler::{FleetCheckpoint, PlacePolicy, Scheduler, SchedulerConfig, StolenJob};
pub use submit::{JobCodec, JobSpec, SearchJob, SubmitCtx};
pub use telemetry::{percentile, percentile_sorted, Telemetry, TickSample};

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_core::{BitString, SearchConfig, SequentialExplorer, TabuSearch};
    use lnls_gpu_sim::{DeviceSpec, MultiDevice};
    use lnls_neighborhood::{Neighborhood, TwoHamming};
    use lnls_problems::OneMax;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn onemax_job(i: u64, n: usize, iters: u64) -> BinaryJob<OneMax, TwoHamming> {
        let hood = TwoHamming::new(n);
        let mut rng = StdRng::seed_from_u64(i);
        let init = BitString::random(&mut rng, n);
        let search = TabuSearch::paper(SearchConfig::budget(iters).with_seed(i), hood.size());
        BinaryJob::new(format!("onemax-{i}"), OneMax::new(n), hood, search, init)
    }

    fn solo_result(i: u64, n: usize, iters: u64) -> lnls_core::SearchResult {
        let hood = TwoHamming::new(n);
        let mut rng = StdRng::seed_from_u64(i);
        let init = BitString::random(&mut rng, n);
        let search = TabuSearch::paper(SearchConfig::budget(iters).with_seed(i), hood.size());
        let mut ex = SequentialExplorer::new(hood);
        search.run(&OneMax::new(n), &mut ex, init)
    }

    #[test]
    fn fleet_results_are_bit_identical_to_solo_runs() {
        let mut fleet =
            Scheduler::with_uniform_fleet(2, DeviceSpec::gtx280(), SchedulerConfig::default());
        let handles: Vec<_> = (0..5).map(|i| fleet.submit(onemax_job(i, 24, 30))).collect();
        fleet.run_until_idle();
        for (i, h) in handles.iter().enumerate() {
            let got = fleet.report(*h).expect("done");
            let want = solo_result(i as u64, 24, 30);
            let got = got.outcome.as_binary().expect("binary job");
            assert_eq!(got.best, want.best, "job {i}");
            assert_eq!(got.best_fitness, want.best_fitness, "job {i}");
            assert_eq!(got.iterations, want.iterations, "job {i}");
            assert_eq!(got.evals, want.evals, "job {i}");
        }
    }

    /// The parallel shard runtime hands whole schedulers (and the
    /// clients wrapping them) to worker threads — compile-time pin.
    #[test]
    fn schedulers_and_clients_are_send() {
        fn is_send<T: Send>() {}
        is_send::<Scheduler>();
        is_send::<FleetClient>();
        is_send::<Box<dyn EventSink>>();
    }

    #[test]
    fn concurrency_limiter_sheds_above_the_inflight_bound() {
        let fleet =
            Scheduler::with_uniform_fleet(1, DeviceSpec::gtx280(), SchedulerConfig::default());
        let mut client = FleetClient::new(fleet, AdmissionPolicy::unbounded());
        client.set_inflight_limit(Some(2));
        let a = client.submit(onemax_job(0, 16, 10)).expect("under the limit");
        let _b = client.submit(onemax_job(1, 16, 10)).expect("under the limit");
        match client.submit(onemax_job(2, 16, 10)) {
            Err(SubmitError::Overloaded { inflight, limit }) => {
                assert_eq!((inflight, limit), (2, 2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(client.limiter().expect("installed").sheds(), 1);
        assert_eq!(client.rejected_submissions(), 1);

        // Draining the fleet frees capacity: the limiter admits again.
        client.run_until_idle();
        assert!(client.report(a).is_some());
        client.submit(onemax_job(3, 16, 10)).expect("capacity is back");
        client.run_until_idle();
        assert_eq!(client.fleet_report().jobs_rejected, 1, "the shed rides into the report");

        // Clearing the limit removes the bound entirely.
        client.set_inflight_limit(None);
        for i in 10..20 {
            client.submit(onemax_job(i, 16, 10)).expect("unbounded again");
        }
    }

    #[test]
    fn batching_fuses_same_family_jobs() {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 4, ..Default::default() },
        );
        for i in 0..4 {
            fleet.submit(onemax_job(i, 24, 10));
        }
        fleet.run_until_idle();
        let report = fleet.fleet_report();
        assert!(report.fused_launches > 0, "same-key jobs must fuse");
        assert!(report.launches_saved > 0);
        // 4 fused lanes on one device still beat 4 serialized solo runs.
        assert!(report.speedup_vs_serial > 1.0, "×{}", report.speedup_vs_serial);
    }

    #[test]
    fn batching_disabled_runs_solo() {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 1, ..Default::default() },
        );
        for i in 0..3 {
            fleet.submit(onemax_job(i, 16, 8));
        }
        fleet.run_until_idle();
        let report = fleet.fleet_report();
        assert_eq!(report.fused_launches, 0);
        assert_eq!(report.jobs_completed, 3);
    }

    #[test]
    fn two_devices_beat_one_on_makespan() {
        let run = |devs: usize| {
            let mut fleet = Scheduler::with_uniform_fleet(
                devs,
                DeviceSpec::gtx280(),
                SchedulerConfig { max_batch: 1, ..Default::default() },
            );
            for i in 0..6 {
                fleet.submit(onemax_job(i, 24, 20));
            }
            fleet.run_until_idle();
            fleet.fleet_report().makespan_s
        };
        let one = run(1);
        let two = run(2);
        assert!(two < one, "2 devices ({two}) must beat 1 ({one})");
    }

    #[test]
    fn priorities_run_first() {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 1, ..Default::default() },
        );
        let low = fleet.submit(onemax_job(0, 16, 5));
        let high = fleet.submit(onemax_job(1, 16, 5).with_priority(9));
        fleet.run_until_idle();
        let r_low = fleet.report(low).unwrap();
        let r_high = fleet.report(high).unwrap();
        assert!(
            r_high.finished_s <= r_low.started_s + 1e-12,
            "high priority must be scheduled first"
        );
    }

    #[test]
    fn status_lifecycle_and_await() {
        let mut fleet =
            Scheduler::with_uniform_fleet(1, DeviceSpec::gtx280(), SchedulerConfig::default());
        let h = fleet.submit(onemax_job(3, 16, 5));
        assert_eq!(fleet.status(h), JobStatus::Queued);
        assert!(fleet.tick());
        assert_ne!(fleet.status(h), JobStatus::Queued, "placed after first tick");
        // 2-Hamming moves preserve ones-count parity, so the target may
        // be unreachable; completion, not success, is what's under test.
        let report = fleet.await_report(h).outcome.clone();
        assert!(report.iterations() > 0);
        assert_eq!(fleet.status(h), JobStatus::Done);
    }

    #[test]
    fn checkpoint_resume_is_deterministic() {
        let build = || {
            let mut fleet = Scheduler::with_uniform_fleet(
                2,
                DeviceSpec::gtx280(),
                SchedulerConfig { max_batch: 2, ..Default::default() },
            );
            for i in 0..4 {
                fleet.submit(onemax_job(i, 24, 25));
            }
            fleet
        };

        // Reference: run to completion in one go.
        let mut straight = build();
        straight.run_until_idle();

        // Checkpoint mid-flight, drop the original, restore, continue.
        let mut fleet = build();
        fleet.tick();
        fleet.tick();
        let checkpoint = fleet.checkpoint();
        assert!(checkpoint.in_flight_jobs() > 0, "jobs must be captured mid-run");
        drop(fleet);
        let mut resumed = Scheduler::restore(checkpoint);
        resumed.run_until_idle();

        let a = straight.fleet_report();
        let b = resumed.fleet_report();
        assert_eq!(a.jobs_completed, b.jobs_completed);
        assert!((a.makespan_s - b.makespan_s).abs() < 1e-12);
        for (ra, rb) in straight.reports().zip(resumed.reports()) {
            let (ra, rb) = (ra.outcome.as_binary().unwrap(), rb.outcome.as_binary().unwrap());
            assert_eq!(ra.best, rb.best);
            assert_eq!(ra.best_fitness, rb.best_fitness);
            assert_eq!(ra.iterations, rb.iterations);
        }
    }

    #[test]
    fn cpu_workers_complete_jobs_identically() {
        let mut fleet = Scheduler::new(
            MultiDevice::new_uniform(1, DeviceSpec::gtx280()),
            SchedulerConfig { cpu_workers: 2, max_batch: 1, ..Default::default() },
        );
        let handles: Vec<_> = (0..6).map(|i| fleet.submit(onemax_job(i, 20, 12))).collect();
        fleet.run_until_idle();
        let report = fleet.fleet_report();
        assert_eq!(report.jobs_completed, 6);
        assert!(
            report.cpu_busy_s.iter().any(|&b| b > 0.0),
            "CPU workers must have taken jobs: {:?}",
            report.cpu_busy_s
        );
        for (i, h) in handles.iter().enumerate() {
            let got = fleet.report(*h).unwrap().outcome.as_binary().unwrap().best.clone();
            assert_eq!(got, solo_result(i as u64, 20, 12).best, "job {i}");
        }
    }

    #[test]
    fn batching_does_not_starve_idle_devices() {
        // Six same-key jobs, two devices, wide max_batch: the drain cap
        // must split the key 3/3 across devices instead of fusing all
        // six onto one while the other idles (fusion amortizes overhead,
        // not kernel seconds, so parallel devices win).
        let mut fleet = Scheduler::with_uniform_fleet(
            2,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 8, ..Default::default() },
        );
        for i in 0..6 {
            fleet.submit(onemax_job(i, 24, 15));
        }
        fleet.run_until_idle();
        let report = fleet.fleet_report();
        assert!(
            report.device_busy_s.iter().all(|&b| b > 0.0),
            "both devices must share the key: {:?}",
            report.device_busy_s
        );
        assert!(report.fused_launches > 0, "groups of three must still fuse");
    }

    #[test]
    fn round_robin_spreads_jobs() {
        let mut fleet = Scheduler::with_uniform_fleet(
            3,
            DeviceSpec::gtx280(),
            SchedulerConfig { policy: PlacePolicy::RoundRobin, max_batch: 1, ..Default::default() },
        );
        for i in 0..3 {
            fleet.submit(onemax_job(i, 20, 10));
        }
        fleet.run_until_idle();
        let report = fleet.fleet_report();
        let used = report.device_busy_s.iter().filter(|&&b| b > 0.0).count();
        assert_eq!(used, 3, "round-robin must touch every device: {:?}", report.device_busy_s);
    }

    #[test]
    fn telemetry_records_backpressure_series() {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig {
                max_batch: 1,
                quantum_iters: Some(4),
                telemetry_every_ticks: Some(1),
                ..Default::default()
            },
        );
        for i in 0..5 {
            fleet.submit(onemax_job(i, 24, 20));
        }
        fleet.run_until_idle();
        let series = fleet.telemetry().expect("telemetry enabled");
        assert!(!series.is_empty());
        assert!(series.max_queue_depth() >= 3, "4 jobs must have queued behind the first");
        let last = series.samples().last().unwrap();
        assert_eq!(last.completed, 5);
        assert_eq!(last.queue_depth, 0);
        assert_eq!(last.device_busy_s.len(), 1);

        let report = fleet.fleet_report();
        let embedded = report.telemetry.as_ref().expect("report embeds the series");
        assert_eq!(embedded.samples().len(), series.samples().len());
        assert!(report.wait_p50_s <= report.wait_p95_s);
        assert!(report.wait_p95_s <= report.wait_p99_s);
        assert!(report.wait_p99_s <= report.max_wait_s + 1e-12);
        assert!(report.turnaround_p50_s <= report.turnaround_p99_s);
        assert!(report.turnaround_p99_s <= report.max_turnaround_s + 1e-12);
        // The Display summary mentions the backpressure line.
        assert!(report.to_string().contains("backpressure: queue depth max"));
    }

    #[test]
    fn resumed_client_counts_restored_in_flight_jobs_against_caps() {
        // Capture jobs *in flight* (a fused group stays active across
        // ticks), restore, and verify the resumed client's admission
        // bookkeeping sees them once preemption returns them to the
        // queue — not just the jobs that were queued at the snapshot.
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 2, quantum_iters: Some(4), ..Default::default() },
        );
        fleet.submit_spec(JobSpec::new(onemax_job(0, 24, 40)).for_tenant("t"));
        fleet.submit_spec(JobSpec::new(onemax_job(1, 24, 40)).for_tenant("t"));
        fleet.tick();
        let checkpoint = fleet.checkpoint();
        assert_eq!(checkpoint.in_flight_jobs(), 2, "the fused pair must be captured mid-run");
        drop(fleet);

        let mut client =
            FleetClient::resume(Scheduler::restore(checkpoint), AdmissionPolicy::queue_cap(3), 0);
        client
            .submit_spec(JobSpec::new(onemax_job(2, 16, 10)).for_tenant("t"))
            .expect("under the cap");
        // Tick until the restored group is preempted back into the queue
        // behind the new submission.
        while client.scheduler().queued_len() < 3 {
            assert!(client.tick(), "fleet must keep progressing toward the preemption");
        }
        let overflow = client.submit_spec(JobSpec::new(onemax_job(3, 16, 10)).for_tenant("t"));
        assert!(
            overflow.is_err(),
            "restored in-flight jobs must count against the queue cap once requeued"
        );
        client.run_until_idle();
        assert_eq!(client.fleet_report().jobs_completed, 3);
    }

    #[test]
    fn telemetry_off_by_default() {
        let mut fleet =
            Scheduler::with_uniform_fleet(1, DeviceSpec::gtx280(), SchedulerConfig::default());
        fleet.submit(onemax_job(0, 16, 5));
        fleet.run_until_idle();
        assert!(fleet.telemetry().is_none());
        assert!(fleet.fleet_report().telemetry.is_none());
    }

    #[test]
    fn unknown_handle_reports_unknown() {
        let fleet =
            Scheduler::with_uniform_fleet(1, DeviceSpec::gtx280(), SchedulerConfig::default());
        let ghost = JobHandle { id: JobId(999) };
        assert_eq!(fleet.status(ghost), JobStatus::Unknown);
    }

    // -- preemption / fair share --------------------------------------

    fn qap_spec(seed: u64, n: usize, iters: u64) -> QapJobSpec {
        use lnls_qap::{Permutation, QapInstance, RtsConfig};
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = QapInstance::random_uniform(&mut rng, n);
        let init = Permutation::random(&mut rng, n);
        QapJobSpec::new(format!("qap-{seed}"), inst, RtsConfig::budget(iters).with_seed(seed), init)
    }

    /// The acceptance scenario of the preemption work: a long QAP job
    /// ahead of short OneMax tenants on one device. Results must be
    /// bit-identical with and without a quantum; the quantum must cut
    /// the worst tenant wait.
    #[test]
    fn preemption_preserves_results_and_cuts_waits() {
        let run = |quantum: Option<u64>| {
            let mut fleet = Scheduler::with_uniform_fleet(
                1,
                DeviceSpec::gtx280(),
                SchedulerConfig { max_batch: 1, quantum_iters: quantum, ..Default::default() },
            );
            let qap = fleet.submit(qap_spec(1, 12, 300));
            let onemax: Vec<_> = (0..4).map(|i| fleet.submit(onemax_job(i, 24, 25))).collect();
            fleet.run_until_idle();
            let outcomes: Vec<(i64, u64)> = std::iter::once(&qap)
                .chain(&onemax)
                .map(|h| {
                    let o = &fleet.report(*h).unwrap().outcome;
                    (o.best_fitness(), o.iterations())
                })
                .collect();
            (outcomes, fleet.fleet_report())
        };

        let (plain_outcomes, plain) = run(None);
        let (sliced_outcomes, sliced) = run(Some(8));
        assert_eq!(plain_outcomes, sliced_outcomes, "preemption must not change results");
        assert_eq!(plain.preemptions, 0);
        assert!(sliced.preemptions > 0, "the long QAP job must have been sliced");
        assert!(
            sliced.max_wait_s < plain.max_wait_s,
            "fair-share must cut the worst wait: sliced {} vs plain {}",
            sliced.max_wait_s,
            plain.max_wait_s
        );
    }

    #[test]
    fn preemptive_groups_still_fuse_and_match_solo() {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 4, quantum_iters: Some(3), ..Default::default() },
        );
        let handles: Vec<_> = (0..4).map(|i| fleet.submit(onemax_job(i, 24, 12))).collect();
        let qap = fleet.submit(qap_spec(2, 10, 40));
        fleet.run_until_idle();
        let report = fleet.fleet_report();
        assert!(report.fused_launches > 0, "same-key tenants must fuse across slices");
        assert!(report.preemptions > 0);
        for (i, h) in handles.iter().enumerate() {
            let got = fleet.report(*h).unwrap().outcome.as_binary().unwrap();
            let want = solo_result(i as u64, 24, 12);
            assert_eq!(got.best, want.best, "job {i}");
            assert_eq!(got.iterations, want.iterations, "job {i}");
        }
        assert!(fleet.report(qap).unwrap().outcome.as_qap().is_some());
    }

    #[test]
    fn priority_buys_a_larger_share() {
        // Two equally long tenants on one device under DRR: weight
        // (priority + 1) must let the high-priority job finish first.
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 1, quantum_iters: Some(4), ..Default::default() },
        );
        let low = fleet.submit(onemax_job(0, 24, 60));
        let high = fleet.submit(onemax_job(1, 24, 60).with_priority(3));
        fleet.run_until_idle();
        let (r_low, r_high) = (fleet.report(low).unwrap(), fleet.report(high).unwrap());
        assert!(
            r_high.finished_s < r_low.finished_s,
            "high priority ({}) must finish before low ({})",
            r_high.finished_s,
            r_low.finished_s
        );
    }

    // -- cancellation -------------------------------------------------

    #[test]
    fn cancel_queued_job_drains_without_running() {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 1, ..Default::default() },
        );
        let running = fleet.submit(onemax_job(0, 16, 40));
        let queued = fleet.submit(onemax_job(1, 16, 40));
        assert!(fleet.tick());
        assert_eq!(fleet.status(queued), JobStatus::Queued);
        assert!(fleet.cancel(queued), "queued job must be cancellable");
        assert!(!fleet.cancel(queued) || fleet.status(queued) != JobStatus::Cancelled);
        fleet.run_until_idle();
        let report = fleet.report(queued).expect("cancelled job still reports");
        assert!(report.cancelled);
        assert_eq!(report.outcome.iterations(), 0, "never left the queue");
        assert_eq!(fleet.status(queued), JobStatus::Cancelled);
        assert_eq!(fleet.status(running), JobStatus::Done);
        let fr = fleet.fleet_report();
        assert_eq!(fr.jobs_cancelled, 1);
        assert_eq!(fr.jobs_completed, 1);
        // A finished job cannot be cancelled.
        assert!(!fleet.cancel(running));
    }

    #[test]
    fn cancel_running_job_drains_at_quantum_boundary() {
        let mut fleet = Scheduler::with_uniform_fleet(
            1,
            DeviceSpec::gtx280(),
            SchedulerConfig { max_batch: 4, quantum_iters: Some(5), ..Default::default() },
        );
        // Two fused lanes; cancelling one mid-flight must not disturb
        // the other.
        let victim = fleet.submit(onemax_job(0, 24, 50));
        let survivor = fleet.submit(onemax_job(1, 24, 50));
        for _ in 0..3 {
            fleet.tick();
        }
        assert_eq!(fleet.status(victim), JobStatus::Running);
        assert!(fleet.cancel(victim));
        fleet.run_until_idle();
        let vr = fleet.report(victim).unwrap();
        assert!(vr.cancelled);
        let iters = vr.outcome.iterations();
        assert!(iters > 0 && iters < 50, "drained mid-run, got {iters} iterations");
        let sr = fleet.report(survivor).unwrap();
        assert!(!sr.cancelled);
        assert_eq!(sr.outcome.as_binary().unwrap().best, solo_result(1, 24, 50).best);
    }

    // -- persistence --------------------------------------------------

    #[test]
    fn checkpoint_resume_is_deterministic_with_preemption() {
        let build = || {
            let mut fleet = Scheduler::with_uniform_fleet(
                2,
                DeviceSpec::gtx280(),
                SchedulerConfig { max_batch: 2, quantum_iters: Some(4), ..Default::default() },
            );
            for i in 0..5 {
                fleet.submit(onemax_job(i, 24, 25));
            }
            fleet
        };
        let mut straight = build();
        straight.run_until_idle();

        let mut fleet = build();
        for _ in 0..3 {
            fleet.tick();
        }
        let checkpoint = fleet.checkpoint();
        assert!(checkpoint.in_flight_jobs() > 0, "jobs must be captured mid-slice");
        drop(fleet);
        let mut resumed = Scheduler::restore(checkpoint);
        resumed.run_until_idle();

        let a = straight.fleet_report();
        let b = resumed.fleet_report();
        assert_eq!(a.jobs_completed, b.jobs_completed);
        assert_eq!(a.preemptions, b.preemptions);
        assert!((a.makespan_s - b.makespan_s).abs() < 1e-12);
        for (ra, rb) in straight.reports().zip(resumed.reports()) {
            let (ra, rb) = (ra.outcome.as_binary().unwrap(), rb.outcome.as_binary().unwrap());
            assert_eq!(ra.best, rb.best);
            assert_eq!(ra.iterations, rb.iterations);
        }
    }

    #[test]
    fn checkpoint_survives_disk_roundtrip() {
        let build = || {
            let mut fleet = Scheduler::new(
                MultiDevice::new_uniform(2, DeviceSpec::gtx280()),
                SchedulerConfig {
                    cpu_workers: 1,
                    max_batch: 2,
                    quantum_iters: Some(5),
                    ..Default::default()
                },
            );
            for i in 0..4 {
                fleet.submit(onemax_job(i, 24, 30));
            }
            fleet.submit(qap_spec(7, 10, 60));
            fleet
        };
        let mut straight = build();
        straight.run_until_idle();

        let mut fleet = build();
        for _ in 0..4 {
            fleet.tick();
        }
        let checkpoint = fleet.checkpoint();
        assert!(checkpoint.pending_jobs() > 0);
        let path =
            std::env::temp_dir().join(format!("lnls-fleet-roundtrip-{}.ckpt", std::process::id()));
        checkpoint.save(&path).expect("save");
        drop(fleet);
        drop(checkpoint);

        let registry = JobRegistry::with_builtin();
        let revived = FleetCheckpoint::load(&path, &registry).expect("load");
        std::fs::remove_file(&path).ok();
        let mut resumed = Scheduler::restore(revived);
        resumed.run_until_idle();

        // Search outcomes are bit-identical to the uninterrupted fleet.
        // (Makespan may differ slightly: a revived QAP job re-uploads
        // its instance matrices, exactly as a real restart would.)
        for (ra, rb) in straight.reports().zip(resumed.reports()) {
            assert_eq!(ra.id, rb.id);
            assert_eq!(ra.outcome.best_fitness(), rb.outcome.best_fitness(), "{}", ra.name);
            assert_eq!(ra.outcome.iterations(), rb.outcome.iterations(), "{}", ra.name);
        }
    }

    #[test]
    fn checkpoint_load_rejects_unregistered_tags() {
        let mut fleet =
            Scheduler::with_uniform_fleet(1, DeviceSpec::gtx280(), SchedulerConfig::default());
        fleet.submit(onemax_job(0, 16, 10));
        let bytes = fleet.checkpoint().to_bytes();
        let empty = JobRegistry::new(); // knows QAP only
        let err = match FleetCheckpoint::from_bytes(&bytes, &empty) {
            Err(e) => e,
            Ok(_) => panic!("decode must fail without the tabu tag registered"),
        };
        assert!(err.to_string().contains("unregistered"), "{err}");
        // And corrupt magic is refused outright.
        assert!(FleetCheckpoint::from_bytes(b"garbage!", &empty).is_err());
    }
}
