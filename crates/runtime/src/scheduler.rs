//! The fleet scheduler: the generic submission path, queue, fair-share
//! placement, quantum-preemptive fused stepping, cancellation,
//! iteration budgets and deadlines, checkpointing and auto-checkpoints.

use crate::exec::{BatchKey, JobExec};
use crate::job::{JobHandle, JobId, JobReport, JobStatus};
use crate::observe::{EventRecord, EventSink, FleetEvent, MetricsRegistry, ObserveState};
use crate::report::{FleetReport, TenantStat};
use crate::submit::{JobSpec, SearchJob, SubmitCtx};
use crate::telemetry::{percentile_sorted, Telemetry, TickSample};
use lnls_gpu_sim::{DeviceSpec, HostSpec, LaunchMode, MultiDevice, SelectionMode, TimeBook};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// How queued jobs are placed onto idle backends.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PlacePolicy {
    /// Cycle through backends in fixed order.
    RoundRobin,
    /// Prefer the backend whose clock (busy time so far) is lowest,
    /// breaking ties toward devices, then lower index.
    #[default]
    LeastLoaded,
}

/// Scheduler knobs.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Placement policy.
    pub policy: PlacePolicy,
    /// CPU worker backends in addition to the device fleet.
    pub cpu_workers: usize,
    /// Fuse up to this many same-key jobs per device assignment
    /// (1 disables launch batching).
    pub max_batch: usize,
    /// Host description for CPU-worker pricing.
    pub host: HostSpec,
    /// Preemption quantum, in neighborhood iterations. `None` keeps the
    /// legacy run-to-completion behavior; `Some(q)` makes every
    /// assignment a *time slice*: after its slice a still-running job
    /// returns to the queue and placement re-runs under deficit
    /// round-robin, so no tenant monopolizes a backend. Preemption never
    /// changes a job's result — only who waits how long.
    pub quantum_iters: Option<u64>,
    /// Auto-checkpoint cadence: every `n` ticks the scheduler snapshots
    /// itself to [`autosave_path`](Self::autosave_path) (no effect when
    /// either knob is unset). The previous snapshot is rotated to
    /// `<path>.1`, so a crash mid-write still leaves a loadable file.
    pub autosave_every_ticks: Option<u64>,
    /// Where auto-checkpoints land (see
    /// [`autosave_every_ticks`](Self::autosave_every_ticks)).
    pub autosave_path: Option<PathBuf>,
    /// Telemetry cadence: every `n` ticks the scheduler appends one
    /// [`TickSample`](crate::TickSample) (queue depth, running jobs,
    /// cumulative outcome counters, per-device busy time and cumulative
    /// PCIe bytes) to the [`Telemetry`](crate::Telemetry) series
    /// surfaced through [`Scheduler::telemetry`] and
    /// [`FleetReport::telemetry`]. `None` (the default) records nothing.
    /// The series is observational and not checkpointed.
    pub telemetry_every_ticks: Option<u64>,
    /// Telemetry memory bound: cap the sample series at this many
    /// entries; on overflow the series is thinned deterministically
    /// (keep-every-other compaction — see
    /// [`Telemetry::with_cap`](crate::Telemetry::with_cap)), so long
    /// saturation runs hold a coarser history in flat memory. `None`
    /// (the default) keeps every sample. The compaction is a pure
    /// function of the push sequence, so replayed runs stay
    /// bit-identical.
    pub telemetry_max_samples: Option<usize>,
    /// Fleet-wide best-neighbor selection mode: how evaluated batches'
    /// readbacks are priced. [`SelectionMode::HostArgmin`] (the default)
    /// is the paper's loop — the whole fitness array crosses PCIe every
    /// iteration; [`SelectionMode::DeviceArgmin`] prices an on-device
    /// reduction launch and shrinks each lane's readback to one packed
    /// record. Overridable per job with
    /// [`JobSpec::with_selection`](crate::JobSpec::with_selection).
    /// Pricing-only: search results are bit-identical under either mode.
    pub selection: SelectionMode,
    /// Fused-group span length: how many consecutive iterations a fused
    /// device assignment runs (and prices) as **one** breadth-first
    /// stream schedule per tick, double-buffering iteration `k+1`'s
    /// uploads against iteration `k`'s kernel. 1 (the default) is the
    /// legacy one-iteration-per-tick contract. Spans are capped at the
    /// slice remainder (never crossing a quantum, so preemption
    /// semantics are untouched) and at the tightest member iteration
    /// budget (so envelopes retire at exactly the same iteration).
    /// Pricing-only: search results are bit-identical under every span
    /// length.
    pub span_iters: u64,
    /// How fused spans charge kernel-launch overhead:
    /// [`LaunchMode::PerIteration`] (the default) re-launches every
    /// iteration; [`LaunchMode::PersistentSpan`] keeps the kernel
    /// resident and charges the overhead once per span. Pricing-only,
    /// like [`span_iters`](Self::span_iters).
    pub launch_mode: LaunchMode,
    /// First job id / submission sequence number this scheduler hands
    /// out (default 0). A sharded fleet gives each member scheduler a
    /// disjoint base (shard `i` starts at `i << 40`), so jobs keep
    /// globally unique identities when work stealing moves them between
    /// shards — and shard 0 of a 1-shard fleet, based at 0, stays
    /// bit-identical to a bare scheduler.
    pub id_base: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            policy: PlacePolicy::default(),
            cpu_workers: 0,
            max_batch: 8,
            host: HostSpec::xeon_3ghz(),
            quantum_iters: None,
            autosave_every_ticks: None,
            autosave_path: None,
            telemetry_every_ticks: None,
            telemetry_max_samples: None,
            selection: SelectionMode::HostArgmin,
            span_iters: 1,
            launch_mode: LaunchMode::PerIteration,
            id_base: 0,
        }
    }
}

/// A queued job plus its deficit-round-robin credit (iterations of
/// backend time it is owed; always 0 when preemption is off).
pub(crate) struct QueueEntry {
    pub job: Box<dyn JobExec>,
    pub deficit: u64,
}

/// An in-flight job inside an assignment, with the credit it carried in.
pub(crate) struct ActiveJob {
    pub job: Box<dyn JobExec>,
    pub deficit: u64,
}

pub(crate) struct Active {
    pub jobs: Vec<ActiveJob>,
    pub started_s: f64,
    /// Iterations this assignment may run before preemption
    /// (`u64::MAX` when preemption is off).
    pub slice_budget: u64,
    /// Iterations consumed since the slice began.
    pub slice_used: u64,
}

/// Per-job lifecycle timestamps and envelope policy (tenant, budget,
/// deadline, checkpointability) the reports and drain sweeps are built
/// from.
#[derive(Clone, Debug)]
pub(crate) struct JobMeta {
    pub submitted_s: f64,
    pub first_started_s: Option<f64>,
    pub tenant: String,
    pub iter_budget: Option<u64>,
    pub deadline_s: Option<f64>,
    pub checkpoint: bool,
}

/// A queued job in transit between schedulers: the executor (cursor
/// state included), its lifecycle metadata, its fair-share credit and
/// any pending cancel request — everything the donor knew. Produced by
/// [`Scheduler::donate_queued`], consumed by [`Scheduler::adopt`];
/// opaque on purpose, because the only correct thing to do with one is
/// hand it to another scheduler (dropping it loses the job, exactly
/// like dropping a checkpoint).
pub struct StolenJob {
    job: Box<dyn JobExec>,
    meta: JobMeta,
    deficit: u64,
    cancel_requested: bool,
}

impl StolenJob {
    /// The job's fleet-wide identity (preserved across the move).
    pub fn id(&self) -> JobId {
        self.job.id()
    }

    /// The tenant the job was submitted under.
    pub fn tenant(&self) -> &str {
        &self.meta.tenant
    }

    /// The job's queue priority.
    pub fn priority(&self) -> u8 {
        self.job.priority()
    }
}

/// A batched multi-tenant search scheduler over a simulated device fleet.
///
/// Submit any [`SearchJob`] through the one generic entry point
/// ([`submit`](Self::submit), or [`submit_spec`](Self::submit_spec) for
/// an enveloped submission), then drive the simulation with
/// [`tick`](Self::tick) / [`run_until_idle`](Self::run_until_idle) /
/// [`await_report`](Self::await_report). All time is *modeled* time from
/// the gpu-sim cost models; execution is deterministic, so fleet runs
/// return bit-identical search results to solo runs of the same jobs.
///
/// Backends are the devices of the owned [`MultiDevice`] plus
/// `cpu_workers` host workers. Each backend executes one assignment at a
/// time; a device assignment may be a *fused group* of up to `max_batch`
/// jobs sharing a batch key, whose per-iteration evaluations ride in one
/// launch (see [`lnls_core::BatchedExplorer`]).
///
/// With [`SchedulerConfig::quantum_iters`] set, assignments are time
/// slices: a job that exhausts its quantum is preempted back into the
/// queue (cursor intact — every job is a
/// [`SearchCursor`](lnls_core::SearchCursor)), and the queue is served
/// by deficit round-robin weighted by `priority + 1`, so long QAP runs
/// no longer starve short tenants. Results are invariant under any
/// quantum; only waiting times change.
pub struct Scheduler {
    devices: MultiDevice,
    cfg: SchedulerConfig,
    queue: Vec<QueueEntry>,
    active: Vec<Option<Active>>,
    clocks: Vec<f64>,
    rr_next: usize,
    next_id: u64,
    next_seq: u64,
    done: BTreeMap<JobId, JobReport>,
    meta: BTreeMap<JobId, JobMeta>,
    cancel_requested: BTreeSet<JobId>,
    /// Live jobs carrying an envelope constraint (deadline or iteration
    /// budget) — lets the per-tick policy sweep skip entirely in the
    /// common all-plain-submissions case.
    policed: BTreeSet<JobId>,
    serialized_s: f64,
    fused_launches: u64,
    launches_saved: u64,
    preemptions: u64,
    ticks: u64,
    autosaves: u64,
    /// Job-iterations executed across every backend step (fused groups
    /// count one per member) — the denominator of the bytes-moved-per-
    /// iteration report.
    iterations_executed: u64,
    /// Cumulative stream-schedule makespan charged by device steps.
    stream_makespan_s: f64,
    /// What the same device operations would cost back-to-back — the
    /// stream-overlap baseline.
    stream_serialized_s: f64,
    /// Multi-iteration stream spans priced by fused steps.
    spans: u64,
    /// Iterations that ran inside those spans (mean span length =
    /// `span_iterations / spans`).
    span_iterations: u64,
    /// Launch overhead amortized away by persistent-kernel spans.
    launch_overhead_saved_s: f64,
    telemetry: Option<Telemetry>,
    /// Cumulative outcome counters, bumped as jobs retire — kept so the
    /// per-tick telemetry sample never rescans the done map (which
    /// would make telemetry O(jobs · ticks) at cadence 1).
    completed_count: u64,
    cancelled_count: u64,
    rejected_count: u64,
    /// Attached observability (event sink + metrics registry). Strictly
    /// observational and never checkpointed — a restored fleet starts
    /// unobserved, like telemetry.
    observe: ObserveState,
}

impl Scheduler {
    /// A scheduler owning `devices` with the given knobs.
    pub fn new(devices: MultiDevice, cfg: SchedulerConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.quantum_iters != Some(0), "quantum_iters must be at least 1");
        assert!(cfg.span_iters >= 1, "span_iters must be at least 1");
        let backends = devices.len() + cfg.cpu_workers;
        let id_base = cfg.id_base;
        let telemetry =
            cfg.telemetry_every_ticks.map(|_| Telemetry::with_cap(cfg.telemetry_max_samples));
        Self {
            devices,
            cfg,
            queue: Vec::new(),
            active: (0..backends).map(|_| None).collect(),
            clocks: vec![0.0; backends],
            rr_next: 0,
            next_id: id_base,
            next_seq: id_base,
            done: BTreeMap::new(),
            meta: BTreeMap::new(),
            cancel_requested: BTreeSet::new(),
            policed: BTreeSet::new(),
            serialized_s: 0.0,
            fused_launches: 0,
            launches_saved: 0,
            preemptions: 0,
            ticks: 0,
            autosaves: 0,
            iterations_executed: 0,
            stream_makespan_s: 0.0,
            stream_serialized_s: 0.0,
            spans: 0,
            span_iterations: 0,
            launch_overhead_saved_s: 0.0,
            telemetry,
            completed_count: 0,
            cancelled_count: 0,
            rejected_count: 0,
            observe: ObserveState::default(),
        }
    }

    /// Convenience: `count` identical devices of `spec`.
    pub fn with_uniform_fleet(count: usize, spec: DeviceSpec, cfg: SchedulerConfig) -> Self {
        Self::new(MultiDevice::new_uniform(count, spec), cfg)
    }

    /// The owned fleet.
    pub fn devices(&self) -> &MultiDevice {
        &self.devices
    }

    /// Current fleet time: the most advanced backend clock (modeled
    /// seconds — the clock [`JobSpec::with_deadline`] compares against).
    pub fn now_s(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }

    /// Jobs currently waiting in the queue (what admission-control caps
    /// count).
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently placed on a backend (members of fused groups each
    /// count once). With `queued_len` this is the cheap idleness probe
    /// the workload driver polls every tick.
    pub fn running_len(&self) -> usize {
        self.active.iter().flatten().map(|a| a.jobs.len()).sum()
    }

    /// The telemetry series recorded so far, when
    /// [`SchedulerConfig::telemetry_every_ticks`] is set.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    // -- observability -------------------------------------------------

    /// Attach an event sink: every [`FleetEvent`] from now on is stamped
    /// with the tick and the modeled fleet clock and handed to `sink`.
    /// Strictly observational — results are bit-identical with or
    /// without a sink — and zero-cost while nothing is attached. Sinks
    /// are never checkpointed; a restored fleet starts unobserved.
    /// Replaces (and drops) any previously attached sink.
    pub fn attach_sink(&mut self, sink: Box<dyn EventSink>) {
        self.observe.sink = Some(sink);
    }

    /// Detach the current event sink (flushed first), if any.
    pub fn detach_sink(&mut self) -> Option<Box<dyn EventSink>> {
        let mut sink = self.observe.sink.take();
        if let Some(s) = sink.as_mut() {
            s.flush();
        }
        sink
    }

    /// Attach a metrics registry: every emitted event is routed through
    /// [`MetricsRegistry::record`] (before any sink sees it), and the
    /// tick loop keeps the `fleet_queue_depth` / `fleet_jobs_running`
    /// gauges current. Observational and never checkpointed.
    pub fn attach_metrics(&mut self, registry: MetricsRegistry) {
        self.observe.metrics = Some(registry);
    }

    /// Convenience: attach a fresh, empty [`MetricsRegistry`].
    pub fn enable_metrics(&mut self) {
        self.attach_metrics(MetricsRegistry::new());
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.observe.metrics.as_ref()
    }

    /// Detach and return the attached metrics registry, if any.
    pub fn take_metrics(&mut self) -> Option<MetricsRegistry> {
        self.observe.metrics.take()
    }

    /// True when a sink or a metrics registry is attached — the
    /// zero-cost guard emission sites check before building payloads.
    pub(crate) fn observing(&self) -> bool {
        self.observe.enabled()
    }

    /// Stamp `event` with the current tick + fleet clock and feed the
    /// attached observers (metrics first, then the sink).
    pub(crate) fn emit_event(&mut self, event: FleetEvent) {
        if !self.observe.enabled() {
            return;
        }
        let record = EventRecord { tick: self.ticks, now_s: self.now_s(), event };
        self.observe.emit(record);
    }

    /// Identities of the currently queued jobs (one snapshot for
    /// admission-control planning, instead of per-job status scans).
    pub(crate) fn queued_job_ids(&self) -> BTreeSet<JobId> {
        self.queue.iter().map(|e| e.job.id()).collect()
    }

    /// `(id, tenant, priority)` of every *live* job — queued or placed
    /// on a backend. What
    /// [`FleetClient::resume`](crate::FleetClient::resume) rebuilds its
    /// admission bookkeeping from after a restore: running jobs matter
    /// too, because under preemption they return to the queue and must
    /// count against caps and be shed-eligible, exactly as they were in
    /// the pre-crash client.
    pub(crate) fn live_rows(&self) -> Vec<(JobId, String, u8)> {
        let queued = self.queue.iter().map(|e| &e.job);
        let running = self.active.iter().flatten().flat_map(|a| a.jobs.iter().map(|aj| &aj.job));
        queued
            .chain(running)
            .map(|job| {
                let id = job.id();
                let tenant = self.meta.get(&id).map_or_else(String::new, |m| m.tenant.clone());
                (id, tenant, job.priority())
            })
            .collect()
    }

    /// True once `handle`'s job has a final report (done, cancelled or
    /// rejected) — the client uses this to prune its bookkeeping.
    pub(crate) fn is_terminal(&self, handle: JobHandle) -> bool {
        self.done.contains_key(&handle.id)
    }

    /// Remove a *queued* (not running) job from this scheduler and hand
    /// it over as a [`StolenJob`] — the donor half of shard-level work
    /// stealing. Returns `None` when `id` is not currently queued
    /// (running, finished and unknown jobs are not donatable; stealing
    /// only ever moves jobs that have not started their current slice,
    /// so preemption semantics are untouched). The job's metadata,
    /// fair-share deficit and any pending cancel request travel with
    /// it; the donor forgets the job entirely.
    pub fn donate_queued(&mut self, id: JobId) -> Option<StolenJob> {
        let pos = self.queue.iter().position(|e| e.job.id() == id)?;
        let entry = self.queue.remove(pos);
        let meta = self.meta.remove(&id).expect("every live job carries metadata");
        self.policed.remove(&id);
        let cancel_requested = self.cancel_requested.remove(&id);
        Some(StolenJob { job: entry.job, meta, deficit: entry.deficit, cancel_requested })
    }

    /// Adopt a job donated by another scheduler: the taker half of
    /// shard-level work stealing. The job keeps its identity, priority,
    /// submission timestamps, envelope policy, fair-share deficit and
    /// pending cancel request, and joins this scheduler's queue as if
    /// it had always been here.
    ///
    /// # Panics
    /// Panics if the adopted id collides with a job this scheduler
    /// already knows — donors and takers must draw ids from disjoint
    /// [`SchedulerConfig::id_base`] ranges.
    pub fn adopt(&mut self, stolen: StolenJob) -> JobHandle {
        let StolenJob { job, meta, deficit, cancel_requested } = stolen;
        let id = job.id();
        assert!(
            !self.meta.contains_key(&id) && !self.done.contains_key(&id),
            "adopted job id {id:?} collides; give shards disjoint `id_base` ranges"
        );
        if meta.iter_budget.is_some() || meta.deadline_s.is_some() {
            self.policed.insert(id);
        }
        if cancel_requested {
            self.cancel_requested.insert(id);
        }
        self.meta.insert(id, meta);
        self.queue.push(QueueEntry { job, deficit });
        JobHandle { id }
    }

    /// The most recently submitted queued job (highest submission
    /// sequence number), if any — the one a steal barrier donates
    /// first: the newest arrival has waited least, so moving it
    /// perturbs fairness least.
    pub fn newest_queued(&self) -> Option<JobId> {
        self.queue.iter().max_by_key(|e| e.job.seq()).map(|e| e.job.id())
    }

    fn fresh_ids(&mut self) -> (JobId, u64) {
        let id = JobId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        (id, seq)
    }

    /// Submit any [`SearchJob`] — the one generic entry point for every
    /// workload: binary tabu, QAP robust tabu, simulated annealing, or
    /// an external implementation.
    ///
    /// Equivalent to [`submit_spec`](Self::submit_spec) with a default
    /// envelope. Admission control lives one layer up, in
    /// [`FleetClient`](crate::FleetClient); the raw scheduler accepts
    /// everything.
    pub fn submit<J: SearchJob>(&mut self, job: J) -> JobHandle {
        self.submit_spec(JobSpec::new(job))
    }

    /// Submit an enveloped [`SearchJob`]: the [`JobSpec`] adds tenant
    /// attribution, name/priority overrides, an iteration budget, a
    /// deadline and the checkpoint policy on top of the job itself.
    pub fn submit_spec<J: SearchJob>(&mut self, spec: JobSpec<J>) -> JobHandle {
        let (id, seq) = self.fresh_ids();
        let JobSpec { job, name, priority, tenant, iter_budget, deadline_s, checkpoint, selection } =
            spec;
        let ctx = SubmitCtx {
            id,
            seq,
            host: self.cfg.host.clone(),
            selection: selection.unwrap_or(self.cfg.selection),
            name_override: name,
            priority_override: priority,
        };
        let exec = Box::new(job).into_exec(ctx);
        debug_assert_eq!(exec.id(), id, "executors must adopt the SubmitCtx identity");
        if iter_budget.is_some() || deadline_s.is_some() {
            self.policed.insert(id);
        }
        let submitted_event = self.observing().then(|| FleetEvent::Submitted {
            job: id,
            name: exec.name().to_string(),
            tenant: tenant.clone(),
            priority: exec.priority(),
        });
        self.meta.insert(
            id,
            JobMeta {
                submitted_s: self.now_s(),
                first_started_s: None,
                tenant,
                iter_budget,
                deadline_s,
                checkpoint,
            },
        );
        self.queue.push(QueueEntry { job: exec, deficit: 0 });
        if let Some(event) = submitted_event {
            self.emit_event(event);
        }
        JobHandle { id }
    }

    /// Where `handle`'s job currently is.
    pub fn status(&self, handle: JobHandle) -> JobStatus {
        if let Some(report) = self.done.get(&handle.id) {
            return if report.rejected {
                JobStatus::Rejected
            } else if report.cancelled {
                JobStatus::Cancelled
            } else {
                JobStatus::Done
            };
        }
        if self.queue.iter().any(|e| e.job.id() == handle.id) {
            return JobStatus::Queued;
        }
        let running = self
            .active
            .iter()
            .flatten()
            .flat_map(|a| a.jobs.iter())
            .any(|a| a.job.id() == handle.id);
        if running {
            JobStatus::Running
        } else {
            JobStatus::Unknown
        }
    }

    /// Request cancellation of `handle`'s job. The job is drained at the
    /// next quantum boundary (the next [`tick`](Self::tick)): it leaves
    /// the queue or its fused group, and its report — marked
    /// [`cancelled`](JobReport::cancelled), with the best-so-far at the
    /// boundary — lands in [`reports`](Self::reports). Returns `false`
    /// for jobs already finished or unknown to this scheduler.
    pub fn cancel(&mut self, handle: JobHandle) -> bool {
        if self.done.contains_key(&handle.id) {
            return false;
        }
        let queued = self.queue.iter().any(|e| e.job.id() == handle.id);
        let running = self
            .active
            .iter()
            .flatten()
            .flat_map(|a| a.jobs.iter())
            .any(|a| a.job.id() == handle.id);
        if queued || running {
            self.cancel_requested.insert(handle.id);
            true
        } else {
            false
        }
    }

    /// Evict a *queued* job on behalf of admission control (the
    /// shed-lowest-priority policy of
    /// [`FleetClient`](crate::FleetClient)). The job leaves the queue
    /// immediately; its report is marked
    /// [`rejected`](JobReport::rejected) and carries whatever had been
    /// computed before the eviction (a previously-preempted job may have
    /// partial progress). Returns `false` when the job is not currently
    /// queued.
    pub fn reject_queued(&mut self, handle: JobHandle) -> bool {
        let Some(i) = self.queue.iter().position(|e| e.job.id() == handle.id) else {
            return false;
        };
        let entry = self.queue.swap_remove(i);
        self.serialized_s += entry.job.serial_equivalent_s(self.devices.spec(0));
        let now = self.now_s();
        self.complete(entry.job, "(rejected by admission control)".into(), now, false, true);
        true
    }

    /// The report of a completed job, if it completed.
    pub fn report(&self, handle: JobHandle) -> Option<&JobReport> {
        self.done.get(&handle.id)
    }

    /// All completed reports, in job-id order.
    pub fn reports(&self) -> impl Iterator<Item = &JobReport> {
        self.done.values()
    }

    /// Drive the simulation until `handle` completes, then return its
    /// report.
    ///
    /// # Panics
    /// Panics if the job is unknown to this scheduler.
    pub fn await_report(&mut self, handle: JobHandle) -> &JobReport {
        while !self.done.contains_key(&handle.id) {
            assert!(
                self.tick(),
                "job {} cannot complete: scheduler went idle without it",
                handle.id
            );
        }
        &self.done[&handle.id]
    }

    /// Run until every submitted job has completed.
    pub fn run_until_idle(&mut self) {
        while self.tick() {}
    }

    /// Advance the fleet one step: drain pending cancellations, missed
    /// deadlines and exhausted iteration budgets; place queued jobs on
    /// idle backends; then run one quantum (one fused *span* of up to
    /// [`SchedulerConfig::span_iters`] iterations for a batched group,
    /// up to the slice budget for a solo assignment) on every busy
    /// backend, preempting assignments whose slice expired.
    /// Auto-checkpoints fire on the configured tick cadence. Returns
    /// `false` once the fleet is idle.
    pub fn tick(&mut self) -> bool {
        self.drain_cancelled();
        self.drain_policy();
        self.place();
        let mut progressed = false;
        for b in 0..self.active.len() {
            progressed |= self.step_backend(b);
        }
        self.ticks += 1;
        if let Some(every) = self.cfg.autosave_every_ticks {
            if every > 0 && self.ticks.is_multiple_of(every) {
                self.autosave();
            }
        }
        if let Some(every) = self.cfg.telemetry_every_ticks {
            if every > 0 && self.ticks.is_multiple_of(every) {
                self.sample_telemetry();
            }
        }
        if self.observe.metrics.is_some() {
            let depth = self.queue.len() as f64;
            let running = self.running_len() as f64;
            if let Some(m) = self.observe.metrics.as_mut() {
                m.set_gauge("fleet_queue_depth", depth);
                m.set_gauge("fleet_jobs_running", running);
            }
        }
        progressed || !self.queue.is_empty()
    }

    /// Append one [`TickSample`] of the current fleet state.
    fn sample_telemetry(&mut self) {
        let books = self.devices.books_sum();
        let sample = TickSample {
            tick: self.ticks,
            now_s: self.now_s(),
            queue_depth: self.queue.len() as u64,
            running: self.running_len() as u64,
            completed: self.completed_count,
            cancelled: self.cancelled_count,
            rejected: self.rejected_count,
            preemptions: self.preemptions,
            device_busy_s: self.clocks[..self.devices.len()].to_vec(),
            bytes_h2d: books.bytes_h2d,
            bytes_d2h: books.bytes_d2h,
        };
        if let Some(t) = self.telemetry.as_mut() {
            t.push(sample);
        }
    }

    /// Snapshot to the configured autosave path, rotating the previous
    /// snapshot to `<path>.1` first.
    fn autosave(&mut self) {
        let Some(path) = self.cfg.autosave_path.clone() else { return };
        let mut rotated = path.clone().into_os_string();
        rotated.push(".1");
        if path.exists() {
            let _ = std::fs::rename(&path, PathBuf::from(rotated));
        }
        match self.checkpoint().save(&path) {
            Ok(()) => {
                self.autosaves += 1;
                if self.observing() {
                    let pending = (self.queue.len() + self.running_len()) as u64;
                    self.emit_event(FleetEvent::Checkpointed { pending });
                }
            }
            Err(e) => eprintln!("lnls-runtime: autosave to {} failed: {e}", path.display()),
        }
    }

    // -- completion ----------------------------------------------------

    /// Retire one job into the done map, stamping lifecycle times from
    /// its metadata. Backend clocks advance independently, so a job
    /// submitted while another backend raced ahead can be placed on a
    /// clock that still reads *earlier* than its submission instant; the
    /// stamps are clamped monotone (submitted ≤ started ≤ finished) so
    /// reports never show a job starting before it existed. A job that
    /// never reached a backend (cancelled while queued) reports
    /// `started_s == submitted_s`: it has no placement instant, and a
    /// fabricated one would pollute the fairness aggregates preemption
    /// is measured by.
    fn complete(
        &mut self,
        mut job: Box<dyn JobExec>,
        backend: String,
        at_s: f64,
        cancelled: bool,
        rejected: bool,
    ) {
        let id = job.id();
        let meta = self.meta.get(&id);
        let submitted_s = meta.map_or(0.0, |m| m.submitted_s);
        let started_s =
            meta.and_then(|m| m.first_started_s).unwrap_or(submitted_s).max(submitted_s);
        let backend_label = if self.observing() { backend.clone() } else { String::new() };
        let mut report = job.finish(backend, started_s, at_s.max(started_s));
        report.submitted_s = submitted_s;
        report.cancelled = cancelled;
        report.rejected = rejected;
        report.tenant = meta.map_or_else(String::new, |m| m.tenant.clone());
        self.policed.remove(&id);
        if rejected {
            self.rejected_count += 1;
        } else if cancelled {
            self.cancelled_count += 1;
        } else {
            self.completed_count += 1;
        }
        let retire_event = self.observing().then(|| {
            let (wait_s, turnaround_s) = (report.wait_s(), report.turnaround_s());
            if rejected {
                FleetEvent::Rejected {
                    job: Some(id),
                    tenant: report.tenant.clone(),
                    reason: crate::observe::RejectReason::Shed,
                }
            } else if cancelled {
                FleetEvent::Cancelled { job: id, wait_s, turnaround_s }
            } else {
                FleetEvent::Completed { job: id, device: backend_label, wait_s, turnaround_s }
            }
        });
        self.done.insert(id, report);
        if let Some(event) = retire_event {
            self.emit_event(event);
        }
    }

    /// Drain every job in `ids` out of the queue and the active slots,
    /// completing each with the given disposition flags.
    fn drain_ids(&mut self, ids: &BTreeSet<JobId>, queued_backend: &str, cancelled: bool) {
        let now = self.now_s();
        let mut i = 0;
        while i < self.queue.len() {
            if ids.contains(&self.queue[i].job.id()) {
                let entry = self.queue.swap_remove(i);
                self.serialized_s += entry.job.serial_equivalent_s(self.devices.spec(0));
                self.complete(entry.job, queued_backend.into(), now, cancelled, false);
            } else {
                i += 1;
            }
        }
        for b in 0..self.active.len() {
            let Some(mut active) = self.active[b].take() else { continue };
            let mut still = Vec::with_capacity(active.jobs.len());
            for aj in active.jobs {
                if ids.contains(&aj.job.id()) {
                    self.serialized_s += aj.job.serial_equivalent_s(self.devices.spec(0));
                    let name = self.backend_name(b);
                    let at = self.clocks[b];
                    self.complete(aj.job, name, at, cancelled, false);
                } else {
                    still.push(aj);
                }
            }
            if !still.is_empty() {
                active.jobs = still;
                self.active[b] = Some(active);
            }
        }
    }

    fn drain_cancelled(&mut self) {
        if self.cancel_requested.is_empty() {
            return;
        }
        let ids = std::mem::take(&mut self.cancel_requested);
        self.drain_ids(&ids, "(cancelled while queued)", true);
    }

    /// Enforce the submission envelopes: jobs past their deadline drain
    /// through the cancellation path (report marked cancelled); jobs
    /// that exhausted their iteration budget complete normally with the
    /// best-so-far.
    fn drain_policy(&mut self) {
        if self.policed.is_empty() {
            return;
        }
        let now = self.now_s();
        let mut over_deadline = BTreeSet::new();
        let mut over_budget = BTreeSet::new();
        let live = self
            .queue
            .iter()
            .map(|e| &e.job)
            .chain(self.active.iter().flatten().flat_map(|a| a.jobs.iter().map(|aj| &aj.job)));
        for job in live {
            if !self.policed.contains(&job.id()) {
                continue;
            }
            let Some(meta) = self.meta.get(&job.id()) else { continue };
            if meta.deadline_s.is_some_and(|d| now >= d) {
                over_deadline.insert(job.id());
            } else if meta.iter_budget.is_some_and(|b| job.iterations() >= b) {
                over_budget.insert(job.id());
            }
        }
        if !over_deadline.is_empty() {
            self.drain_ids(&over_deadline, "(deadline missed while queued)", true);
        }
        if !over_budget.is_empty() {
            self.drain_ids(&over_budget, "(iteration budget exhausted)", false);
        }
    }

    // -- placement ----------------------------------------------------

    fn idle_backends(&self) -> Vec<usize> {
        (0..self.active.len()).filter(|&b| self.active[b].is_none()).collect()
    }

    /// Index into `queue` of the next lead job.
    ///
    /// Run-to-completion mode keeps the legacy strict order (priority
    /// desc, submission asc). Preemptive mode is deficit round-robin:
    /// every job carries a credit of backend iterations; when all
    /// credits are spent a new round tops every queued job up by
    /// `quantum · (priority + 1)`, and the richest job runs next. Higher
    /// priority thus buys a proportionally *larger share* of the fleet
    /// instead of absolute precedence, and nobody starves.
    fn next_job_index(&mut self) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        match self.cfg.quantum_iters {
            None => (0..self.queue.len()).min_by_key(|&i| {
                let j = &self.queue[i].job;
                (std::cmp::Reverse(j.priority()), j.seq())
            }),
            Some(q) => {
                if self.queue.iter().all(|e| e.deficit == 0) {
                    for e in &mut self.queue {
                        e.deficit += q * (e.job.priority() as u64 + 1);
                    }
                }
                (0..self.queue.len()).max_by_key(|&i| {
                    let e = &self.queue[i];
                    (e.deficit, e.job.priority(), std::cmp::Reverse(e.job.seq()))
                })
            }
        }
    }

    fn place(&mut self) {
        loop {
            let idle = self.idle_backends();
            if idle.is_empty() || self.queue.is_empty() {
                return;
            }
            let backend = match self.cfg.policy {
                PlacePolicy::RoundRobin => {
                    // Next idle backend at or after the cursor.
                    let b = (0..self.active.len())
                        .map(|o| (self.rr_next + o) % self.active.len())
                        .find(|b| self.active[*b].is_none())
                        .expect("idle set is non-empty");
                    self.rr_next = (b + 1) % self.active.len();
                    b
                }
                PlacePolicy::LeastLoaded => *idle
                    .iter()
                    .min_by(|&&a, &&b| {
                        self.clocks[a].total_cmp(&self.clocks[b]).then_with(|| a.cmp(&b))
                    })
                    .expect("idle set is non-empty"),
            };
            let lead_idx = self.next_job_index().expect("queue is non-empty");
            let lead = self.queue.swap_remove(lead_idx);
            let slice_budget = match self.cfg.quantum_iters {
                None => u64::MAX,
                Some(q) => lead.deficit.max(q),
            };
            let mut jobs = vec![ActiveJob { job: lead.job, deficit: lead.deficit }];
            // Launch batching: device backends co-schedule same-key jobs.
            // Fusing only amortizes overhead and transfer latency (kernel
            // seconds still add up), so parallel devices beat wider
            // batches: cap the group so the key's jobs spread over every
            // idle device instead of piling onto this one.
            if backend < self.devices.len() && self.cfg.max_batch > 1 {
                if let Some(key) = jobs[0].job.batch_key() {
                    let same_key = 1 + self
                        .queue
                        .iter()
                        .filter(|e| e.job.batch_key().as_ref() == Some(&key))
                        .count();
                    let idle_devices = (0..self.devices.len())
                        .filter(|&b| self.active[b].is_none())
                        .count()
                        .max(1);
                    let cap = self.cfg.max_batch.min(same_key.div_ceil(idle_devices)).max(1);
                    self.drain_batch_peers(&key, &mut jobs, cap);
                }
            }
            for aj in &jobs {
                if let Some(m) = self.meta.get_mut(&aj.job.id()) {
                    m.first_started_s.get_or_insert(self.clocks[backend]);
                }
            }
            if self.observing() {
                let device = self.backend_name(backend);
                for aj in &jobs {
                    self.emit_event(FleetEvent::Placed {
                        job: aj.job.id(),
                        device: device.clone(),
                    });
                }
                if jobs.len() > 1 {
                    self.emit_event(FleetEvent::BatchFused { device, lanes: jobs.len() as u64 });
                }
            }
            self.active[backend] =
                Some(Active { jobs, started_s: self.clocks[backend], slice_budget, slice_used: 0 });
        }
    }

    fn drain_batch_peers(&mut self, key: &BatchKey, jobs: &mut Vec<ActiveJob>, cap: usize) {
        while jobs.len() < cap {
            let peer = (0..self.queue.len())
                .filter(|&i| self.queue[i].job.batch_key().as_ref() == Some(key))
                .min_by_key(|&i| {
                    let j = &self.queue[i].job;
                    (std::cmp::Reverse(j.priority()), j.seq())
                });
            match peer {
                Some(i) => {
                    let entry = self.queue.swap_remove(i);
                    jobs.push(ActiveJob { job: entry.job, deficit: entry.deficit });
                }
                None => return,
            }
        }
    }

    // -- stepping -----------------------------------------------------

    fn step_backend(&mut self, b: usize) -> bool {
        let Some(mut active) = self.active[b].take() else {
            return false;
        };
        let is_device = b < self.devices.len();
        let observing = self.observing();
        // Everything the quantum events need, captured before stepping
        // (device label, lane ids, clock, and the PCIe ledger to diff
        // against). Only built while observers are attached.
        let quantum_ctx = observing.then(|| {
            let device = self.backend_name(b);
            let jobs: Vec<JobId> = active.jobs.iter().map(|a| a.job.id()).collect();
            let book = is_device.then(|| self.devices.device(b).book().clone());
            (device, jobs, self.clocks[b], book)
        });
        if let Some((device, jobs, start_s, _)) = quantum_ctx.as_ref() {
            self.emit_event(FleetEvent::QuantumStart {
                device: device.clone(),
                jobs: jobs.clone(),
                start_s: *start_s,
            });
        }
        // Preemptive assignments may burn their whole remaining slice in
        // one call; without a quantum the legacy contract holds — one
        // iteration per tick — so solo jobs stay observable (status,
        // mid-run checkpoint, cancellation) between iterations.
        let mut quota = if self.cfg.quantum_iters.is_some() {
            active.slice_budget.saturating_sub(active.slice_used).max(1)
        } else {
            1
        };
        // An assignment must not run past any member's envelope
        // iteration budget inside one quantum: solo jobs clamp their
        // quota, fused groups clamp their span, so envelopes retire at
        // exactly the same iteration under every span length.
        if active.jobs.len() == 1 {
            if let Some(budget) =
                self.meta.get(&active.jobs[0].job.id()).and_then(|m| m.iter_budget)
            {
                let remaining = budget.saturating_sub(active.jobs[0].job.iterations());
                quota = quota.min(remaining.max(1));
            }
        }
        let run = if active.jobs.len() > 1 {
            // Fused groups run one *span* per tick: up to `span_iters`
            // consecutive iterations priced as one double-buffered
            // stream schedule. The span is capped at the slice
            // remainder (it never crosses a quantum) and at the
            // tightest member budget; members still retire (and
            // re-batch) at iteration granularity because the span ends
            // early when any member finishes.
            let mut span = self.cfg.span_iters;
            if self.cfg.quantum_iters.is_some() {
                span = span.min(active.slice_budget.saturating_sub(active.slice_used).max(1));
            }
            for aj in &active.jobs {
                if let Some(budget) = self.meta.get(&aj.job.id()).and_then(|m| m.iter_budget) {
                    span = span.min(budget.saturating_sub(aj.job.iterations()).max(1));
                }
            }
            let mode = self.cfg.launch_mode;
            let dev = self.devices.device_mut(b);
            let (lead, peers) = active.jobs.split_at_mut(1);
            let mut peer_refs: Vec<&mut Box<dyn JobExec>> =
                peers.iter_mut().map(|a| &mut a.job).collect();
            let lanes = peer_refs.len() as u64 + 1;
            let run = lead[0].job.step_batch(&mut peer_refs, dev, span, mode);
            // A per-iteration span issues its fused kernel chain once
            // per iteration; a persistent span issues it once for the
            // whole span. Either way a solo schedule would have issued
            // `lanes` launches per iteration.
            let issued = match mode {
                LaunchMode::PerIteration => run.iters,
                LaunchMode::PersistentSpan => 1,
            };
            self.fused_launches += issued;
            self.launches_saved += lanes * run.iters - issued;
            run
        } else if is_device {
            active.jobs[0].job.step_device(self.devices.device_mut(b), quota)
        } else {
            active.jobs[0].job.step_host(&self.cfg.host, quota)
        };
        self.clocks[b] += run.seconds;
        active.slice_used += run.iters;
        // Fused groups advance every member one iteration per step.
        self.iterations_executed += run.iters * active.jobs.len() as u64;
        if is_device {
            self.stream_makespan_s += run.seconds;
            self.stream_serialized_s += run.serialized_s;
            if run.spans > 0 {
                self.spans += run.spans;
                self.span_iterations += run.iters;
            }
            self.launch_overhead_saved_s += run.launch_overhead_saved_s;
        }
        if let Some((device, jobs, start_s, book_before)) = quantum_ctx {
            let (bytes_h2d, bytes_d2h) = match book_before {
                Some(before) => {
                    let now = self.devices.device(b).book();
                    (now.bytes_h2d - before.bytes_h2d, now.bytes_d2h - before.bytes_d2h)
                }
                None => (0, 0),
            };
            let iters = run.iters * jobs.len() as u64;
            self.emit_event(FleetEvent::QuantumEnd {
                device,
                jobs,
                iters,
                makespan_s: run.seconds,
                start_s,
                end_s: self.clocks[b],
                bytes_h2d,
                bytes_d2h,
            });
        }

        // Retire finished members; survivors keep running as a (smaller)
        // group on this backend, or are preempted at the slice boundary.
        let mut still: Vec<ActiveJob> = Vec::with_capacity(active.jobs.len());
        for aj in active.jobs {
            if aj.job.done() {
                self.serialized_s += aj.job.serial_equivalent_s(self.devices.spec(0));
                let name = self.backend_name(b);
                let at = self.clocks[b];
                self.complete(aj.job, name, at, false, false);
            } else {
                still.push(aj);
            }
        }
        if !still.is_empty() {
            let slice_over = active.slice_used >= active.slice_budget;
            if self.cfg.quantum_iters.is_some() && slice_over && !self.queue.is_empty() {
                // Preempt: spend each survivor's credit and send it back
                // through the fair-share queue.
                self.preemptions += 1;
                if observing {
                    let device = self.backend_name(b);
                    let ids: Vec<JobId> = still.iter().map(|a| a.job.id()).collect();
                    self.emit_event(FleetEvent::Preempted { device, jobs: ids });
                }
                for mut aj in still {
                    aj.job.unplaced();
                    let deficit = aj.deficit.saturating_sub(active.slice_used);
                    self.queue.push(QueueEntry { job: aj.job, deficit });
                }
            } else {
                if slice_over {
                    // Nobody is waiting: refresh the slice in place
                    // rather than churning through the queue.
                    active.slice_used = 0;
                    active.slice_budget = self.cfg.quantum_iters.unwrap_or(u64::MAX);
                }
                active.jobs = still;
                self.active[b] = Some(active);
            }
        }
        true
    }

    fn backend_name(&self, b: usize) -> String {
        if b < self.devices.len() {
            format!("dev{b}[{}]", self.devices.spec(b).name)
        } else {
            format!("cpu{}", b - self.devices.len())
        }
    }

    // -- reporting ----------------------------------------------------

    /// Fleet-level throughput, utilization and fairness summary.
    pub fn fleet_report(&self) -> FleetReport {
        let d = self.devices.len();
        let makespan_s = self.clocks.iter().copied().fold(0.0, f64::max);
        let device_busy_s: Vec<f64> = self.clocks[..d].to_vec();
        let cpu_busy_s: Vec<f64> = self.clocks[d..].to_vec();
        let device_utilization = device_busy_s
            .iter()
            .map(|&busy| if makespan_s > 0.0 { busy / makespan_s } else { 0.0 })
            .collect();
        let fleet_book = self.devices.books_sum();
        let tenant_stats: Vec<TenantStat> = self
            .done
            .values()
            .map(|r| TenantStat {
                name: r.name.clone(),
                tenant: r.tenant.clone(),
                submitted_s: r.submitted_s,
                started_s: r.started_s,
                finished_s: r.finished_s,
                wait_s: r.wait_s(),
                turnaround_s: r.turnaround_s(),
                cancelled: r.cancelled,
                rejected: r.rejected,
            })
            .collect();
        // Rejected jobs never competed for backend time; their zeroed
        // lifecycle would skew the fairness aggregates, so they are
        // excluded from the wait/turnaround statistics (the stats rows
        // themselves keep them, flagged).
        let served: Vec<&TenantStat> = tenant_stats.iter().filter(|t| !t.rejected).collect();
        let max_wait_s = served.iter().map(|t| t.wait_s).fold(0.0, f64::max);
        let max_turnaround_s = served.iter().map(|t| t.turnaround_s).fold(0.0, f64::max);
        let count = served.len().max(1) as f64;
        let mean_wait_s = served.iter().map(|t| t.wait_s).sum::<f64>() / count;
        let mean_turnaround_s = served.iter().map(|t| t.turnaround_s).sum::<f64>() / count;
        // Sort once, read three quantiles each — `percentile` would
        // clone + sort per call (six sorts per report).
        let mut waits: Vec<f64> = served.iter().map(|t| t.wait_s).collect();
        waits.sort_by(f64::total_cmp);
        let mut turnarounds: Vec<f64> = served.iter().map(|t| t.turnaround_s).collect();
        turnarounds.sort_by(f64::total_cmp);
        let jobs_cancelled = tenant_stats.iter().filter(|t| t.cancelled).count() as u64;
        let jobs_rejected = tenant_stats.iter().filter(|t| t.rejected).count() as u64;
        let jobs_completed = self.done.len() as u64 - jobs_cancelled - jobs_rejected;
        let jobs_running = self.active.iter().flatten().map(|a| a.jobs.len() as u64).sum();
        FleetReport {
            jobs_completed,
            jobs_cancelled,
            jobs_rejected,
            jobs_queued: self.queue.len() as u64,
            jobs_running,
            makespan_s,
            serialized_s: self.serialized_s,
            speedup_vs_serial: if makespan_s > 0.0 { self.serialized_s / makespan_s } else { 1.0 },
            device_busy_s,
            device_utilization,
            cpu_busy_s,
            jobs_per_sim_s: if makespan_s > 0.0 { jobs_completed as f64 / makespan_s } else { 0.0 },
            fused_launches: self.fused_launches,
            launches_saved: self.launches_saved,
            preemptions: self.preemptions,
            autosaves: self.autosaves,
            iterations_executed: self.iterations_executed,
            stream_makespan_s: self.stream_makespan_s,
            stream_serialized_s: self.stream_serialized_s,
            spans: self.spans,
            span_iterations: self.span_iterations,
            launch_overhead_saved_s: self.launch_overhead_saved_s,
            max_wait_s,
            mean_wait_s,
            max_turnaround_s,
            mean_turnaround_s,
            wait_p50_s: percentile_sorted(&waits, 0.50),
            wait_p95_s: percentile_sorted(&waits, 0.95),
            wait_p99_s: percentile_sorted(&waits, 0.99),
            turnaround_p50_s: percentile_sorted(&turnarounds, 0.50),
            turnaround_p95_s: percentile_sorted(&turnarounds, 0.95),
            turnaround_p99_s: percentile_sorted(&turnarounds, 0.99),
            tenant_stats,
            fleet_book,
            telemetry: self.telemetry.clone(),
        }
    }

    // -- checkpoint / resume ------------------------------------------

    /// Borrowed view of everything a delta checkpoint needs: live jobs
    /// by reference (so dirty detection never clones or re-encodes a
    /// clean job), plus the scalar state that always rides along. Used
    /// by [`DeltaCheckpointer`](crate::DeltaCheckpointer); full
    /// snapshots keep going through [`checkpoint`](Self::checkpoint).
    pub(crate) fn delta_parts(&self) -> DeltaParts<'_> {
        DeltaParts {
            device_books: (0..self.devices.len())
                .map(|i| self.devices.device(i).book().clone())
                .collect(),
            queue: &self.queue,
            active: &self.active,
            clocks: &self.clocks,
            rr_next: self.rr_next,
            next_id: self.next_id,
            next_seq: self.next_seq,
            done: &self.done,
            meta: &self.meta,
            cancel_requested: &self.cancel_requested,
            serialized_s: self.serialized_s,
            fused_launches: self.fused_launches,
            launches_saved: self.launches_saved,
            preemptions: self.preemptions,
            ticks: self.ticks,
            autosaves: self.autosaves,
            iterations_executed: self.iterations_executed,
            stream_makespan_s: self.stream_makespan_s,
            stream_serialized_s: self.stream_serialized_s,
            spans: self.spans,
            span_iterations: self.span_iterations,
            launch_overhead_saved_s: self.launch_overhead_saved_s,
        }
    }

    /// Snapshot the whole fleet: queued jobs (with their fair-share
    /// credits), in-flight cursors (mid search, mid slice), clocks,
    /// ledgers, lifecycle metadata and completed reports. Jobs submitted
    /// [`without_checkpoint`](crate::JobSpec::without_checkpoint) are
    /// skipped — they are simply absent after a restore. The snapshot
    /// is independent of the live scheduler; [`Scheduler::restore`]
    /// rebuilds an equivalent scheduler that continues deterministically.
    pub fn checkpoint(&self) -> FleetCheckpoint {
        let included = |id: &JobId| self.meta.get(id).is_none_or(|m| m.checkpoint);
        FleetCheckpoint {
            specs: (0..self.devices.len()).map(|i| self.devices.spec(i).clone()).collect(),
            device_books: (0..self.devices.len())
                .map(|i| self.devices.device(i).book().clone())
                .collect(),
            cfg: self.cfg.clone(),
            queue: self
                .queue
                .iter()
                .filter(|e| included(&e.job.id()))
                .map(|e| QueueEntry { job: e.job.clone_box(), deficit: e.deficit })
                .collect(),
            active: self
                .active
                .iter()
                .map(|slot| {
                    slot.as_ref().and_then(|a| {
                        let jobs: Vec<ActiveJob> = a
                            .jobs
                            .iter()
                            .filter(|aj| included(&aj.job.id()))
                            .map(|aj| ActiveJob { job: aj.job.clone_box(), deficit: aj.deficit })
                            .collect();
                        (!jobs.is_empty()).then_some(ActiveSnapshot {
                            jobs,
                            started_s: a.started_s,
                            slice_budget: a.slice_budget,
                            slice_used: a.slice_used,
                        })
                    })
                })
                .collect(),
            clocks: self.clocks.clone(),
            rr_next: self.rr_next,
            next_id: self.next_id,
            next_seq: self.next_seq,
            done: self.done.clone(),
            meta: self.meta.clone(),
            cancel_requested: self.cancel_requested.clone(),
            serialized_s: self.serialized_s,
            fused_launches: self.fused_launches,
            launches_saved: self.launches_saved,
            preemptions: self.preemptions,
            ticks: self.ticks,
            autosaves: self.autosaves,
            iterations_executed: self.iterations_executed,
            stream_makespan_s: self.stream_makespan_s,
            stream_serialized_s: self.stream_serialized_s,
            spans: self.spans,
            span_iterations: self.span_iterations,
            launch_overhead_saved_s: self.launch_overhead_saved_s,
        }
    }

    /// Rebuild a scheduler from a [`checkpoint`](Self::checkpoint) and
    /// continue where it left off.
    pub fn restore(checkpoint: FleetCheckpoint) -> Self {
        let mut devices = MultiDevice::new_from_specs(checkpoint.specs);
        for (i, book) in checkpoint.device_books.iter().enumerate() {
            devices.device_mut(i).charge(book);
        }
        // The envelope fast-path set is derivable: every non-terminal
        // job whose metadata carries a deadline or budget.
        let policed: BTreeSet<JobId> = checkpoint
            .meta
            .iter()
            .filter(|(id, m)| {
                (m.deadline_s.is_some() || m.iter_budget.is_some())
                    && !checkpoint.done.contains_key(id)
            })
            .map(|(id, _)| *id)
            .collect();
        // Telemetry is observational and not checkpointed: a restored
        // fleet records a fresh series from its inherited tick counter.
        let telemetry = checkpoint
            .cfg
            .telemetry_every_ticks
            .map(|_| Telemetry::with_cap(checkpoint.cfg.telemetry_max_samples));
        // The cumulative outcome counters are derivable: one pass over
        // the restored reports (restore is rare; ticks are not).
        let (mut completed_count, mut cancelled_count, mut rejected_count) = (0u64, 0u64, 0u64);
        for r in checkpoint.done.values() {
            if r.rejected {
                rejected_count += 1;
            } else if r.cancelled {
                cancelled_count += 1;
            } else {
                completed_count += 1;
            }
        }
        Self {
            devices,
            cfg: checkpoint.cfg,
            queue: checkpoint.queue,
            active: checkpoint
                .active
                .into_iter()
                .map(|slot| {
                    slot.map(|a| Active {
                        jobs: a.jobs,
                        started_s: a.started_s,
                        slice_budget: a.slice_budget,
                        slice_used: a.slice_used,
                    })
                })
                .collect(),
            clocks: checkpoint.clocks,
            rr_next: checkpoint.rr_next,
            next_id: checkpoint.next_id,
            next_seq: checkpoint.next_seq,
            done: checkpoint.done,
            meta: checkpoint.meta,
            cancel_requested: checkpoint.cancel_requested,
            policed,
            serialized_s: checkpoint.serialized_s,
            fused_launches: checkpoint.fused_launches,
            launches_saved: checkpoint.launches_saved,
            preemptions: checkpoint.preemptions,
            ticks: checkpoint.ticks,
            autosaves: checkpoint.autosaves,
            iterations_executed: checkpoint.iterations_executed,
            stream_makespan_s: checkpoint.stream_makespan_s,
            stream_serialized_s: checkpoint.stream_serialized_s,
            spans: checkpoint.spans,
            span_iterations: checkpoint.span_iterations,
            launch_overhead_saved_s: checkpoint.launch_overhead_saved_s,
            telemetry,
            completed_count,
            cancelled_count,
            rejected_count,
            // Observability is never checkpointed: the restored fleet
            // starts unobserved until a sink/registry is re-attached.
            observe: ObserveState::default(),
        }
    }
}

pub(crate) struct ActiveSnapshot {
    pub jobs: Vec<ActiveJob>,
    pub started_s: f64,
    pub slice_budget: u64,
    pub slice_used: u64,
}

/// Borrowed scheduler state for delta checkpoints (see
/// [`Scheduler::delta_parts`]).
pub(crate) struct DeltaParts<'a> {
    pub device_books: Vec<TimeBook>,
    pub queue: &'a [QueueEntry],
    pub active: &'a [Option<Active>],
    pub clocks: &'a [f64],
    pub rr_next: usize,
    pub next_id: u64,
    pub next_seq: u64,
    pub done: &'a BTreeMap<JobId, JobReport>,
    pub meta: &'a BTreeMap<JobId, JobMeta>,
    pub cancel_requested: &'a BTreeSet<JobId>,
    pub serialized_s: f64,
    pub fused_launches: u64,
    pub launches_saved: u64,
    pub preemptions: u64,
    pub ticks: u64,
    pub autosaves: u64,
    pub iterations_executed: u64,
    pub stream_makespan_s: f64,
    pub stream_serialized_s: f64,
    pub spans: u64,
    pub span_iterations: u64,
    pub launch_overhead_saved_s: f64,
}

/// A self-contained fleet snapshot (see [`Scheduler::checkpoint`]).
///
/// Held in memory; queued *and in-flight* jobs are deep-copied, including
/// mid-search cursor state, so a restored scheduler continues
/// deterministically and produces the same results the original would
/// have. [`save`](Self::save) / [`load`](Self::load) round-trip the
/// snapshot through a hand-rolled byte format so fleets survive process
/// restarts (see the `persist` module docs for the format).
pub struct FleetCheckpoint {
    pub(crate) specs: Vec<DeviceSpec>,
    pub(crate) device_books: Vec<TimeBook>,
    pub(crate) cfg: SchedulerConfig,
    pub(crate) queue: Vec<QueueEntry>,
    pub(crate) active: Vec<Option<ActiveSnapshot>>,
    pub(crate) clocks: Vec<f64>,
    pub(crate) rr_next: usize,
    pub(crate) next_id: u64,
    pub(crate) next_seq: u64,
    pub(crate) done: BTreeMap<JobId, JobReport>,
    pub(crate) meta: BTreeMap<JobId, JobMeta>,
    pub(crate) cancel_requested: BTreeSet<JobId>,
    pub(crate) serialized_s: f64,
    pub(crate) fused_launches: u64,
    pub(crate) launches_saved: u64,
    pub(crate) preemptions: u64,
    pub(crate) ticks: u64,
    pub(crate) autosaves: u64,
    pub(crate) iterations_executed: u64,
    pub(crate) stream_makespan_s: f64,
    pub(crate) stream_serialized_s: f64,
    pub(crate) spans: u64,
    pub(crate) span_iterations: u64,
    pub(crate) launch_overhead_saved_s: f64,
}

impl FleetCheckpoint {
    /// Jobs captured while queued or in flight (not yet completed).
    pub fn pending_jobs(&self) -> usize {
        self.queue.len() + self.in_flight_jobs()
    }

    /// The scheduler tick counter at capture time — the phase a
    /// restored fleet resumes from (steal barriers and cadences key off
    /// it).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Jobs captured mid-run (cursor state preserved).
    pub fn in_flight_jobs(&self) -> usize {
        self.active.iter().flatten().map(|a| a.jobs.len()).sum()
    }
}
