//! The fleet scheduler: queue, placement, fused stepping, checkpointing.

use crate::exec::{BatchKey, BinaryTabuJob, JobExec, QapJob};
use crate::job::{BinaryJob, JobHandle, JobId, JobReport, JobStatus, QapJobSpec};
use crate::report::FleetReport;
use lnls_core::IncrementalEval;
use lnls_gpu_sim::{DeviceSpec, HostSpec, MultiDevice, TimeBook};
use lnls_neighborhood::Neighborhood;
use std::collections::BTreeMap;

/// How queued jobs are placed onto idle backends.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PlacePolicy {
    /// Cycle through backends in fixed order.
    RoundRobin,
    /// Prefer the backend whose clock (busy time so far) is lowest,
    /// breaking ties toward devices, then lower index.
    #[default]
    LeastLoaded,
}

/// Scheduler knobs.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Placement policy.
    pub policy: PlacePolicy,
    /// CPU worker backends in addition to the device fleet.
    pub cpu_workers: usize,
    /// Fuse up to this many same-key jobs per device assignment
    /// (1 disables launch batching).
    pub max_batch: usize,
    /// Host description for CPU-worker pricing.
    pub host: HostSpec,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            policy: PlacePolicy::default(),
            cpu_workers: 0,
            max_batch: 8,
            host: HostSpec::xeon_3ghz(),
        }
    }
}

struct Active {
    jobs: Vec<Box<dyn JobExec>>,
    started_s: f64,
}

/// A batched multi-tenant search scheduler over a simulated device fleet.
///
/// Submit jobs ([`submit_binary`](Self::submit_binary),
/// [`submit_qap`](Self::submit_qap)), then drive the simulation with
/// [`tick`](Self::tick) / [`run_until_idle`](Self::run_until_idle) /
/// [`await_report`](Self::await_report). All time is *modeled* time from
/// the gpu-sim cost models; execution is deterministic, so fleet runs
/// return bit-identical search results to solo runs of the same jobs.
///
/// Backends are the devices of the owned [`MultiDevice`] plus
/// `cpu_workers` host workers. Each backend executes one assignment at a
/// time; a device assignment may be a *fused group* of up to `max_batch`
/// jobs sharing a batch key, whose per-iteration evaluations ride in one
/// launch (see [`lnls_core::BatchedExplorer`]).
pub struct Scheduler {
    devices: MultiDevice,
    cfg: SchedulerConfig,
    queue: Vec<Box<dyn JobExec>>,
    active: Vec<Option<Active>>,
    clocks: Vec<f64>,
    rr_next: usize,
    next_id: u64,
    next_seq: u64,
    done: BTreeMap<JobId, JobReport>,
    serialized_s: f64,
    fused_launches: u64,
    launches_saved: u64,
}

impl Scheduler {
    /// A scheduler owning `devices` with the given knobs.
    pub fn new(devices: MultiDevice, cfg: SchedulerConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        let backends = devices.len() + cfg.cpu_workers;
        Self {
            devices,
            cfg,
            queue: Vec::new(),
            active: (0..backends).map(|_| None).collect(),
            clocks: vec![0.0; backends],
            rr_next: 0,
            next_id: 0,
            next_seq: 0,
            done: BTreeMap::new(),
            serialized_s: 0.0,
            fused_launches: 0,
            launches_saved: 0,
        }
    }

    /// Convenience: `count` identical devices of `spec`.
    pub fn with_uniform_fleet(count: usize, spec: DeviceSpec, cfg: SchedulerConfig) -> Self {
        Self::new(MultiDevice::new_uniform(count, spec), cfg)
    }

    /// The owned fleet.
    pub fn devices(&self) -> &MultiDevice {
        &self.devices
    }

    fn enqueue(&mut self, job: Box<dyn JobExec>) -> JobHandle {
        let handle = JobHandle { id: job.id() };
        self.queue.push(job);
        handle
    }

    fn fresh_ids(&mut self) -> (JobId, u64) {
        let id = JobId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        (id, seq)
    }

    /// Submit a bit-string search job.
    pub fn submit_binary<P, N>(&mut self, job: BinaryJob<P, N>) -> JobHandle
    where
        P: IncrementalEval + 'static,
        N: Neighborhood + Clone + Send + Sync + 'static,
    {
        let (id, seq) = self.fresh_ids();
        let host = self.cfg.host.clone();
        self.enqueue(Box::new(BinaryTabuJob::new(id, seq, job, host)))
    }

    /// Submit a QAP robust-tabu job.
    pub fn submit_qap(&mut self, job: QapJobSpec) -> JobHandle {
        let (id, seq) = self.fresh_ids();
        self.enqueue(Box::new(QapJob {
            id,
            name: job.name,
            priority: job.priority,
            seq,
            instance: std::sync::Arc::new(job.instance),
            config: job.config,
            init: job.init,
            result: None,
            charged_s: 0.0,
        }))
    }

    /// Where `handle`'s job currently is.
    pub fn status(&self, handle: &JobHandle) -> JobStatus {
        if self.done.contains_key(&handle.id) {
            return JobStatus::Done;
        }
        if self.queue.iter().any(|j| j.id() == handle.id) {
            return JobStatus::Queued;
        }
        let running =
            self.active.iter().flatten().flat_map(|a| a.jobs.iter()).any(|j| j.id() == handle.id);
        if running {
            JobStatus::Running
        } else {
            JobStatus::Unknown
        }
    }

    /// The report of a completed job, if it completed.
    pub fn report(&self, handle: &JobHandle) -> Option<&JobReport> {
        self.done.get(&handle.id)
    }

    /// All completed reports, in job-id order.
    pub fn reports(&self) -> impl Iterator<Item = &JobReport> {
        self.done.values()
    }

    /// Drive the simulation until `handle` completes, then return its
    /// report.
    ///
    /// # Panics
    /// Panics if the job is unknown to this scheduler.
    pub fn await_report(&mut self, handle: &JobHandle) -> &JobReport {
        while !self.done.contains_key(&handle.id) {
            assert!(
                self.tick(),
                "job {} cannot complete: scheduler went idle without it",
                handle.id
            );
        }
        &self.done[&handle.id]
    }

    /// Run until every submitted job has completed.
    pub fn run_until_idle(&mut self) {
        while self.tick() {}
    }

    /// Advance the fleet: place queued jobs on idle backends, then run
    /// one step (one fused iteration, or one atomic job run) on every
    /// busy backend. Returns `false` once the fleet is idle.
    pub fn tick(&mut self) -> bool {
        self.place();
        let mut progressed = false;
        for b in 0..self.active.len() {
            progressed |= self.step_backend(b);
        }
        progressed || !self.queue.is_empty()
    }

    // -- placement ----------------------------------------------------

    fn idle_backends(&self) -> Vec<usize> {
        (0..self.active.len()).filter(|&b| self.active[b].is_none()).collect()
    }

    /// Index into `queue` of the next job by (priority desc, seq asc).
    fn next_job_index(&self) -> Option<usize> {
        (0..self.queue.len()).min_by_key(|&i| {
            let j = &self.queue[i];
            (std::cmp::Reverse(j.priority()), j.seq())
        })
    }

    fn place(&mut self) {
        loop {
            let idle = self.idle_backends();
            if idle.is_empty() || self.queue.is_empty() {
                return;
            }
            let backend = match self.cfg.policy {
                PlacePolicy::RoundRobin => {
                    // Next idle backend at or after the cursor.
                    let b = (0..self.active.len())
                        .map(|o| (self.rr_next + o) % self.active.len())
                        .find(|b| self.active[*b].is_none())
                        .expect("idle set is non-empty");
                    self.rr_next = (b + 1) % self.active.len();
                    b
                }
                PlacePolicy::LeastLoaded => *idle
                    .iter()
                    .min_by(|&&a, &&b| {
                        self.clocks[a].total_cmp(&self.clocks[b]).then_with(|| a.cmp(&b))
                    })
                    .expect("idle set is non-empty"),
            };
            let lead_idx = self.next_job_index().expect("queue is non-empty");
            let lead = self.queue.swap_remove(lead_idx);
            let mut jobs = vec![lead];
            // Launch batching: device backends co-schedule same-key jobs.
            // Fusing only amortizes overhead and transfer latency (kernel
            // seconds still add up), so parallel devices beat wider
            // batches: cap the group so the key's jobs spread over every
            // idle device instead of piling onto this one.
            if backend < self.devices.len() && self.cfg.max_batch > 1 {
                if let Some(key) = jobs[0].batch_key() {
                    let same_key = 1 + self
                        .queue
                        .iter()
                        .filter(|j| j.batch_key().as_ref() == Some(&key))
                        .count();
                    let idle_devices = (0..self.devices.len())
                        .filter(|&b| self.active[b].is_none())
                        .count()
                        .max(1);
                    let cap = self.cfg.max_batch.min(same_key.div_ceil(idle_devices)).max(1);
                    self.drain_batch_peers(&key, &mut jobs, cap);
                }
            }
            self.active[backend] = Some(Active { jobs, started_s: self.clocks[backend] });
        }
    }

    fn drain_batch_peers(&mut self, key: &BatchKey, jobs: &mut Vec<Box<dyn JobExec>>, cap: usize) {
        while jobs.len() < cap {
            let peer = (0..self.queue.len())
                .filter(|&i| self.queue[i].batch_key().as_ref() == Some(key))
                .min_by_key(|&i| {
                    let j = &self.queue[i];
                    (std::cmp::Reverse(j.priority()), j.seq())
                });
            match peer {
                Some(i) => jobs.push(self.queue.swap_remove(i)),
                None => return,
            }
        }
    }

    // -- stepping -----------------------------------------------------

    fn step_backend(&mut self, b: usize) -> bool {
        let Some(mut active) = self.active[b].take() else {
            return false;
        };
        let is_device = b < self.devices.len();
        let seconds = if is_device {
            let dev = self.devices.device_mut(b);
            if active.jobs.len() > 1 {
                let (lead, peers) = active.jobs.split_at_mut(1);
                let mut peer_refs: Vec<&mut Box<dyn JobExec>> = peers.iter_mut().collect();
                let lanes = peer_refs.len() as u64 + 1;
                let s = lead[0].step_batch(&mut peer_refs, dev);
                self.fused_launches += 1;
                self.launches_saved += lanes - 1;
                s
            } else {
                active.jobs[0].step_device(dev)
            }
        } else {
            active.jobs[0].step_host(&self.cfg.host)
        };
        self.clocks[b] += seconds;

        // Retire finished members; survivors keep running as a (smaller)
        // group on this backend.
        let mut still: Vec<Box<dyn JobExec>> = Vec::with_capacity(active.jobs.len());
        for mut job in active.jobs {
            if job.done() {
                self.serialized_s += job.serial_equivalent_s(self.devices.spec(0));
                let report = job.finish(self.backend_name(b), active.started_s, self.clocks[b]);
                self.done.insert(report.id, report);
            } else {
                still.push(job);
            }
        }
        if !still.is_empty() {
            self.active[b] = Some(Active { jobs: still, started_s: active.started_s });
        }
        true
    }

    fn backend_name(&self, b: usize) -> String {
        if b < self.devices.len() {
            format!("dev{b}[{}]", self.devices.spec(b).name)
        } else {
            format!("cpu{}", b - self.devices.len())
        }
    }

    // -- reporting ----------------------------------------------------

    /// Fleet-level throughput and utilization summary.
    pub fn fleet_report(&self) -> FleetReport {
        let d = self.devices.len();
        let makespan_s = self.clocks.iter().copied().fold(0.0, f64::max);
        let device_busy_s: Vec<f64> = self.clocks[..d].to_vec();
        let cpu_busy_s: Vec<f64> = self.clocks[d..].to_vec();
        let device_utilization = device_busy_s
            .iter()
            .map(|&busy| if makespan_s > 0.0 { busy / makespan_s } else { 0.0 })
            .collect();
        let fleet_book = self.devices.books_sum();
        let jobs_completed = self.done.len() as u64;
        let jobs_running = self.active.iter().flatten().map(|a| a.jobs.len() as u64).sum();
        FleetReport {
            jobs_completed,
            jobs_queued: self.queue.len() as u64,
            jobs_running,
            makespan_s,
            serialized_s: self.serialized_s,
            speedup_vs_serial: if makespan_s > 0.0 { self.serialized_s / makespan_s } else { 1.0 },
            device_busy_s,
            device_utilization,
            cpu_busy_s,
            jobs_per_sim_s: if makespan_s > 0.0 { jobs_completed as f64 / makespan_s } else { 0.0 },
            fused_launches: self.fused_launches,
            launches_saved: self.launches_saved,
            fleet_book,
        }
    }

    // -- checkpoint / resume ------------------------------------------

    /// Snapshot the whole fleet: queued jobs, in-flight cursors (mid
    /// search), clocks, ledgers and completed reports. The snapshot is
    /// independent of the live scheduler; [`Scheduler::restore`] rebuilds
    /// an equivalent scheduler that continues deterministically.
    pub fn checkpoint(&self) -> FleetCheckpoint {
        FleetCheckpoint {
            specs: (0..self.devices.len()).map(|i| self.devices.spec(i).clone()).collect(),
            device_books: (0..self.devices.len())
                .map(|i| self.devices.device(i).book().clone())
                .collect(),
            cfg: self.cfg.clone(),
            queue: self.queue.iter().map(|j| j.clone_box()).collect(),
            active: self
                .active
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|a| ActiveSnapshot {
                        jobs: a.jobs.iter().map(|j| j.clone_box()).collect(),
                        started_s: a.started_s,
                    })
                })
                .collect(),
            clocks: self.clocks.clone(),
            rr_next: self.rr_next,
            next_id: self.next_id,
            next_seq: self.next_seq,
            done: self.done.clone(),
            serialized_s: self.serialized_s,
            fused_launches: self.fused_launches,
            launches_saved: self.launches_saved,
        }
    }

    /// Rebuild a scheduler from a [`checkpoint`](Self::checkpoint) and
    /// continue where it left off.
    pub fn restore(checkpoint: FleetCheckpoint) -> Self {
        let mut devices = MultiDevice::new_from_specs(checkpoint.specs);
        for (i, book) in checkpoint.device_books.iter().enumerate() {
            devices.device_mut(i).charge(book);
        }
        Self {
            devices,
            cfg: checkpoint.cfg,
            queue: checkpoint.queue,
            active: checkpoint
                .active
                .into_iter()
                .map(|slot| slot.map(|a| Active { jobs: a.jobs, started_s: a.started_s }))
                .collect(),
            clocks: checkpoint.clocks,
            rr_next: checkpoint.rr_next,
            next_id: checkpoint.next_id,
            next_seq: checkpoint.next_seq,
            done: checkpoint.done,
            serialized_s: checkpoint.serialized_s,
            fused_launches: checkpoint.fused_launches,
            launches_saved: checkpoint.launches_saved,
        }
    }
}

struct ActiveSnapshot {
    jobs: Vec<Box<dyn JobExec>>,
    started_s: f64,
}

/// A self-contained fleet snapshot (see [`Scheduler::checkpoint`]).
///
/// Held in memory; queued *and in-flight* jobs are deep-copied, including
/// mid-search cursor state, so a restored scheduler continues
/// deterministically and produces the same results the original would
/// have.
pub struct FleetCheckpoint {
    specs: Vec<DeviceSpec>,
    device_books: Vec<TimeBook>,
    cfg: SchedulerConfig,
    queue: Vec<Box<dyn JobExec>>,
    active: Vec<Option<ActiveSnapshot>>,
    clocks: Vec<f64>,
    rr_next: usize,
    next_id: u64,
    next_seq: u64,
    done: BTreeMap<JobId, JobReport>,
    serialized_s: f64,
    fused_launches: u64,
    launches_saved: u64,
}

impl FleetCheckpoint {
    /// Jobs captured while queued or in flight (not yet completed).
    pub fn pending_jobs(&self) -> usize {
        self.queue.len() + self.active.iter().flatten().map(|a| a.jobs.len()).sum::<usize>()
    }

    /// Jobs captured mid-run (cursor state preserved).
    pub fn in_flight_jobs(&self) -> usize {
        self.active.iter().flatten().map(|a| a.jobs.len()).sum()
    }
}
