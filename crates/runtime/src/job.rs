//! Job descriptions, handles and per-job reports.

use lnls_core::{BitString, SearchResult, TabuSearch};
use lnls_neighborhood::Neighborhood;
use lnls_qap::{Permutation, QapInstance, RtsConfig, RtsResult};
use std::fmt;

/// Opaque identity of a submitted job.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub(crate) u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Typed handle returned by `submit_*`; poll it with
/// [`Scheduler::status`](crate::Scheduler::status) or block with
/// [`Scheduler::await_report`](crate::Scheduler::await_report).
#[derive(Copy, Clone, Debug)]
pub struct JobHandle {
    pub(crate) id: JobId,
}

impl JobHandle {
    /// The job's identity.
    pub fn id(&self) -> JobId {
        self.id
    }
}

/// Where a job currently is in its lifecycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the scheduler queue.
    Queued,
    /// Assigned to a backend (possibly inside a fused batch).
    Running,
    /// Finished; a [`JobReport`] is available.
    Done,
    /// Cancelled via [`Scheduler::cancel`](crate::Scheduler::cancel); a
    /// [`JobReport`] with the partial best-so-far is available.
    Cancelled,
    /// Unknown to this scheduler.
    Unknown,
}

/// What a finished job produced — binary searches and QAP runs report
/// through their native result types.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// A bit-string search driven by [`TabuSearch`].
    Binary(SearchResult),
    /// A robust-tabu QAP run.
    Qap(RtsResult),
}

impl JobOutcome {
    /// Best fitness/cost reached.
    pub fn best_fitness(&self) -> i64 {
        match self {
            JobOutcome::Binary(r) => r.best_fitness,
            JobOutcome::Qap(r) => r.best_cost,
        }
    }

    /// Iterations executed.
    pub fn iterations(&self) -> u64 {
        match self {
            JobOutcome::Binary(r) => r.iterations,
            JobOutcome::Qap(r) => r.iterations,
        }
    }

    /// True if the job hit its target.
    pub fn success(&self) -> bool {
        match self {
            JobOutcome::Binary(r) => r.success,
            JobOutcome::Qap(r) => r.success,
        }
    }

    /// The binary search result, if this was a binary job.
    pub fn as_binary(&self) -> Option<&SearchResult> {
        match self {
            JobOutcome::Binary(r) => Some(r),
            JobOutcome::Qap(_) => None,
        }
    }

    /// The QAP result, if this was a QAP job.
    pub fn as_qap(&self) -> Option<&RtsResult> {
        match self {
            JobOutcome::Qap(r) => Some(r),
            JobOutcome::Binary(_) => None,
        }
    }
}

/// Everything known about one completed (or cancelled) job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Job identity.
    pub id: JobId,
    /// Submission name.
    pub name: String,
    /// Backend that completed the job (e.g. `dev0[GTX 280 …]`, `cpu1`).
    pub backend: String,
    /// Simulated fleet time at which the job was submitted.
    pub submitted_s: f64,
    /// Simulated fleet time at which the job *first* left the queue
    /// (under preemption a job may leave and re-enter it many times).
    pub started_s: f64,
    /// Simulated fleet time at which the job completed.
    pub finished_s: f64,
    /// Iterations that ran inside a fused batch with other tenants.
    pub fused_iterations: u64,
    /// True when the job was drained by
    /// [`Scheduler::cancel`](crate::Scheduler::cancel); the outcome then
    /// holds the best-so-far at the cancellation boundary.
    pub cancelled: bool,
    /// The search outcome.
    pub outcome: JobOutcome,
}

impl JobReport {
    /// Queue wait: submission → first placement (seconds, modeled).
    pub fn wait_s(&self) -> f64 {
        (self.started_s - self.submitted_s).max(0.0)
    }

    /// Turnaround: submission → completion (seconds, modeled).
    pub fn turnaround_s(&self) -> f64 {
        (self.finished_s - self.submitted_s).max(0.0)
    }
}

/// A bit-string search job: problem + neighborhood + driver + initial
/// solution, submitted via
/// [`Scheduler::submit_binary`](crate::Scheduler::submit_binary).
///
/// Jobs whose `(problem family, neighborhood)` coincide are eligible for
/// launch batching — their per-iteration evaluations fuse into one
/// simulated launch. The family key is
/// [`BinaryProblem::name`](lnls_core::BinaryProblem::name), so instances
/// of the same shape batch automatically.
pub struct BinaryJob<P, N> {
    /// Submission name (reports only).
    pub name: String,
    /// The problem instance (moved into the scheduler).
    pub problem: P,
    /// Neighborhood to search.
    pub hood: N,
    /// Driver configuration (budget, seed, strategy, target).
    pub search: TabuSearch,
    /// Initial solution — explicit so fleet runs are bit-comparable to
    /// solo runs.
    pub init: BitString,
    /// Larger runs first when the queue is contended (0 = bulk).
    pub priority: u8,
    /// Per-iteration incremental-state upload, bytes (pricing input).
    /// Defaults to `4·dim` — the order of the auxiliary vectors every
    /// bundled problem re-uploads per iteration.
    pub state_h2d_bytes: Option<u64>,
}

impl<P, N: Neighborhood> BinaryJob<P, N> {
    /// A job with default priority and pricing hints.
    pub fn new(
        name: impl Into<String>,
        problem: P,
        hood: N,
        search: TabuSearch,
        init: BitString,
    ) -> Self {
        Self { name: name.into(), problem, hood, search, init, priority: 0, state_h2d_bytes: None }
    }

    /// Set the queue priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Override the per-iteration state-upload pricing hint.
    pub fn with_state_bytes(mut self, bytes: u64) -> Self {
        self.state_h2d_bytes = Some(bytes);
        self
    }
}

/// A QAP robust-tabu job, submitted via
/// [`Scheduler::submit_qap`](crate::Scheduler::submit_qap).
///
/// QAP runs are driven through a steppable
/// [`RtsCursor`](lnls_qap::RtsCursor), so they batch into quanta,
/// checkpoint mid-run, and preempt like every other tenant. They never
/// fuse (the swap neighborhood shares no batch key with binary jobs).
pub struct QapJobSpec {
    /// Submission name (reports only).
    pub name: String,
    /// The instance (moved into the scheduler).
    pub instance: QapInstance,
    /// Driver configuration.
    pub config: RtsConfig,
    /// Initial assignment.
    pub init: Permutation,
    /// Larger runs first when the queue is contended (0 = bulk).
    pub priority: u8,
}

impl QapJobSpec {
    /// A job with default priority.
    pub fn new(
        name: impl Into<String>,
        instance: QapInstance,
        config: RtsConfig,
        init: Permutation,
    ) -> Self {
        Self { name: name.into(), instance, config, init, priority: 0 }
    }

    /// Set the queue priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}
