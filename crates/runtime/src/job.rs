//! Job descriptions, handles, outcomes and per-job reports.

use crate::exec::{
    anneal_tag, read_anneal_job, read_qap_job, read_tabu_job, tabu_tag, AnnealExec, BinaryTabuJob,
    JobExec, QapJob, QAP_TAG,
};
use crate::submit::{JobCodec, SearchJob, SubmitCtx};
use lnls_core::persist::{Persist, PersistError, PersistTag, Reader};
use lnls_core::{BitString, IncrementalEval, SearchResult, SimulatedAnnealing, TabuSearch};
use lnls_neighborhood::Neighborhood;
use lnls_qap::{Permutation, QapInstance, RtsConfig, RtsResult};
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Opaque identity of a submitted job.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub(crate) u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Typed handle returned by submission; poll it with
/// [`Scheduler::status`](crate::Scheduler::status) or block with
/// [`Scheduler::await_report`](crate::Scheduler::await_report). Handles
/// are `Copy` — every handle-taking method accepts them by value.
#[derive(Copy, Clone, Debug)]
pub struct JobHandle {
    pub(crate) id: JobId,
}

impl JobHandle {
    /// The job's identity.
    pub fn id(&self) -> JobId {
        self.id
    }
}

/// Where a job currently is in its lifecycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the scheduler queue.
    Queued,
    /// Assigned to a backend (possibly inside a fused batch).
    Running,
    /// Finished; a [`JobReport`] is available.
    Done,
    /// Cancelled via [`Scheduler::cancel`](crate::Scheduler::cancel) (or
    /// drained past its deadline); a [`JobReport`] with the partial
    /// best-so-far is available.
    Cancelled,
    /// Evicted by admission control (shed to make room for a
    /// higher-priority submission); a [`JobReport`] marked
    /// [`rejected`](JobReport::rejected) is available.
    Rejected,
    /// Unknown to this scheduler.
    Unknown,
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Rejected => "rejected",
            JobStatus::Unknown => "unknown",
        })
    }
}

/// What a finished job produced: the generic record every search
/// reports — best fitness, iterations, success — plus a typed detail
/// any workload may attach and callers may downcast.
///
/// The bundled executors attach their native result types
/// ([`SearchResult`] for tabu *and* annealing walks over bit-strings,
/// [`RtsResult`] for QAP), so the long-standing
/// [`as_binary`](Self::as_binary) / [`as_qap`](Self::as_qap) accessors
/// keep working; new workloads attach whatever they like via
/// [`with_detail`](Self::with_detail) and read it back with
/// [`detail`](Self::detail).
#[derive(Clone)]
pub struct JobOutcome {
    best_fitness: i64,
    iterations: u64,
    success: bool,
    detail: Arc<dyn Any + Send + Sync>,
}

impl fmt::Debug for JobOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobOutcome")
            .field("best_fitness", &self.best_fitness)
            .field("iterations", &self.iterations)
            .field("success", &self.success)
            .finish_non_exhaustive()
    }
}

impl JobOutcome {
    /// A bare record with no typed detail.
    pub fn new(best_fitness: i64, iterations: u64, success: bool) -> Self {
        Self::with_detail(best_fitness, iterations, success, ())
    }

    /// A record carrying a typed detail for downcast access.
    pub fn with_detail<T: Any + Send + Sync>(
        best_fitness: i64,
        iterations: u64,
        success: bool,
        detail: T,
    ) -> Self {
        Self { best_fitness, iterations, success, detail: Arc::new(detail) }
    }

    /// Wrap a bit-string search result (tabu or annealing walks).
    pub fn binary(result: SearchResult) -> Self {
        Self::with_detail(result.best_fitness, result.iterations, result.success, result)
    }

    /// Wrap a QAP robust-tabu result.
    pub fn qap(result: RtsResult) -> Self {
        Self::with_detail(result.best_cost, result.iterations, result.success, result)
    }

    /// Best fitness/cost reached.
    pub fn best_fitness(&self) -> i64 {
        self.best_fitness
    }

    /// Iterations executed.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// True if the job hit its target.
    pub fn success(&self) -> bool {
        self.success
    }

    /// The typed detail, if it is a `T`.
    pub fn detail<T: Any>(&self) -> Option<&T> {
        self.detail.downcast_ref()
    }

    /// The full bit-string search result, if this job was one (binary
    /// tabu jobs and annealing jobs both report through
    /// [`SearchResult`]).
    pub fn as_binary(&self) -> Option<&SearchResult> {
        self.detail()
    }

    /// The QAP result, if this was a QAP job.
    pub fn as_qap(&self) -> Option<&RtsResult> {
        self.detail()
    }
}

/// Everything known about one completed (or cancelled/rejected) job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Job identity.
    pub id: JobId,
    /// Submission name.
    pub name: String,
    /// Tenant attribution from the submission envelope.
    pub tenant: String,
    /// Backend that completed the job (e.g. `dev0[GTX 280 …]`, `cpu1`).
    pub backend: String,
    /// Simulated fleet time at which the job was submitted.
    pub submitted_s: f64,
    /// Simulated fleet time at which the job *first* left the queue
    /// (under preemption a job may leave and re-enter it many times).
    pub started_s: f64,
    /// Simulated fleet time at which the job completed.
    pub finished_s: f64,
    /// Iterations that ran inside a fused batch with other tenants.
    pub fused_iterations: u64,
    /// True when the job was drained by
    /// [`Scheduler::cancel`](crate::Scheduler::cancel) or a missed
    /// deadline; the outcome then holds the best-so-far at the drain
    /// boundary.
    pub cancelled: bool,
    /// True when the job was evicted by admission control; the outcome
    /// holds whatever had been computed before the eviction.
    pub rejected: bool,
    /// The search outcome.
    pub outcome: JobOutcome,
}

impl JobReport {
    /// Queue wait: submission → first placement (seconds, modeled).
    pub fn wait_s(&self) -> f64 {
        (self.started_s - self.submitted_s).max(0.0)
    }

    /// Turnaround: submission → completion (seconds, modeled).
    pub fn turnaround_s(&self) -> f64 {
        (self.finished_s - self.submitted_s).max(0.0)
    }
}

// ---------------------------------------------------------------------
// Bundled job types
// ---------------------------------------------------------------------

/// A bit-string search job: problem + neighborhood + driver + initial
/// solution, submitted via the generic
/// [`Scheduler::submit`](crate::Scheduler::submit).
///
/// Jobs whose `(problem family, neighborhood)` coincide are eligible for
/// launch batching — their per-iteration evaluations fuse into one
/// simulated launch. The family key is
/// [`BinaryProblem::name`](lnls_core::BinaryProblem::name), so instances
/// of the same shape batch automatically.
pub struct BinaryJob<P, N> {
    /// Submission name (reports only).
    pub name: String,
    /// The problem instance (moved into the scheduler).
    pub problem: P,
    /// Neighborhood to search.
    pub hood: N,
    /// Driver configuration (budget, seed, strategy, target).
    pub search: TabuSearch,
    /// Initial solution — explicit so fleet runs are bit-comparable to
    /// solo runs.
    pub init: BitString,
    /// Larger runs first when the queue is contended (0 = bulk).
    pub priority: u8,
    /// Per-iteration incremental-state upload, bytes (pricing input).
    /// Defaults to `4·dim` — the order of the auxiliary vectors every
    /// bundled problem re-uploads per iteration.
    pub state_h2d_bytes: Option<u64>,
}

impl<P, N: Neighborhood> BinaryJob<P, N> {
    /// A job with default priority and pricing hints.
    pub fn new(
        name: impl Into<String>,
        problem: P,
        hood: N,
        search: TabuSearch,
        init: BitString,
    ) -> Self {
        Self { name: name.into(), problem, hood, search, init, priority: 0, state_h2d_bytes: None }
    }

    /// Set the queue priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Override the per-iteration state-upload pricing hint.
    pub fn with_state_bytes(mut self, bytes: u64) -> Self {
        self.state_h2d_bytes = Some(bytes);
        self
    }
}

impl<P, N> SearchJob for BinaryJob<P, N>
where
    P: IncrementalEval + Persist + PersistTag + 'static,
    N: Neighborhood + Clone + Send + Sync + Persist + PersistTag + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn persist_tag(&self) -> String {
        tabu_tag::<P, N>()
    }

    fn into_exec(self: Box<Self>, ctx: SubmitCtx) -> Box<dyn JobExec> {
        Box::new(BinaryTabuJob::new(ctx, *self))
    }
}

impl<P, N> JobCodec for BinaryJob<P, N>
where
    P: IncrementalEval + Persist + PersistTag + 'static,
    N: Neighborhood + Clone + Send + Sync + Persist + PersistTag + 'static,
{
    fn registry_tag() -> String {
        tabu_tag::<P, N>()
    }

    fn decode(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError> {
        read_tabu_job::<P, N>(r)
    }
}

/// A QAP robust-tabu job, submitted via the generic
/// [`Scheduler::submit`](crate::Scheduler::submit).
///
/// QAP runs are driven through a steppable
/// [`RtsCursor`](lnls_qap::RtsCursor), so they batch into quanta,
/// checkpoint mid-run, and preempt like every other tenant. They never
/// fuse (the swap neighborhood shares no batch key with binary jobs).
pub struct QapJobSpec {
    /// Submission name (reports only).
    pub name: String,
    /// The instance (moved into the scheduler).
    pub instance: QapInstance,
    /// Driver configuration.
    pub config: RtsConfig,
    /// Initial assignment.
    pub init: Permutation,
    /// Larger runs first when the queue is contended (0 = bulk).
    pub priority: u8,
}

impl QapJobSpec {
    /// A job with default priority.
    pub fn new(
        name: impl Into<String>,
        instance: QapInstance,
        config: RtsConfig,
        init: Permutation,
    ) -> Self {
        Self { name: name.into(), instance, config, init, priority: 0 }
    }

    /// Set the queue priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

impl SearchJob for QapJobSpec {
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn persist_tag(&self) -> String {
        QAP_TAG.to_string()
    }

    fn into_exec(self: Box<Self>, ctx: SubmitCtx) -> Box<dyn JobExec> {
        Box::new(QapJob::new(ctx, *self))
    }
}

impl JobCodec for QapJobSpec {
    fn registry_tag() -> String {
        QAP_TAG.to_string()
    }

    fn decode(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError> {
        read_qap_job(r)
    }
}

/// A simulated-annealing job: problem + sampler + initial solution,
/// submitted via the generic
/// [`Scheduler::submit`](crate::Scheduler::submit) — the sampling-style
/// counterpart of [`BinaryJob`].
///
/// The walk is an [`AnnealCursor`](lnls_core::AnnealCursor) driven
/// through the object-safe
/// [`ProblemCursor`](lnls_core::ProblemCursor) adapter; each iteration
/// evaluates **one** sampled neighbor, so launches are priced as
/// single-neighbor kernels (overhead-dominated — the paper's argument
/// for large launches, seen from the other side). Annealing jobs never
/// fuse and report through [`SearchResult`], so
/// [`JobOutcome::as_binary`] works on them.
pub struct AnnealJob<P, N: Neighborhood> {
    /// Submission name (reports only).
    pub name: String,
    /// The problem instance (moved into the scheduler).
    pub problem: P,
    /// The annealing driver (schedule, neighborhood sampler, seed).
    pub sa: SimulatedAnnealing<N>,
    /// Initial solution — explicit so fleet runs are bit-comparable to
    /// solo runs.
    pub init: BitString,
    /// Larger runs first when the queue is contended (0 = bulk).
    pub priority: u8,
    /// Per-iteration incremental-state upload, bytes (pricing input);
    /// defaults to `4·dim` like [`BinaryJob`].
    pub state_h2d_bytes: Option<u64>,
}

impl<P, N: Neighborhood> AnnealJob<P, N> {
    /// A job with default priority and pricing hints.
    pub fn new(
        name: impl Into<String>,
        problem: P,
        sa: SimulatedAnnealing<N>,
        init: BitString,
    ) -> Self {
        Self { name: name.into(), problem, sa, init, priority: 0, state_h2d_bytes: None }
    }

    /// Set the queue priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Override the per-iteration state-upload pricing hint.
    pub fn with_state_bytes(mut self, bytes: u64) -> Self {
        self.state_h2d_bytes = Some(bytes);
        self
    }
}

impl<P, N> SearchJob for AnnealJob<P, N>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
    N: Neighborhood + Clone + Persist + PersistTag + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn persist_tag(&self) -> String {
        anneal_tag::<P, N>()
    }

    fn into_exec(self: Box<Self>, ctx: SubmitCtx) -> Box<dyn JobExec> {
        Box::new(AnnealExec::new(ctx, *self))
    }
}

impl<P, N> JobCodec for AnnealJob<P, N>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
    N: Neighborhood + Clone + Persist + PersistTag + 'static,
{
    fn registry_tag() -> String {
        anneal_tag::<P, N>()
    }

    fn decode(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError> {
        read_anneal_job::<P, N>(r)
    }
}
