//! Job descriptions, handles, outcomes and per-job reports.
//!
//! ## Implementing your own `SearchJob`, end to end
//!
//! Everything the scheduler runs goes through three traits: a steppable
//! executor ([`JobExec`] — usually a thin shell over a cursor), the
//! submittable description ([`SearchJob`]), and the checkpoint decoder
//! ([`JobCodec`]). The toy below walks a countdown "search" through the
//! whole lifecycle — submit, tick, checkpoint to bytes, restore, finish
//! — with per-iteration launch pricing on the simulated device:
//!
//! ```
//! use lnls_core::persist::{Persist, PersistError, Reader};
//! use lnls_gpu_sim::{transfer_seconds, Device, DeviceSpec, HostSpec, TimeBook};
//! use lnls_runtime::{
//!     BatchKey, FleetCheckpoint, JobCodec, JobExec, JobId, JobOutcome, JobRegistry, JobReport,
//!     Scheduler, SchedulerConfig, SearchJob, StepRun, SubmitCtx,
//! };
//! use std::any::Any;
//!
//! // 1. The executor: the walk's loop-carried state (here just two
//! //    counters — a real workload would wrap a `SearchCursor`), plus
//! //    the identity the scheduler assigned and the pricing of one
//! //    iteration's launch.
//! struct CountdownExec {
//!     id: JobId,
//!     name: String,
//!     seq: u64,
//!     left: u64,
//!     executed: u64,
//! }
//!
//! impl CountdownExec {
//!     /// One iteration = one tiny launch: fixed overhead plus an
//!     /// 8-byte upload (toy numbers; real executors derive this from
//!     /// the neighborhood size, e.g. via `lnls_core::LaneProfile`).
//!     fn iter_book(spec: &lnls_gpu_sim::DeviceSpec, iters: u64) -> TimeBook {
//!         TimeBook {
//!             overhead_s: spec.launch_overhead_s * iters as f64,
//!             h2d_s: transfer_seconds(spec, 8) * iters as f64,
//!             bytes_h2d: 8 * iters,
//!             launches: iters,
//!             ..TimeBook::default()
//!         }
//!     }
//! }
//!
//! impl JobExec for CountdownExec {
//!     fn id(&self) -> JobId { self.id }
//!     fn priority(&self) -> u8 { 0 }
//!     fn seq(&self) -> u64 { self.seq }
//!     fn done(&self) -> bool { self.left == 0 }
//!     fn iterations(&self) -> u64 { self.executed }
//!     fn batch_key(&self) -> Option<BatchKey> { None } // never fuses
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//!
//!     fn step_device(&mut self, dev: &mut Device, quota: u64) -> StepRun {
//!         let iters = quota.min(self.left);
//!         self.left -= iters;
//!         self.executed += iters;
//!         let book = Self::iter_book(dev.spec(), iters);
//!         let seconds = book.gpu_total_s();
//!         dev.charge(&book); // the fleet ledger sees every launch
//!         StepRun { iters, seconds, serialized_s: seconds, ..StepRun::default() }
//!     }
//!
//!     fn step_host(&mut self, _host: &HostSpec, quota: u64) -> StepRun {
//!         let iters = quota.min(self.left);
//!         self.left -= iters;
//!         self.executed += iters;
//!         let seconds = 1e-6 * iters as f64;
//!         StepRun { iters, seconds, serialized_s: seconds, ..StepRun::default() }
//!     }
//!
//!     fn step_batch(
//!         &mut self,
//!         peers: &mut [&mut Box<dyn JobExec>],
//!         dev: &mut Device,
//!         span_iters: u64,
//!         _mode: lnls_gpu_sim::LaunchMode,
//!     ) -> StepRun {
//!         assert!(peers.is_empty(), "batch_key() is None, so no peers ever arrive");
//!         self.step_device(dev, span_iters.max(1))
//!     }
//!
//!     fn serial_equivalent_s(&self, spec: &DeviceSpec) -> f64 {
//!         Self::iter_book(spec, self.executed).gpu_total_s()
//!     }
//!
//!     fn finish(&mut self, backend: String, started_s: f64, finished_s: f64) -> JobReport {
//!         JobReport {
//!             id: self.id,
//!             name: self.name.clone(),
//!             tenant: String::new(), // the scheduler stamps attribution
//!             backend,
//!             submitted_s: 0.0,
//!             started_s,
//!             finished_s,
//!             fused_iterations: 0,
//!             cancelled: false,
//!             rejected: false,
//!             outcome: JobOutcome::new(-(self.left as i64), self.executed, self.left == 0),
//!         }
//!     }
//!
//!     fn clone_box(&self) -> Box<dyn JobExec> {
//!         Box::new(CountdownExec {
//!             id: self.id,
//!             name: self.name.clone(),
//!             seq: self.seq,
//!             left: self.left,
//!             executed: self.executed,
//!         })
//!     }
//!
//!     fn persist_tag(&self) -> String { "example/countdown".into() }
//!
//!     fn persist(&self, out: &mut Vec<u8>) {
//!         self.id.write(out);
//!         self.name.write(out);
//!         self.seq.write(out);
//!         self.left.write(out);
//!         self.executed.write(out);
//!     }
//! }
//!
//! // 2. The submittable description: what users hand to `submit`.
//! struct CountdownJob { name: String, steps: u64 }
//!
//! impl SearchJob for CountdownJob {
//!     fn name(&self) -> &str { &self.name }
//!     fn persist_tag(&self) -> String { "example/countdown".into() }
//!     fn into_exec(self: Box<Self>, ctx: SubmitCtx) -> Box<dyn JobExec> {
//!         Box::new(CountdownExec {
//!             id: ctx.id(), // executors must adopt the assigned identity
//!             name: ctx.name(self.name),
//!             seq: ctx.seq(),
//!             left: self.steps,
//!             executed: 0,
//!         })
//!     }
//! }
//!
//! // 3. The checkpoint decoder: inverse of `CountdownExec::persist`.
//! impl JobCodec for CountdownJob {
//!     fn registry_tag() -> String { "example/countdown".into() }
//!     fn decode(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError> {
//!         Ok(Box::new(CountdownExec {
//!             id: r.read()?,
//!             name: r.read()?,
//!             seq: r.read()?,
//!             left: r.read()?,
//!             executed: r.read()?,
//!         }))
//!     }
//! }
//!
//! // Submit, run one tick, checkpoint through bytes (a "crash"),
//! // restore, finish — scheduling, preemption and persistence all come
//! // from the traits above.
//! let mut fleet =
//!     Scheduler::with_uniform_fleet(1, DeviceSpec::gtx280(), SchedulerConfig::default());
//! let handle = fleet.submit(CountdownJob { name: "count-3".into(), steps: 3 });
//! fleet.tick(); // one iteration ran; two remain in the live cursor
//!
//! let mut registry = JobRegistry::new();
//! registry.register::<CountdownJob>(); // one registration per job type
//! let bytes = fleet.checkpoint().to_bytes();
//! drop(fleet); // the crash
//!
//! let revived = FleetCheckpoint::from_bytes(&bytes, &registry).expect("decodes");
//! let mut fleet = Scheduler::restore(revived);
//! fleet.run_until_idle();
//! let report = fleet.report(handle).expect("finished");
//! assert!(report.outcome.success());
//! assert_eq!(report.outcome.iterations(), 3); // 1 before the crash + 2 after
//! assert!(fleet.fleet_report().fleet_book.launches >= 3);
//! ```

use crate::exec::{
    anneal_tag, read_anneal_job, read_qap_job, read_tabu_job, tabu_tag, AnnealExec, BinaryTabuJob,
    JobExec, QapJob, QAP_TAG,
};
use crate::submit::{JobCodec, SearchJob, SubmitCtx};
use lnls_core::persist::{Persist, PersistError, PersistTag, Reader};
use lnls_core::{BitString, IncrementalEval, SearchResult, SimulatedAnnealing, TabuSearch};
use lnls_neighborhood::Neighborhood;
use lnls_qap::{Permutation, QapInstance, RtsConfig, RtsResult};
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Opaque identity of a submitted job.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub(crate) u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Ids persist as their raw `u64`, so external [`JobCodec`]
/// implementations can round-trip the identity their executors adopted
/// at submission (see the module-level example).
impl Persist for JobId {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
    }
    fn read(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(JobId(r.read()?))
    }
}

/// Typed handle returned by submission; poll it with
/// [`Scheduler::status`](crate::Scheduler::status) or block with
/// [`Scheduler::await_report`](crate::Scheduler::await_report). Handles
/// are `Copy` — every handle-taking method accepts them by value.
#[derive(Copy, Clone, Debug)]
pub struct JobHandle {
    pub(crate) id: JobId,
}

impl JobHandle {
    /// The job's identity.
    pub fn id(&self) -> JobId {
        self.id
    }
}

/// Where a job currently is in its lifecycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the scheduler queue.
    Queued,
    /// Assigned to a backend (possibly inside a fused batch).
    Running,
    /// Finished; a [`JobReport`] is available.
    Done,
    /// Cancelled via [`Scheduler::cancel`](crate::Scheduler::cancel) (or
    /// drained past its deadline); a [`JobReport`] with the partial
    /// best-so-far is available.
    Cancelled,
    /// Evicted by admission control (shed to make room for a
    /// higher-priority submission); a [`JobReport`] marked
    /// [`rejected`](JobReport::rejected) is available.
    Rejected,
    /// Unknown to this scheduler.
    Unknown,
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Rejected => "rejected",
            JobStatus::Unknown => "unknown",
        })
    }
}

/// What a finished job produced: the generic record every search
/// reports — best fitness, iterations, success — plus a typed detail
/// any workload may attach and callers may downcast.
///
/// The bundled executors attach their native result types
/// ([`SearchResult`] for tabu *and* annealing walks over bit-strings,
/// [`RtsResult`] for QAP), so the long-standing
/// [`as_binary`](Self::as_binary) / [`as_qap`](Self::as_qap) accessors
/// keep working; new workloads attach whatever they like via
/// [`with_detail`](Self::with_detail) and read it back with
/// [`detail`](Self::detail).
#[derive(Clone)]
pub struct JobOutcome {
    best_fitness: i64,
    iterations: u64,
    success: bool,
    detail: Arc<dyn Any + Send + Sync>,
}

impl fmt::Debug for JobOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobOutcome")
            .field("best_fitness", &self.best_fitness)
            .field("iterations", &self.iterations)
            .field("success", &self.success)
            .finish_non_exhaustive()
    }
}

impl JobOutcome {
    /// A bare record with no typed detail.
    pub fn new(best_fitness: i64, iterations: u64, success: bool) -> Self {
        Self::with_detail(best_fitness, iterations, success, ())
    }

    /// A record carrying a typed detail for downcast access.
    pub fn with_detail<T: Any + Send + Sync>(
        best_fitness: i64,
        iterations: u64,
        success: bool,
        detail: T,
    ) -> Self {
        Self { best_fitness, iterations, success, detail: Arc::new(detail) }
    }

    /// Wrap a bit-string search result (tabu or annealing walks).
    pub fn binary(result: SearchResult) -> Self {
        Self::with_detail(result.best_fitness, result.iterations, result.success, result)
    }

    /// Wrap a QAP robust-tabu result.
    pub fn qap(result: RtsResult) -> Self {
        Self::with_detail(result.best_cost, result.iterations, result.success, result)
    }

    /// Best fitness/cost reached.
    pub fn best_fitness(&self) -> i64 {
        self.best_fitness
    }

    /// Iterations executed.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// True if the job hit its target.
    pub fn success(&self) -> bool {
        self.success
    }

    /// The typed detail, if it is a `T`.
    pub fn detail<T: Any>(&self) -> Option<&T> {
        self.detail.downcast_ref()
    }

    /// The full bit-string search result, if this job was one (binary
    /// tabu jobs and annealing jobs both report through
    /// [`SearchResult`]).
    pub fn as_binary(&self) -> Option<&SearchResult> {
        self.detail()
    }

    /// The QAP result, if this was a QAP job.
    pub fn as_qap(&self) -> Option<&RtsResult> {
        self.detail()
    }
}

/// Everything known about one completed (or cancelled/rejected) job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Job identity.
    pub id: JobId,
    /// Submission name.
    pub name: String,
    /// Tenant attribution from the submission envelope.
    pub tenant: String,
    /// Backend that completed the job (e.g. `dev0[GTX 280 …]`, `cpu1`).
    pub backend: String,
    /// Simulated fleet time at which the job was submitted.
    pub submitted_s: f64,
    /// Simulated fleet time at which the job *first* left the queue
    /// (under preemption a job may leave and re-enter it many times).
    pub started_s: f64,
    /// Simulated fleet time at which the job completed.
    pub finished_s: f64,
    /// Iterations that ran inside a fused batch with other tenants.
    pub fused_iterations: u64,
    /// True when the job was drained by
    /// [`Scheduler::cancel`](crate::Scheduler::cancel) or a missed
    /// deadline; the outcome then holds the best-so-far at the drain
    /// boundary.
    pub cancelled: bool,
    /// True when the job was evicted by admission control; the outcome
    /// holds whatever had been computed before the eviction.
    pub rejected: bool,
    /// The search outcome.
    pub outcome: JobOutcome,
}

impl JobReport {
    /// Queue wait: submission → first placement (seconds, modeled).
    pub fn wait_s(&self) -> f64 {
        (self.started_s - self.submitted_s).max(0.0)
    }

    /// Turnaround: submission → completion (seconds, modeled).
    pub fn turnaround_s(&self) -> f64 {
        (self.finished_s - self.submitted_s).max(0.0)
    }
}

// ---------------------------------------------------------------------
// Bundled job types
// ---------------------------------------------------------------------

/// A bit-string search job: problem + neighborhood + driver + initial
/// solution, submitted via the generic
/// [`Scheduler::submit`](crate::Scheduler::submit).
///
/// Jobs whose `(problem family, neighborhood)` coincide are eligible for
/// launch batching — their per-iteration evaluations fuse into one
/// simulated launch. The family key is
/// [`BinaryProblem::name`](lnls_core::BinaryProblem::name), so instances
/// of the same shape batch automatically.
pub struct BinaryJob<P, N> {
    /// Submission name (reports only).
    pub name: String,
    /// The problem instance (moved into the scheduler).
    pub problem: P,
    /// Neighborhood to search.
    pub hood: N,
    /// Driver configuration (budget, seed, strategy, target).
    pub search: TabuSearch,
    /// Initial solution — explicit so fleet runs are bit-comparable to
    /// solo runs.
    pub init: BitString,
    /// Larger runs first when the queue is contended (0 = bulk).
    pub priority: u8,
    /// Per-iteration incremental-state upload, bytes (pricing input).
    /// Defaults to `4·dim` — the order of the auxiliary vectors every
    /// bundled problem re-uploads per iteration.
    pub state_h2d_bytes: Option<u64>,
}

impl<P, N: Neighborhood> BinaryJob<P, N> {
    /// A job with default priority and pricing hints.
    pub fn new(
        name: impl Into<String>,
        problem: P,
        hood: N,
        search: TabuSearch,
        init: BitString,
    ) -> Self {
        Self { name: name.into(), problem, hood, search, init, priority: 0, state_h2d_bytes: None }
    }

    /// Set the queue priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Override the per-iteration state-upload pricing hint.
    pub fn with_state_bytes(mut self, bytes: u64) -> Self {
        self.state_h2d_bytes = Some(bytes);
        self
    }
}

impl<P, N> SearchJob for BinaryJob<P, N>
where
    P: IncrementalEval + Persist + PersistTag + 'static,
    N: Neighborhood + Clone + Send + Sync + Persist + PersistTag + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn persist_tag(&self) -> String {
        tabu_tag::<P, N>()
    }

    fn into_exec(self: Box<Self>, ctx: SubmitCtx) -> Box<dyn JobExec> {
        Box::new(BinaryTabuJob::new(ctx, *self))
    }
}

impl<P, N> JobCodec for BinaryJob<P, N>
where
    P: IncrementalEval + Persist + PersistTag + 'static,
    N: Neighborhood + Clone + Send + Sync + Persist + PersistTag + 'static,
{
    fn registry_tag() -> String {
        tabu_tag::<P, N>()
    }

    fn decode(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError> {
        read_tabu_job::<P, N>(r)
    }
}

/// A QAP robust-tabu job, submitted via the generic
/// [`Scheduler::submit`](crate::Scheduler::submit).
///
/// QAP runs are driven through a steppable
/// [`RtsCursor`](lnls_qap::RtsCursor), so they batch into quanta,
/// checkpoint mid-run, and preempt like every other tenant. They never
/// fuse (the swap neighborhood shares no batch key with binary jobs).
pub struct QapJobSpec {
    /// Submission name (reports only).
    pub name: String,
    /// The instance (moved into the scheduler).
    pub instance: QapInstance,
    /// Driver configuration.
    pub config: RtsConfig,
    /// Initial assignment.
    pub init: Permutation,
    /// Larger runs first when the queue is contended (0 = bulk).
    pub priority: u8,
}

impl QapJobSpec {
    /// A job with default priority.
    pub fn new(
        name: impl Into<String>,
        instance: QapInstance,
        config: RtsConfig,
        init: Permutation,
    ) -> Self {
        Self { name: name.into(), instance, config, init, priority: 0 }
    }

    /// Set the queue priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

impl SearchJob for QapJobSpec {
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn persist_tag(&self) -> String {
        QAP_TAG.to_string()
    }

    fn into_exec(self: Box<Self>, ctx: SubmitCtx) -> Box<dyn JobExec> {
        Box::new(QapJob::new(ctx, *self))
    }
}

impl JobCodec for QapJobSpec {
    fn registry_tag() -> String {
        QAP_TAG.to_string()
    }

    fn decode(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError> {
        read_qap_job(r)
    }
}

/// A simulated-annealing job: problem + sampler + initial solution,
/// submitted via the generic
/// [`Scheduler::submit`](crate::Scheduler::submit) — the sampling-style
/// counterpart of [`BinaryJob`].
///
/// The walk is an [`AnnealCursor`](lnls_core::AnnealCursor) driven
/// through the object-safe
/// [`ProblemCursor`](lnls_core::ProblemCursor) adapter; each iteration
/// evaluates **one** sampled neighbor, so launches are priced as
/// single-neighbor kernels (overhead-dominated — the paper's argument
/// for large launches, seen from the other side). Annealing jobs never
/// fuse and report through [`SearchResult`], so
/// [`JobOutcome::as_binary`] works on them.
pub struct AnnealJob<P, N: Neighborhood> {
    /// Submission name (reports only).
    pub name: String,
    /// The problem instance (moved into the scheduler).
    pub problem: P,
    /// The annealing driver (schedule, neighborhood sampler, seed).
    pub sa: SimulatedAnnealing<N>,
    /// Initial solution — explicit so fleet runs are bit-comparable to
    /// solo runs.
    pub init: BitString,
    /// Larger runs first when the queue is contended (0 = bulk).
    pub priority: u8,
    /// Per-iteration incremental-state upload, bytes (pricing input);
    /// defaults to `4·dim` like [`BinaryJob`].
    pub state_h2d_bytes: Option<u64>,
}

impl<P, N: Neighborhood> AnnealJob<P, N> {
    /// A job with default priority and pricing hints.
    pub fn new(
        name: impl Into<String>,
        problem: P,
        sa: SimulatedAnnealing<N>,
        init: BitString,
    ) -> Self {
        Self { name: name.into(), problem, sa, init, priority: 0, state_h2d_bytes: None }
    }

    /// Set the queue priority (higher runs first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Override the per-iteration state-upload pricing hint.
    pub fn with_state_bytes(mut self, bytes: u64) -> Self {
        self.state_h2d_bytes = Some(bytes);
        self
    }
}

impl<P, N> SearchJob for AnnealJob<P, N>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
    N: Neighborhood + Clone + Persist + PersistTag + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn persist_tag(&self) -> String {
        anneal_tag::<P, N>()
    }

    fn into_exec(self: Box<Self>, ctx: SubmitCtx) -> Box<dyn JobExec> {
        Box::new(AnnealExec::new(ctx, *self))
    }
}

impl<P, N> JobCodec for AnnealJob<P, N>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
    N: Neighborhood + Clone + Persist + PersistTag + 'static,
{
    fn registry_tag() -> String {
        anneal_tag::<P, N>()
    }

    fn decode(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError> {
        read_anneal_job::<P, N>(r)
    }
}
