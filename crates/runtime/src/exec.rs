//! Type-erased job executors.
//!
//! The scheduler sees jobs as `Box<dyn JobExec>`: steppable in iteration
//! quanta, priceable, cloneable (for checkpoints), byte-persistable (for
//! disk snapshots), and — when two erased jobs report the same
//! [`BatchKey`] — fusable. The key embeds the concrete Rust type
//! (`TypeId`), so a leader may downcast its batch peers to its own type
//! and drive them through one [`BatchedExplorer`] pass.
//!
//! Every executor is a thin shell around a [`SearchCursor`]
//! (`TabuCursor` for binary jobs, `RtsCursor` for QAP jobs, an
//! [`AnnealCursor`] behind the object-safe
//! [`ProblemCursor`](lnls_core::ProblemCursor) adapter for annealing
//! jobs): the cursor owns the walk, the executor owns the pricing. That
//! is what makes preemption free of semantic consequence — a job
//! stepped in quanta makes exactly the moves a run-to-completion job
//! makes.
//!
//! [`JobExec`] is public so external workloads can implement
//! [`SearchJob`](crate::SearchJob) end to end; the bundled executors
//! stay private behind their spec types.

use crate::job::{JobId, JobOutcome, JobReport};
use crate::submit::SubmitCtx;
use lnls_core::persist::{Persist, PersistError, PersistTag, Reader};
use lnls_core::{
    AnnealCursor, BatchLane, BatchedExplorer, DynCursor, Explorer, IncrementalEval, LaneProfile,
    ProblemCursor, SearchCursor, SequentialExplorer, TabuCursor,
};
use lnls_gpu_sim::{
    argmin_kernel_seconds, price_fused_span, transfer_seconds, Device, DeviceSpec, HostSpec,
    LaneIo, LaunchMode, SelectionMode, TimeBook, ARGMIN_RECORD_BYTES,
};
use lnls_neighborhood::Neighborhood;
use lnls_qap::{GpuSwapEvaluator, QapInstance, RtsCursor, SwapEvaluator, TableEvaluator};
use std::any::{Any, TypeId};
use std::sync::Arc;

/// Launch-batching compatibility key: jobs fuse when the concrete
/// executor type, problem family, dimensionality and neighborhood all
/// agree.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BatchKey {
    type_id: TypeId,
    family: String,
    dim: usize,
    hood_size: u64,
    k: usize,
}

/// What one scheduler step actually did: iterations executed and the
/// modeled seconds they cost on the backend that ran them.
#[derive(Copy, Clone, Debug, Default)]
pub struct StepRun {
    /// Iterations executed by the step.
    pub iters: u64,
    /// Modeled seconds charged to the backend — for device launches
    /// priced through the stream model, the schedule **makespan**.
    pub seconds: f64,
    /// What the same operations would cost executed back-to-back on one
    /// queue. Equals [`seconds`](Self::seconds) when nothing overlapped
    /// (single-engine layouts, host steps); the gap is the stream-level
    /// overlap win the fleet report aggregates.
    pub serialized_s: f64,
    /// Multi-iteration stream spans the step priced (0 for solo and
    /// host steps, 1 per fused [`JobExec::step_batch`] call).
    pub spans: u64,
    /// Launch overhead amortized away by persistent-kernel residency
    /// relative to re-launching every iteration (nonzero only under
    /// [`LaunchMode::PersistentSpan`]).
    pub launch_overhead_saved_s: f64,
}

/// The type-erased executor contract behind
/// [`SearchJob::into_exec`](crate::SearchJob::into_exec): a steppable,
/// priceable, persistable shell around one search walk.
///
/// Implementations wrap a [`SearchCursor`] (directly, or behind
/// [`DynCursor`]) and price its iterations onto the backend they are
/// stepped on; the scheduler never sees anything else. The bundled
/// executors — binary tabu, QAP robust tabu, simulated annealing — are
/// built by the corresponding spec types; external workloads implement
/// this trait plus [`SearchJob`](crate::SearchJob) to plug in.
pub trait JobExec: Send {
    /// The identity assigned at submission.
    fn id(&self) -> JobId;
    /// Submission name, as the report will carry it — surfaced in the
    /// observability event stream (`Submitted` events). The default
    /// covers external executors predating the accessor.
    fn name(&self) -> &str {
        ""
    }
    /// Queue priority (higher = larger fair share).
    fn priority(&self) -> u8;
    /// Submission sequence number (FIFO tie-breaker).
    fn seq(&self) -> u64;
    /// True when the walk has nothing left to do.
    fn done(&self) -> bool;
    /// Iterations the walk has executed so far (drives iteration
    /// budgets and the serialized baseline).
    fn iterations(&self) -> u64;
    /// Launch-batching key; `None` for unbatchable workloads.
    fn batch_key(&self) -> Option<BatchKey>;
    /// Downcast hook for batch leaders driving same-key peers.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Run up to `quota` iterations on a fleet device, charging the
    /// device ledger. A short count means the job finished.
    fn step_device(&mut self, dev: &mut Device, quota: u64) -> StepRun;

    /// Run up to `quota` iterations on a CPU worker.
    fn step_host(&mut self, host: &HostSpec, quota: u64) -> StepRun;

    /// Run up to `span_iters` consecutive fused iterations covering
    /// `self` and `peers` (all sharing this job's [`BatchKey`]), priced
    /// as **one** breadth-first stream span: iteration `k+1`'s uploads
    /// are double-buffered against iteration `k`'s kernel, and launch
    /// overhead is charged per `mode`. Members already finished must not
    /// be passed, and the span ends early as soon as any member
    /// finishes — group membership never changes mid-span. `iters`
    /// reports the iterations *each member* executed (identical across
    /// the group).
    fn step_batch(
        &mut self,
        peers: &mut [&mut Box<dyn JobExec>],
        dev: &mut Device,
        span_iters: u64,
        mode: LaunchMode,
    ) -> StepRun;

    /// Modeled cost of the work this job has *executed so far* if it had
    /// run solo, launch-per-iteration, on `spec` — the serialized-fleet
    /// baseline contribution.
    fn serial_equivalent_s(&self, spec: &DeviceSpec) -> f64;

    /// Produce the final report. Valid even when the job is not
    /// [`done`](Self::done) — a cancelled job reports its best-so-far.
    fn finish(&mut self, backend: String, started_s: f64, finished_s: f64) -> JobReport;

    /// Notification that the job left its backend (preemption back into
    /// the queue). Executors drop backend-resident caches here so a
    /// later placement re-pays residency costs honestly.
    fn unplaced(&mut self) {}

    /// Deep copy for checkpoints.
    fn clone_box(&self) -> Box<dyn JobExec>;

    /// Registry key for disk persistence (see
    /// [`JobRegistry`](crate::JobRegistry)).
    fn persist_tag(&self) -> String;

    /// Byte-level snapshot of the job (walk state included).
    fn persist(&self, out: &mut Vec<u8>);
}

// ---------------------------------------------------------------------
// Binary tabu jobs
// ---------------------------------------------------------------------

/// Executor for [`BinaryJob`](crate::BinaryJob): a [`TabuCursor`] stepped
/// in quanta, batchable with same-key tenants.
pub(crate) struct BinaryTabuJob<P, N>
where
    P: IncrementalEval + 'static,
    N: Neighborhood + Clone + Send + Sync + 'static,
{
    pub id: JobId,
    pub name: String,
    pub priority: u8,
    pub seq: u64,
    pub problem: Arc<P>,
    pub hood: N,
    pub cursor: TabuCursor<P>,
    pub out: Vec<i64>,
    pub state_h2d_bytes: u64,
    pub host: HostSpec,
    pub selection: SelectionMode,
    pub fused_iters: u64,
}

impl<P, N> BinaryTabuJob<P, N>
where
    P: IncrementalEval + 'static,
    N: Neighborhood + Clone + Send + Sync + 'static,
{
    pub fn new(ctx: SubmitCtx, spec: crate::job::BinaryJob<P, N>) -> Self {
        let cursor = spec.search.cursor(&spec.problem, spec.init);
        let state_h2d_bytes = spec.state_h2d_bytes.unwrap_or(4 * spec.problem.dim() as u64);
        Self {
            id: ctx.id,
            name: ctx.name(spec.name),
            priority: ctx.priority(spec.priority),
            seq: ctx.seq,
            problem: Arc::new(spec.problem),
            hood: spec.hood,
            cursor,
            out: Vec::new(),
            state_h2d_bytes,
            host: ctx.host,
            selection: ctx.selection,
            fused_iters: 0,
        }
    }

    fn profile(&self, spec: &DeviceSpec) -> LaneProfile {
        LaneProfile::incremental_eval(
            spec,
            &self.host,
            self.hood.size(),
            self.hood.k(),
            self.problem.dim(),
            self.state_h2d_bytes,
        )
    }
}

impl<P, N> JobExec for BinaryTabuJob<P, N>
where
    P: IncrementalEval + Persist + PersistTag + 'static,
    N: Neighborhood + Clone + Send + Sync + Persist + PersistTag + 'static,
{
    fn id(&self) -> JobId {
        self.id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn seq(&self) -> u64 {
        self.seq
    }

    fn done(&self) -> bool {
        self.cursor.is_done()
    }

    fn iterations(&self) -> u64 {
        self.cursor.iterations()
    }

    fn batch_key(&self) -> Option<BatchKey> {
        Some(BatchKey {
            type_id: TypeId::of::<Self>(),
            family: self.problem.name(),
            dim: self.problem.dim(),
            hood_size: self.hood.size(),
            k: self.hood.k(),
        })
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn step_device(&mut self, dev: &mut Device, quota: u64) -> StepRun {
        // Each iteration is one single-lane fused launch: same stream
        // pricing the multi-tenant path charges, minus the amortization.
        let spec = dev.spec().clone();
        let prof = self.profile(&spec);
        let mut bex = BatchedExplorer::new(self.hood.clone(), spec);
        let mut iters = 0;
        while iters < quota && !self.cursor.is_done() {
            {
                let (s, state) = self.cursor.explore_parts();
                let mut lanes = [BatchLane {
                    problem: &*self.problem,
                    s,
                    state,
                    out: &mut self.out,
                    profile: prof,
                    selection: self.selection,
                }];
                bex.explore_batch(&mut lanes);
            }
            self.cursor.select_and_commit(&*self.problem, &self.hood, &self.out);
            iters += 1;
        }
        let seconds = bex.stream_makespan_s();
        let serialized_s = bex.stream_serialized_s();
        dev.charge(bex.book());
        StepRun { iters, seconds, serialized_s, ..StepRun::default() }
    }

    fn step_host(&mut self, host: &HostSpec, quota: u64) -> StepRun {
        // Functional evaluation identical to the device path, driven
        // through the SearchCursor contract; priced as sequential-host
        // neighborhood scans.
        let prof = LaneProfile::incremental_eval(
            &DeviceSpec::gtx280(),
            host,
            self.hood.size(),
            self.hood.k(),
            self.problem.dim(),
            self.state_h2d_bytes,
        );
        let mut ex = SequentialExplorer::new(self.hood.clone());
        let iters =
            self.cursor.step_batch((&*self.problem, &mut ex as &mut dyn Explorer<P>), quota);
        let seconds = prof.host_seconds * iters as f64;
        StepRun { iters, seconds, serialized_s: seconds, ..StepRun::default() }
    }

    fn step_batch(
        &mut self,
        peers: &mut [&mut Box<dyn JobExec>],
        dev: &mut Device,
        span_iters: u64,
        mode: LaunchMode,
    ) -> StepRun {
        let spec = dev.spec().clone();
        let prof = self.profile(&spec);
        let mut typed: Vec<&mut Self> = peers
            .iter_mut()
            .map(|p| {
                p.as_any_mut()
                    .downcast_mut::<Self>()
                    .expect("batch key embeds TypeId; peers must share the leader's type")
            })
            .collect();
        let peer_profiles: Vec<LaneProfile> = typed.iter().map(|t| t.profile(&spec)).collect();

        // Selection is per lane: each member's effective mode — the
        // fleet default or its own JobSpec override — prices its slice
        // of the fused readback. The span accumulates up to `span_iters`
        // such iterations and prices them as one double-buffered stream
        // schedule; the commits in between are pure host work on
        // already-downloaded fitness, so deferring the pricing changes
        // nothing the walks can observe.
        let mut bex = BatchedExplorer::new(self.hood.clone(), spec);
        bex.begin_span(mode);
        let fused = !typed.is_empty();
        let budget = span_iters.max(1);
        let mut iters = 0;
        loop {
            {
                let mut lanes: Vec<BatchLane<'_, P>> = Vec::with_capacity(1 + typed.len());
                let (s, state) = self.cursor.explore_parts();
                lanes.push(BatchLane {
                    problem: &*self.problem,
                    s,
                    state,
                    out: &mut self.out,
                    profile: prof,
                    selection: self.selection,
                });
                for (t, p) in typed.iter_mut().zip(&peer_profiles) {
                    let selection = t.selection;
                    let (s, state) = t.cursor.explore_parts();
                    lanes.push(BatchLane {
                        problem: &*t.problem,
                        s,
                        state,
                        out: &mut t.out,
                        profile: *p,
                        selection,
                    });
                }
                bex.explore_span(&mut lanes);
            }
            self.cursor.select_and_commit(&*self.problem, &self.hood, &self.out);
            if fused {
                self.fused_iters += 1;
            }
            for t in typed.iter_mut() {
                t.cursor.select_and_commit(&*t.problem, &t.hood, &t.out);
                t.fused_iters += 1;
            }
            iters += 1;
            if iters >= budget || self.cursor.is_done() || typed.iter().any(|t| t.cursor.is_done())
            {
                break;
            }
        }
        let pricing = bex.finish_span();
        dev.charge(bex.book());
        StepRun {
            iters,
            seconds: pricing.makespan_s,
            serialized_s: pricing.serialized_s,
            spans: 1,
            launch_overhead_saved_s: pricing.overhead_saved_s,
        }
    }

    fn serial_equivalent_s(&self, spec: &DeviceSpec) -> f64 {
        self.profile(spec).solo_seconds(spec) * self.cursor.iterations() as f64
    }

    fn finish(&mut self, backend: String, started_s: f64, finished_s: f64) -> JobReport {
        let result =
            self.cursor.clone().into_result(std::time::Duration::ZERO, None, backend.clone());
        JobReport {
            id: self.id,
            name: self.name.clone(),
            tenant: String::new(),
            backend,
            submitted_s: 0.0,
            started_s,
            finished_s,
            fused_iterations: self.fused_iters,
            cancelled: false,
            rejected: false,
            outcome: JobOutcome::binary(result),
        }
    }

    fn clone_box(&self) -> Box<dyn JobExec> {
        Box::new(Self {
            id: self.id,
            name: self.name.clone(),
            priority: self.priority,
            seq: self.seq,
            problem: Arc::clone(&self.problem),
            hood: self.hood.clone(),
            cursor: self.cursor.clone(),
            out: Vec::new(),
            state_h2d_bytes: self.state_h2d_bytes,
            host: self.host.clone(),
            selection: self.selection,
            fused_iters: self.fused_iters,
        })
    }

    fn persist_tag(&self) -> String {
        tabu_tag::<P, N>()
    }

    fn persist(&self, out: &mut Vec<u8>) {
        self.id.0.write(out);
        self.name.write(out);
        self.priority.write(out);
        self.seq.write(out);
        self.state_h2d_bytes.write(out);
        self.host.write(out);
        self.selection.write(out);
        self.fused_iters.write(out);
        self.problem.write(out);
        self.hood.write(out);
        self.cursor.persist(out);
    }
}

/// Registry key of a binary tabu job over `(P, N)`.
pub(crate) fn tabu_tag<P: PersistTag, N: PersistTag>() -> String {
    format!("tabu/{}/{}", P::TAG, N::TAG)
}

/// Decode one [`BinaryTabuJob`] payload (inverse of its `persist`).
pub(crate) fn read_tabu_job<P, N>(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError>
where
    P: IncrementalEval + Persist + PersistTag + 'static,
    N: Neighborhood + Clone + Send + Sync + Persist + PersistTag + 'static,
{
    let id = JobId(r.read::<u64>()?);
    let name: String = r.read()?;
    let priority: u8 = r.read()?;
    let seq: u64 = r.read()?;
    let state_h2d_bytes: u64 = r.read()?;
    let host: HostSpec = r.read()?;
    let selection: SelectionMode = r.read()?;
    let fused_iters: u64 = r.read()?;
    let problem: P = r.read()?;
    let hood: N = r.read()?;
    if hood.dim() != problem.dim() {
        return Err(PersistError::new("neighborhood/problem dimension mismatch"));
    }
    let cursor = TabuCursor::read_persisted(r, &problem)?;
    Ok(Box::new(BinaryTabuJob {
        id,
        name,
        priority,
        seq,
        problem: Arc::new(problem),
        hood,
        cursor,
        out: Vec::new(),
        state_h2d_bytes,
        host,
        selection,
        fused_iters,
    }))
}

// ---------------------------------------------------------------------
// QAP jobs
// ---------------------------------------------------------------------

/// Registry key of a QAP robust-tabu job.
pub(crate) const QAP_TAG: &str = "qap/rts";

/// Executor for [`QapJobSpec`](crate::QapJobSpec): an [`RtsCursor`]
/// stepped in quanta. Unbatchable; the device path prices through the
/// real simulated swap kernel (instance matrices uploaded once per
/// device residency, assignment re-uploaded per iteration), the host
/// path through the delta table.
pub(crate) struct QapJob {
    pub id: JobId,
    pub name: String,
    pub priority: u8,
    pub seq: u64,
    pub instance: Arc<QapInstance>,
    pub cursor: RtsCursor,
    /// The fitness-selection mode the fleet (or a per-job override)
    /// asked for. The QAP swap path still *evaluates* through the
    /// functional simulated kernel — the full `C(n,2)` delta array is
    /// downloaded so robust tabu's functional walk (tabu inspection,
    /// aspiration) is bit-identical under either mode. What changes
    /// under [`SelectionMode::DeviceArgmin`] is the *pricing*, exactly
    /// like the tabu path: the modeled kernel folds tabu admissibility
    /// and aspiration into packed `(key, swap)` records, an on-device
    /// reduction launch ([`argmin_kernel_seconds`] over `C(n,2)` keys)
    /// selects the winner, and one packed record
    /// ([`ARGMIN_RECORD_BYTES`]) crosses PCIe per iteration instead of
    /// the whole delta array.
    pub selection: SelectionMode,
    /// Device seconds charged so far (serialized-baseline contribution
    /// of the device-resident part of the walk).
    pub charged_s: f64,
    /// Accumulated device ledger across every device quantum — surfaced
    /// in the job report (`RtsResult::book`), like a solo device run's.
    pub book: TimeBook,
    /// Iterations executed on CPU workers (priced onto the reference
    /// device for the serialized baseline).
    pub host_iters: u64,
    /// Device-resident evaluator, kept across quanta while the job stays
    /// on a device. Dropped on checkpoint/clone — a revived job pays the
    /// instance re-upload again, exactly as a real restart would.
    pub gpu: Option<GpuSwapEvaluator>,
    /// Host-side delta table, kept across host quanta. Invalidated when
    /// the walk advances on a device (the table's incremental state only
    /// tracks commits it saw).
    pub table: Option<TableEvaluator>,
}

impl QapJob {
    pub fn new(ctx: SubmitCtx, spec: crate::job::QapJobSpec) -> Self {
        let cursor = lnls_qap::RobustTabu::new(spec.config).cursor(&spec.instance, spec.init);
        Self {
            id: ctx.id,
            name: ctx.name(spec.name),
            priority: ctx.priority(spec.priority),
            seq: ctx.seq,
            instance: Arc::new(spec.instance),
            cursor,
            selection: ctx.selection,
            charged_s: 0.0,
            book: TimeBook::default(),
            host_iters: 0,
            gpu: None,
            table: None,
        }
    }

    /// Modeled per-iteration seconds of the O(n)-per-swap kernel over
    /// `C(n,2)` swaps on `spec` — the reference-device price used for
    /// the serialized baseline when iterations executed on a CPU worker.
    fn iter_estimate_s(&self, spec: &DeviceSpec) -> f64 {
        let n = self.instance.size() as f64;
        let m = n * (n - 1.0) / 2.0;
        let ops = m * 8.0 * n;
        let peak = spec.sm_count as f64 * spec.warp_size as f64 / spec.issue_cycles * spec.clock_hz;
        spec.launch_overhead_s + ops / (peak * 0.25)
    }
}

impl JobExec for QapJob {
    fn id(&self) -> JobId {
        self.id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn seq(&self) -> u64 {
        self.seq
    }

    fn done(&self) -> bool {
        self.cursor.is_done()
    }

    fn iterations(&self) -> u64 {
        self.cursor.iterations()
    }

    fn batch_key(&self) -> Option<BatchKey> {
        None
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn step_device(&mut self, dev: &mut Device, quota: u64) -> StepRun {
        let spec = dev.spec().clone();
        // (Re)build the device-resident evaluator when the job lands on
        // a new device residency (`unplaced` drops the cache whenever
        // the job leaves a backend) — instance matrices upload once per
        // residency, the paper's texture-resident F/D.
        if self.gpu.as_ref().is_none_or(|g| g.device().spec() != &spec) {
            self.gpu = Some(GpuSwapEvaluator::new(&self.instance, spec.clone()));
        }
        let eval = self.gpu.as_mut().expect("just ensured");
        let prev = eval.device().book().clone();
        let iters =
            self.cursor.step_batch((&*self.instance, eval as &mut dyn SwapEvaluator), quota);
        let mut delta = eval.device().book().delta_since(&prev);
        // Under DeviceArgmin the functional evaluation above is
        // unchanged (the walk still saw every delta), but the *pricing*
        // swaps the full `C(n,2)` readback for a packed-key reduction:
        // one argmin launch per iteration over the swap keys, one
        // packed record back per iteration (see the `selection` field
        // docs). The transformation mirrors what the tabu batch path
        // charges per lane.
        if self.selection.is_device() && iters > 0 {
            let n = self.instance.size() as u64;
            let m = n * (n - 1) / 2;
            if m > 1 {
                let full_bytes = m * std::mem::size_of::<i64>() as u64;
                let k = iters as f64;
                delta.d2h_s += (transfer_seconds(&spec, ARGMIN_RECORD_BYTES)
                    - transfer_seconds(&spec, full_bytes))
                    * k;
                delta.bytes_d2h =
                    delta.bytes_d2h + ARGMIN_RECORD_BYTES * iters - full_bytes * iters;
                delta.kernel_s += argmin_kernel_seconds(&spec, m) * k;
                delta.overhead_s += spec.launch_overhead_s * k;
                delta.launches += iters;
            }
        }
        let seconds = delta.gpu_total_s();
        dev.charge(&delta);
        self.book.add(&delta);
        self.charged_s += seconds;
        // The walk advanced past anything the idle delta table saw.
        if iters > 0 {
            self.table = None;
        }
        // QAP launches run through the real simulated kernel, a single
        // dependent chain per iteration — nothing overlaps, so the
        // serialized baseline equals the charged makespan.
        StepRun { iters, seconds, serialized_s: seconds, ..StepRun::default() }
    }

    fn step_host(&mut self, host: &HostSpec, quota: u64) -> StepRun {
        let table = self.table.get_or_insert_with(TableEvaluator::new);
        let iters =
            self.cursor.step_batch((&*self.instance, table as &mut dyn SwapEvaluator), quota);
        // Table scans are O(1) per swap: m lookups per iteration.
        let n = self.instance.size() as f64;
        let m = n * (n - 1.0) / 2.0;
        let ops = iters as f64 * m * 10.0;
        let seconds = ops * host.cpi_alu / host.clock_hz;
        self.host_iters += iters;
        StepRun { iters, seconds, serialized_s: seconds, ..StepRun::default() }
    }

    fn step_batch(
        &mut self,
        peers: &mut [&mut Box<dyn JobExec>],
        dev: &mut Device,
        span_iters: u64,
        _mode: LaunchMode,
    ) -> StepRun {
        assert!(peers.is_empty(), "QAP jobs are unbatchable");
        self.step_device(dev, span_iters.max(1))
    }

    fn unplaced(&mut self) {
        // Preemption evicts the device residency: the next device
        // placement — even on an identical spec — re-uploads F/D, like
        // a real scheduler moving a tenant off a GPU. The host-side
        // delta table is kept: `step_device` drops it whenever the walk
        // advances on a device, so a surviving table is always
        // consistent with the current permutation.
        self.gpu = None;
    }

    fn serial_equivalent_s(&self, spec: &DeviceSpec) -> f64 {
        // Device-resident iterations: the real charged seconds. Host
        // iterations: priced onto the reference device so the baseline
        // stays device-denominated.
        self.charged_s + self.iter_estimate_s(spec) * self.host_iters as f64
    }

    fn finish(&mut self, backend: String, started_s: f64, finished_s: f64) -> JobReport {
        // Device-resident iterations priced their launches into the
        // job's ledger; host-only runs report no book, matching a solo
        // TableEvaluator run.
        let book = (self.book.launches > 0).then(|| self.book.clone());
        let result = self.cursor.clone().into_result(book, backend.clone());
        JobReport {
            id: self.id,
            name: self.name.clone(),
            tenant: String::new(),
            backend,
            submitted_s: 0.0,
            started_s,
            finished_s,
            fused_iterations: 0,
            cancelled: false,
            rejected: false,
            outcome: JobOutcome::qap(result),
        }
    }

    fn clone_box(&self) -> Box<dyn JobExec> {
        Box::new(Self {
            id: self.id,
            name: self.name.clone(),
            priority: self.priority,
            seq: self.seq,
            instance: Arc::clone(&self.instance),
            cursor: self.cursor.clone(),
            selection: self.selection,
            charged_s: self.charged_s,
            book: self.book.clone(),
            host_iters: self.host_iters,
            gpu: None,
            table: None,
        })
    }

    fn persist_tag(&self) -> String {
        QAP_TAG.to_string()
    }

    fn persist(&self, out: &mut Vec<u8>) {
        self.id.0.write(out);
        self.name.write(out);
        self.priority.write(out);
        self.seq.write(out);
        self.selection.write(out);
        self.charged_s.write(out);
        self.book.write(out);
        self.host_iters.write(out);
        (*self.instance).write(out);
        self.cursor.persist(out);
    }
}

// ---------------------------------------------------------------------
// Simulated-annealing jobs
// ---------------------------------------------------------------------

/// Registry key of an annealing job over `(P, N)`.
pub(crate) fn anneal_tag<P: PersistTag, N: PersistTag>() -> String {
    format!("anneal/{}/{}", P::TAG, N::TAG)
}

/// Executor for [`AnnealJob`](crate::AnnealJob): an [`AnnealCursor`]
/// driven through the object-safe [`ProblemCursor`] adapter (SA samples
/// its own neighbors, so the problem is the only external a step
/// needs).
///
/// Pricing is *sampling-style*: each iteration is one single-neighbor
/// launch — upload the incremental state, evaluate one sampled move,
/// read one fitness back. On the cost model that is overhead-dominated
/// (the paper's launch-size argument seen from the other side), which
/// is exactly what a per-sample GPU annealer costs; CPU workers price
/// the same evaluation through host CPIs.
///
/// Same-shape chains **fuse**: annealing jobs sharing a problem family,
/// dimension and sampling neighborhood report a common [`BatchKey`], so
/// a group of `L` chains pays one `L`-lane sampled launch per iteration
/// (one launch overhead for the group) instead of `L` single-lane
/// launches — the overhead-dominated regime is exactly where that
/// matters. Sampling stays per chain (each walk draws its own move from
/// its own RNG), so fusion is pricing-only, like everywhere else.
pub(crate) struct AnnealExec<P, N>
where
    P: IncrementalEval + Send + Sync + 'static,
    N: Neighborhood + Clone + 'static,
{
    pub id: JobId,
    pub name: String,
    pub priority: u8,
    pub seq: u64,
    pub walk: ProblemCursor<P, AnnealCursor<P, N>>,
    pub state_h2d_bytes: u64,
    pub host: HostSpec,
    /// Iterations executed inside fused (≥ 2 member) launches.
    pub fused_iters: u64,
}

impl<P, N> AnnealExec<P, N>
where
    P: IncrementalEval + Send + Sync + 'static,
    N: Neighborhood + Clone + 'static,
{
    pub fn new(ctx: SubmitCtx, spec: crate::job::AnnealJob<P, N>) -> Self {
        let cursor = spec.sa.cursor(&spec.problem, spec.init);
        let state_h2d_bytes = spec.state_h2d_bytes.unwrap_or(4 * spec.problem.dim() as u64);
        Self {
            id: ctx.id,
            name: ctx.name(spec.name),
            priority: ctx.priority(spec.priority),
            seq: ctx.seq,
            walk: ProblemCursor::new(Arc::new(spec.problem), cursor),
            state_h2d_bytes,
            host: ctx.host,
            fused_iters: 0,
        }
    }

    /// One sampled-neighbor evaluation: `m = 1`.
    fn profile(&self, spec: &DeviceSpec) -> LaneProfile {
        LaneProfile::incremental_eval(
            spec,
            &self.host,
            1,
            self.walk.cursor().hood().k(),
            self.walk.problem().dim(),
            self.state_h2d_bytes,
        )
    }
}

impl<P, N> JobExec for AnnealExec<P, N>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
    N: Neighborhood + Clone + Persist + PersistTag + 'static,
{
    fn id(&self) -> JobId {
        self.id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn seq(&self) -> u64 {
        self.seq
    }

    fn done(&self) -> bool {
        self.walk.is_done()
    }

    fn iterations(&self) -> u64 {
        self.walk.iterations()
    }

    fn batch_key(&self) -> Option<BatchKey> {
        // Chains fuse when they sample the same neighborhood family over
        // the same problem shape; `hood_size` is 1 — every member
        // evaluates one sampled move per iteration regardless of how
        // large the neighborhood it samples from is.
        Some(BatchKey {
            type_id: TypeId::of::<Self>(),
            family: self.walk.problem().name(),
            dim: self.walk.problem().dim(),
            hood_size: 1,
            k: self.walk.cursor().hood().k(),
        })
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn step_device(&mut self, dev: &mut Device, quota: u64) -> StepRun {
        let spec = dev.spec().clone();
        let prof = self.profile(&spec);
        let iters = self.walk.step(quota);
        // Charge the ledger exactly like `iters` single-lane launches:
        // per-sample upload, launch overhead, one-neighbor kernel,
        // one-fitness readback — the same accounting a fused batch uses,
        // at width one.
        let h2d_s = transfer_seconds(&spec, prof.h2d_bytes);
        let d2h_s = transfer_seconds(&spec, prof.d2h_bytes);
        let n = iters as f64;
        let book = TimeBook {
            kernel_s: prof.kernel_seconds * n,
            overhead_s: spec.launch_overhead_s * n,
            h2d_s: h2d_s * n,
            d2h_s: d2h_s * n,
            bytes_h2d: prof.h2d_bytes * iters,
            bytes_d2h: prof.d2h_bytes * iters,
            launches: iters,
            host_s: prof.host_seconds * n,
        };
        let seconds = book.gpu_total_s();
        dev.charge(&book);
        // Single-neighbor launches are one dependent chain each; the
        // readback is already one record, so [`SelectionMode`] is a
        // no-op here and nothing overlaps.
        StepRun { iters, seconds, serialized_s: seconds, ..StepRun::default() }
    }

    fn step_host(&mut self, _host: &HostSpec, quota: u64) -> StepRun {
        // `profile` already folds the executor's host model in; only
        // its host column is used here (reference device irrelevant).
        let prof = self.profile(&DeviceSpec::gtx280());
        let iters = self.walk.step(quota);
        let seconds = prof.host_seconds * iters as f64;
        StepRun { iters, seconds, serialized_s: seconds, ..StepRun::default() }
    }

    fn step_batch(
        &mut self,
        peers: &mut [&mut Box<dyn JobExec>],
        dev: &mut Device,
        span_iters: u64,
        mode: LaunchMode,
    ) -> StepRun {
        // Fused annealing: the group's chains each sample one move per
        // iteration, evaluated as one multi-lane launch — `L` lanes
        // share a single kernel (work is additive: the fused grid covers
        // all sampled moves) and a single launch overhead, instead of
        // paying one launch per chain. Spans then double-buffer the
        // per-chain state uploads across iterations exactly like the
        // tabu path.
        let spec = dev.spec().clone();
        let mut typed: Vec<&mut Self> = peers
            .iter_mut()
            .map(|p| {
                p.as_any_mut()
                    .downcast_mut::<Self>()
                    .expect("batch key embeds TypeId; peers must share the leader's type")
            })
            .collect();
        let profiles: Vec<LaneProfile> = std::iter::once(self.profile(&spec))
            .chain(typed.iter().map(|t| t.profile(&spec)))
            .collect();
        let lanes: Vec<LaneIo> = profiles
            .iter()
            .map(|p| LaneIo { h2d_bytes: p.h2d_bytes, d2h_bytes: p.d2h_bytes })
            .collect();
        let kernel_s: f64 = profiles.iter().map(|p| p.kernel_seconds).sum();
        let host_per_iter: f64 = profiles.iter().map(|p| p.host_seconds).sum();
        let fused = !typed.is_empty();
        let budget = span_iters.max(1);
        let mut iters = 0u64;
        loop {
            self.walk.step(1);
            for t in typed.iter_mut() {
                t.walk.step(1);
            }
            iters += 1;
            if fused {
                self.fused_iters += 1;
                for t in typed.iter_mut() {
                    t.fused_iters += 1;
                }
            }
            if iters >= budget || self.walk.is_done() || typed.iter().any(|t| t.walk.is_done()) {
                break;
            }
        }
        let sched = price_fused_span(&spec, &lanes, &[kernel_s], iters as usize, mode);
        let launches = match mode {
            LaunchMode::PerIteration => iters,
            LaunchMode::PersistentSpan => 1,
        };
        let n = iters as f64;
        let book = TimeBook {
            kernel_s: kernel_s * n,
            overhead_s: spec.launch_overhead_s * launches as f64,
            h2d_s: lanes.iter().map(|l| transfer_seconds(&spec, l.h2d_bytes)).sum::<f64>() * n,
            d2h_s: lanes.iter().map(|l| transfer_seconds(&spec, l.d2h_bytes)).sum::<f64>() * n,
            bytes_h2d: lanes.iter().map(|l| l.h2d_bytes).sum::<u64>() * iters,
            bytes_d2h: lanes.iter().map(|l| l.d2h_bytes).sum::<u64>() * iters,
            launches,
            host_s: host_per_iter * n,
        };
        dev.charge(&book);
        StepRun {
            iters,
            seconds: sched.makespan,
            serialized_s: sched.serialized,
            spans: 1,
            launch_overhead_saved_s: (iters - launches) as f64 * spec.launch_overhead_s,
        }
    }

    fn serial_equivalent_s(&self, spec: &DeviceSpec) -> f64 {
        self.profile(spec).solo_seconds(spec) * self.walk.iterations() as f64
    }

    fn finish(&mut self, backend: String, started_s: f64, finished_s: f64) -> JobReport {
        let hood_name = self.walk.cursor().hood().name();
        let result = self.walk.cursor().clone().into_result(std::time::Duration::ZERO, hood_name);
        JobReport {
            id: self.id,
            name: self.name.clone(),
            tenant: String::new(),
            backend,
            submitted_s: 0.0,
            started_s,
            finished_s,
            fused_iterations: self.fused_iters,
            cancelled: false,
            rejected: false,
            outcome: JobOutcome::binary(result),
        }
    }

    fn clone_box(&self) -> Box<dyn JobExec> {
        Box::new(Self {
            id: self.id,
            name: self.name.clone(),
            priority: self.priority,
            seq: self.seq,
            walk: self.walk.clone(),
            state_h2d_bytes: self.state_h2d_bytes,
            host: self.host.clone(),
            fused_iters: self.fused_iters,
        })
    }

    fn persist_tag(&self) -> String {
        anneal_tag::<P, N>()
    }

    fn persist(&self, out: &mut Vec<u8>) {
        self.id.0.write(out);
        self.name.write(out);
        self.priority.write(out);
        self.seq.write(out);
        self.state_h2d_bytes.write(out);
        self.host.write(out);
        self.fused_iters.write(out);
        self.walk.problem().write(out);
        self.walk.cursor().persist(out);
    }
}

/// Decode one [`AnnealExec`] payload (inverse of its `persist`).
pub(crate) fn read_anneal_job<P, N>(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError>
where
    P: IncrementalEval + Persist + PersistTag + Send + Sync + 'static,
    N: Neighborhood + Clone + Persist + PersistTag + 'static,
{
    let id = JobId(r.read::<u64>()?);
    let name: String = r.read()?;
    let priority: u8 = r.read()?;
    let seq: u64 = r.read()?;
    let state_h2d_bytes: u64 = r.read()?;
    let host: HostSpec = r.read()?;
    let fused_iters: u64 = r.read()?;
    let problem: P = r.read()?;
    let cursor = AnnealCursor::<P, N>::read_persisted(r, &problem)?;
    Ok(Box::new(AnnealExec {
        id,
        name,
        priority,
        seq,
        walk: ProblemCursor::new(Arc::new(problem), cursor),
        state_h2d_bytes,
        host,
        fused_iters,
    }))
}

/// Decode one [`QapJob`] payload (inverse of its `persist`).
pub(crate) fn read_qap_job(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError> {
    let id = JobId(r.read::<u64>()?);
    let name: String = r.read()?;
    let priority: u8 = r.read()?;
    let seq: u64 = r.read()?;
    let selection: SelectionMode = r.read()?;
    let charged_s: f64 = r.read()?;
    let book: TimeBook = r.read()?;
    let host_iters: u64 = r.read()?;
    let instance: QapInstance = r.read()?;
    let cursor = RtsCursor::read_persisted(r, &instance)?;
    Ok(Box::new(QapJob {
        id,
        name,
        priority,
        seq,
        instance: Arc::new(instance),
        cursor,
        selection,
        charged_s,
        book,
        host_iters,
        gpu: None,
        table: None,
    }))
}
