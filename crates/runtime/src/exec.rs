//! Type-erased job executors.
//!
//! The scheduler sees jobs as `Box<dyn JobExec>`: steppable, priceable,
//! cloneable (for checkpoints), and — when two erased jobs report the
//! same [`BatchKey`] — fusable. The key embeds the concrete Rust type
//! (`TypeId`), so a leader may downcast its batch peers to its own type
//! and drive them through one [`BatchedExplorer`] pass.

use crate::job::{JobId, JobOutcome, JobReport};
use lnls_core::{BatchLane, BatchedExplorer, IncrementalEval, LaneProfile, TabuCursor};
use lnls_gpu_sim::{Device, DeviceSpec, HostSpec};
use lnls_neighborhood::Neighborhood;
use lnls_qap::{
    GpuSwapEvaluator, Permutation, QapInstance, RobustTabu, RtsConfig, SwapEvaluator,
    TableEvaluator,
};
use std::any::{Any, TypeId};
use std::sync::Arc;

/// Launch-batching compatibility key: jobs fuse when the concrete
/// executor type, problem family, dimensionality and neighborhood all
/// agree.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BatchKey {
    type_id: TypeId,
    family: String,
    dim: usize,
    hood_size: u64,
    k: usize,
}

pub(crate) trait JobExec: Send {
    fn id(&self) -> JobId;
    fn priority(&self) -> u8;
    fn seq(&self) -> u64;
    fn done(&self) -> bool;
    fn batch_key(&self) -> Option<BatchKey>;
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// One iteration (or one atomic run) on a fleet device. Charges the
    /// device ledger; returns the modeled seconds consumed.
    fn step_device(&mut self, dev: &mut Device) -> f64;

    /// One iteration (or one atomic run) on a CPU worker; returns the
    /// modeled host seconds consumed.
    fn step_host(&mut self, host: &HostSpec) -> f64;

    /// One fused iteration covering `self` and `peers` (all sharing this
    /// job's [`BatchKey`]). Members already finished must not be passed.
    fn step_batch(&mut self, peers: &mut [&mut Box<dyn JobExec>], dev: &mut Device) -> f64;

    /// Modeled cost of the work this job has *executed so far* if it had
    /// run solo, launch-per-iteration, on `spec` — the serialized-fleet
    /// baseline contribution.
    fn serial_equivalent_s(&self, spec: &DeviceSpec) -> f64;

    /// Produce the final report (call once, after [`done`](Self::done)).
    fn finish(&mut self, backend: String, started_s: f64, finished_s: f64) -> JobReport;

    /// Deep copy for checkpoints.
    fn clone_box(&self) -> Box<dyn JobExec>;
}

// ---------------------------------------------------------------------
// Binary tabu jobs
// ---------------------------------------------------------------------

/// Executor for [`BinaryJob`](crate::BinaryJob): a [`TabuCursor`] stepped
/// iteration by iteration, batchable with same-key tenants.
pub(crate) struct BinaryTabuJob<P, N>
where
    P: IncrementalEval + 'static,
    N: Neighborhood + Clone + Send + Sync + 'static,
{
    pub id: JobId,
    pub name: String,
    pub priority: u8,
    pub seq: u64,
    pub problem: Arc<P>,
    pub hood: N,
    pub cursor: TabuCursor<P>,
    pub out: Vec<i64>,
    pub state_h2d_bytes: u64,
    pub host: HostSpec,
    pub fused_iters: u64,
}

impl<P, N> BinaryTabuJob<P, N>
where
    P: IncrementalEval + 'static,
    N: Neighborhood + Clone + Send + Sync + 'static,
{
    pub fn new(id: JobId, seq: u64, spec: crate::job::BinaryJob<P, N>, host: HostSpec) -> Self {
        let cursor = spec.search.cursor(&spec.problem, spec.init);
        let state_h2d_bytes = spec.state_h2d_bytes.unwrap_or(4 * spec.problem.dim() as u64);
        Self {
            id,
            name: spec.name,
            priority: spec.priority,
            seq,
            problem: Arc::new(spec.problem),
            hood: spec.hood,
            cursor,
            out: Vec::new(),
            state_h2d_bytes,
            host,
            fused_iters: 0,
        }
    }

    fn profile(&self, spec: &DeviceSpec) -> LaneProfile {
        LaneProfile::incremental_eval(
            spec,
            &self.host,
            self.hood.size(),
            self.hood.k(),
            self.problem.dim(),
            self.state_h2d_bytes,
        )
    }
}

impl<P, N> JobExec for BinaryTabuJob<P, N>
where
    P: IncrementalEval + 'static,
    N: Neighborhood + Clone + Send + Sync + 'static,
{
    fn id(&self) -> JobId {
        self.id
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn seq(&self) -> u64 {
        self.seq
    }

    fn done(&self) -> bool {
        self.cursor.stop_reason().is_some()
    }

    fn batch_key(&self) -> Option<BatchKey> {
        Some(BatchKey {
            type_id: TypeId::of::<Self>(),
            family: self.problem.name(),
            dim: self.problem.dim(),
            hood_size: self.hood.size(),
            k: self.hood.k(),
        })
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn step_device(&mut self, dev: &mut Device) -> f64 {
        self.step_batch(&mut [], dev)
    }

    fn step_host(&mut self, host: &HostSpec) -> f64 {
        // Functional evaluation identical to the device path; priced as
        // one sequential-host neighborhood scan.
        let m = self.hood.size();
        let prof = LaneProfile::incremental_eval(
            &DeviceSpec::gtx280(),
            host,
            m,
            self.hood.k(),
            self.problem.dim(),
            self.state_h2d_bytes,
        );
        let problem = &*self.problem;
        let (s, state) = self.cursor.explore_parts();
        let out = &mut self.out;
        out.clear();
        out.reserve(m as usize);
        self.hood.for_each_move_in(0, m, &mut |_, mv| {
            out.push(problem.neighbor_fitness(state, s, &mv));
            true
        });
        self.cursor.select_and_commit(problem, &self.hood, &self.out);
        prof.host_seconds
    }

    fn step_batch(&mut self, peers: &mut [&mut Box<dyn JobExec>], dev: &mut Device) -> f64 {
        let spec = dev.spec().clone();
        let prof = self.profile(&spec);
        let mut typed: Vec<&mut Self> = peers
            .iter_mut()
            .map(|p| {
                p.as_any_mut()
                    .downcast_mut::<Self>()
                    .expect("batch key embeds TypeId; peers must share the leader's type")
            })
            .collect();
        let peer_profiles: Vec<LaneProfile> = typed.iter().map(|t| t.profile(&spec)).collect();

        let mut bex = BatchedExplorer::new(self.hood.clone(), spec);
        {
            let mut lanes: Vec<BatchLane<'_, P>> = Vec::with_capacity(1 + typed.len());
            let (s, state) = self.cursor.explore_parts();
            lanes.push(BatchLane {
                problem: &*self.problem,
                s,
                state,
                out: &mut self.out,
                profile: prof,
            });
            for (t, p) in typed.iter_mut().zip(&peer_profiles) {
                let (s, state) = t.cursor.explore_parts();
                lanes.push(BatchLane {
                    problem: &*t.problem,
                    s,
                    state,
                    out: &mut t.out,
                    profile: *p,
                });
            }
            bex.explore_batch(&mut lanes);
        }
        let fused = !typed.is_empty();
        self.cursor.select_and_commit(&*self.problem, &self.hood, &self.out);
        if fused {
            self.fused_iters += 1;
        }
        for t in typed {
            t.cursor.select_and_commit(&*t.problem, &t.hood, &t.out);
            t.fused_iters += 1;
        }
        let seconds = bex.book().gpu_total_s();
        dev.charge(bex.book());
        seconds
    }

    fn serial_equivalent_s(&self, spec: &DeviceSpec) -> f64 {
        self.profile(spec).solo_seconds(spec) * self.cursor.iterations() as f64
    }

    fn finish(&mut self, backend: String, started_s: f64, finished_s: f64) -> JobReport {
        let result =
            self.cursor.clone().into_result(std::time::Duration::ZERO, None, backend.clone());
        JobReport {
            id: self.id,
            name: self.name.clone(),
            backend,
            started_s,
            finished_s,
            fused_iterations: self.fused_iters,
            outcome: JobOutcome::Binary(result),
        }
    }

    fn clone_box(&self) -> Box<dyn JobExec> {
        Box::new(Self {
            id: self.id,
            name: self.name.clone(),
            priority: self.priority,
            seq: self.seq,
            problem: Arc::clone(&self.problem),
            hood: self.hood.clone(),
            cursor: self.cursor.clone(),
            out: Vec::new(),
            state_h2d_bytes: self.state_h2d_bytes,
            host: self.host.clone(),
            fused_iters: self.fused_iters,
        })
    }
}

// ---------------------------------------------------------------------
// QAP jobs
// ---------------------------------------------------------------------

/// Executor for [`QapJobSpec`](crate::QapJobSpec): one atomic
/// robust-tabu run. Unbatchable; the device path prices through the real
/// simulated swap kernel, the host path through the delta table.
pub(crate) struct QapJob {
    pub id: JobId,
    pub name: String,
    pub priority: u8,
    pub seq: u64,
    pub instance: Arc<QapInstance>,
    pub config: RtsConfig,
    pub init: Permutation,
    pub result: Option<lnls_qap::RtsResult>,
    pub charged_s: f64,
}

impl QapJob {
    /// Modeled per-iteration seconds of the O(n)-per-swap kernel over
    /// `C(n,2)` swaps on `spec` — the reference-device price used for
    /// the serialized baseline when the run itself executed on a CPU
    /// worker.
    fn iter_estimate_s(&self, spec: &DeviceSpec) -> f64 {
        let n = self.instance.size() as f64;
        let m = n * (n - 1.0) / 2.0;
        let ops = m * 8.0 * n;
        let peak = spec.sm_count as f64 * spec.warp_size as f64 / spec.issue_cycles * spec.clock_hz;
        spec.launch_overhead_s + ops / (peak * 0.25)
    }
}

impl JobExec for QapJob {
    fn id(&self) -> JobId {
        self.id
    }

    fn priority(&self) -> u8 {
        self.priority
    }

    fn seq(&self) -> u64 {
        self.seq
    }

    fn done(&self) -> bool {
        self.result.is_some()
    }

    fn batch_key(&self) -> Option<BatchKey> {
        None
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn step_device(&mut self, dev: &mut Device) -> f64 {
        let mut eval = GpuSwapEvaluator::new(&self.instance, dev.spec().clone());
        let driver = RobustTabu::new(self.config.clone());
        let result = driver.run(&self.instance, &mut eval, self.init.clone());
        let book = eval.book().expect("GPU evaluator prices its work");
        let seconds = book.gpu_total_s();
        dev.charge(&book);
        self.result = Some(result);
        // Atomic and unfused: when executed on a device, the charged
        // seconds are exactly the serialized-baseline contribution.
        self.charged_s = seconds;
        seconds
    }

    fn step_host(&mut self, host: &HostSpec) -> f64 {
        let mut eval = TableEvaluator::new();
        let driver = RobustTabu::new(self.config.clone());
        let result = driver.run(&self.instance, &mut eval, self.init.clone());
        // Table scans are O(1) per swap: m lookups per iteration.
        let n = self.instance.size() as f64;
        let m = n * (n - 1.0) / 2.0;
        let ops = result.iterations as f64 * m * 10.0;
        let seconds = ops * host.cpi_alu / host.clock_hz;
        self.result = Some(result);
        seconds
    }

    fn step_batch(&mut self, peers: &mut [&mut Box<dyn JobExec>], dev: &mut Device) -> f64 {
        assert!(peers.is_empty(), "QAP jobs are unbatchable");
        self.step_device(dev)
    }

    fn serial_equivalent_s(&self, spec: &DeviceSpec) -> f64 {
        if self.charged_s > 0.0 {
            // Ran on a device: the real charged seconds.
            self.charged_s
        } else {
            // Ran on a CPU worker: price the same iterations on the
            // reference device so the baseline stays device-denominated.
            let iters = self.result.as_ref().map_or(0, |r| r.iterations);
            self.iter_estimate_s(spec) * iters as f64
        }
    }

    fn finish(&mut self, backend: String, started_s: f64, finished_s: f64) -> JobReport {
        let result = self.result.clone().expect("finish() after done()");
        JobReport {
            id: self.id,
            name: self.name.clone(),
            backend,
            started_s,
            finished_s,
            fused_iterations: 0,
            outcome: JobOutcome::Qap(result),
        }
    }

    fn clone_box(&self) -> Box<dyn JobExec> {
        Box::new(Self {
            id: self.id,
            name: self.name.clone(),
            priority: self.priority,
            seq: self.seq,
            instance: Arc::clone(&self.instance),
            config: self.config.clone(),
            init: self.init.clone(),
            result: self.result.clone(),
            charged_s: self.charged_s,
        })
    }
}
