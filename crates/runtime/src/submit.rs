//! The problem-agnostic submission surface: [`SearchJob`], the build
//! context handed to it, the [`JobSpec`] envelope, and the [`JobCodec`]
//! persistence companion.
//!
//! PR 2 unified *execution* behind
//! [`SearchCursor`](lnls_core::SearchCursor); this module unifies
//! *submission*. Anything that can
//!
//! 1. build a boxed steppable executor — a
//!    [`DynCursor`](lnls_core::DynCursor)-style object-safe shell over a
//!    cursor, expressed here as [`JobExec`];
//! 2. price its per-iteration launch on a
//!    [`DeviceSpec`](lnls_gpu_sim::DeviceSpec) (the executor's
//!    `step_device` / `serial_equivalent_s` contract); and
//! 3. name a persistence tag for the checkpoint registry
//!
//! is submittable through the single generic
//! [`Scheduler::submit`](crate::Scheduler::submit). The workspace ships
//! three implementations — [`BinaryJob`](crate::BinaryJob) (full
//! neighborhood tabu, fusable), [`QapJobSpec`](crate::QapJobSpec)
//! (robust tabu over swap moves) and [`AnnealJob`](crate::AnnealJob)
//! (simulated annealing, sampling-style pricing) — and new workloads
//! plug in without touching this crate.

use crate::exec::JobExec;
use crate::job::JobId;
use lnls_core::persist::{PersistError, Reader};
use lnls_gpu_sim::{HostSpec, SelectionMode};

/// Everything the scheduler grants a job at submission time: identity,
/// submission order, the host model for CPU-worker pricing, the
/// effective [`SelectionMode`] (the scheduler-wide default, or the
/// envelope's override), and the envelope's name/priority overrides.
///
/// Constructed only by the scheduler; [`SearchJob::into_exec`] receives
/// it and threads the pieces into the concrete executor.
pub struct SubmitCtx {
    pub(crate) id: JobId,
    pub(crate) seq: u64,
    pub(crate) host: HostSpec,
    pub(crate) selection: SelectionMode,
    pub(crate) name_override: Option<String>,
    pub(crate) priority_override: Option<u8>,
}

impl SubmitCtx {
    /// The identity assigned to this submission.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Monotone submission sequence number (FIFO tie-breaker).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Host description for CPU-worker pricing.
    pub fn host(&self) -> &HostSpec {
        &self.host
    }

    /// The effective selection mode this job's launches are priced
    /// under: the [`JobSpec`] override when one was given, else the
    /// scheduler-wide [`SchedulerConfig::selection`](crate::SchedulerConfig::selection).
    /// Executors whose readback is already a single record per iteration
    /// (e.g. sampling-style annealing) may ignore it.
    pub fn selection(&self) -> SelectionMode {
        self.selection
    }

    /// The effective submission name: the [`JobSpec`] override when one
    /// was given, else `default`.
    pub fn name(&self, default: impl Into<String>) -> String {
        self.name_override.clone().unwrap_or_else(|| default.into())
    }

    /// The effective priority: the [`JobSpec`] override when one was
    /// given, else `default`.
    pub fn priority(&self, default: u8) -> u8 {
        self.priority_override.unwrap_or(default)
    }
}

/// One submittable search workload — the open trait behind the single
/// generic [`Scheduler::submit`](crate::Scheduler::submit) entry point.
///
/// See the module docs above for the three capabilities an
/// implementor provides (all of them through the executor it builds).
pub trait SearchJob: 'static {
    /// Submission name (reports only).
    fn name(&self) -> &str;

    /// Queue priority: higher buys a larger fair share under preemption,
    /// absolute precedence without it.
    fn priority(&self) -> u8 {
        0
    }

    /// Registry tag the built executor persists under (see
    /// [`JobRegistry`](crate::JobRegistry)).
    fn persist_tag(&self) -> String;

    /// Build the type-erased executor the scheduler steps, prices,
    /// preempts and checkpoints.
    fn into_exec(self: Box<Self>, ctx: SubmitCtx) -> Box<dyn JobExec>;
}

/// Persistence companion of [`SearchJob`]: how executors of this job
/// type come back from checkpoint bytes.
///
/// Registering a job type with
/// [`JobRegistry::register`](crate::JobRegistry::register) flows through
/// this trait, so every workload — built-in or external — round-trips
/// through [`FleetCheckpoint::save`](crate::FleetCheckpoint::save) /
/// [`load`](crate::FleetCheckpoint::load) the same way.
pub trait JobCodec: SearchJob {
    /// Stable registry tag; must equal
    /// [`SearchJob::persist_tag`] of every executor this type builds.
    fn registry_tag() -> String;

    /// Decode one executor payload written under
    /// [`registry_tag`](Self::registry_tag).
    fn decode(r: &mut Reader<'_>) -> Result<Box<dyn JobExec>, PersistError>;
}

/// The fleet-level envelope around a [`SearchJob`]: everything the
/// *scheduler* should know about a submission that the job type itself
/// does not — tenant identity, overrides, an iteration budget, a
/// deadline, and the checkpoint policy.
///
/// Built fluently and submitted through
/// [`Scheduler::submit_spec`](crate::Scheduler::submit_spec) or
/// [`FleetClient::submit_spec`](crate::FleetClient::submit_spec);
/// bare-job `submit` calls wrap into a default envelope.
pub struct JobSpec<J> {
    pub(crate) job: J,
    pub(crate) name: Option<String>,
    pub(crate) priority: Option<u8>,
    pub(crate) tenant: String,
    pub(crate) iter_budget: Option<u64>,
    pub(crate) deadline_s: Option<f64>,
    pub(crate) checkpoint: bool,
    pub(crate) selection: Option<SelectionMode>,
}

impl<J: SearchJob> JobSpec<J> {
    /// A default envelope: the job's own name and priority, tenant
    /// `"default"`, no budget, no deadline, checkpointable, the
    /// scheduler-wide selection mode.
    pub fn new(job: J) -> Self {
        Self {
            job,
            name: None,
            priority: None,
            tenant: "default".into(),
            iter_budget: None,
            deadline_s: None,
            checkpoint: true,
            selection: None,
        }
    }

    /// Override the submission name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Override the queue priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Attribute the submission to a tenant (admission control counts
    /// queue occupancy per tenant; reports carry the attribution).
    pub fn for_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Cap the fleet iterations this job may consume. A job hitting its
    /// budget is drained at the next tick and reports *done* with its
    /// best-so-far — a spend limit, not a cancellation.
    pub fn with_iter_budget(mut self, iters: u64) -> Self {
        self.iter_budget = Some(iters);
        self
    }

    /// Drain the job once the fleet clock passes `deadline_s` (modeled
    /// seconds). A job that misses its deadline is drained through the
    /// cancellation path: its report is marked
    /// [`cancelled`](crate::JobReport::cancelled) and carries the
    /// best-so-far.
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Override the scheduler-wide
    /// [`SelectionMode`] for this job alone: how its per-iteration
    /// readback is priced (host-side scan of the whole fitness array vs.
    /// on-device argmin reduction to one record per lane). Pricing-only —
    /// the job's search trajectory and result are bit-identical either
    /// way.
    pub fn with_selection(mut self, selection: SelectionMode) -> Self {
        self.selection = Some(selection);
        self
    }

    /// Exclude this job from fleet checkpoints: it is simply absent
    /// after a [`Scheduler::restore`](crate::Scheduler::restore) (useful
    /// for cheap speculative work not worth snapshot bytes).
    pub fn without_checkpoint(mut self) -> Self {
        self.checkpoint = false;
        self
    }

    /// The effective priority of the envelope (override or the job's
    /// own) — what admission control compares when shedding.
    pub fn effective_priority(&self) -> u8 {
        self.priority.unwrap_or_else(|| self.job.priority())
    }

    /// The tenant attribution.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }
}
