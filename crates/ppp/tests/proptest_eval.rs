//! Property-based tests of the PPP objective and incremental state: the
//! invariant every experiment rests on is `neighbor_fitness(s, mv) ==
//! evaluate(s ⊕ mv)` for *all* moves and all reachable states.

use lnls_core::{BinaryProblem, BitString, IncrementalEval};
use lnls_neighborhood::{FlipMove, KHamming, Neighborhood};
use lnls_ppp::objective::full_fitness;
use lnls_ppp::{Ppp, PppInstance};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_move(n: usize) -> impl Strategy<Value = FlipMove> {
    (1usize..=4, any::<u64>()).prop_map(move |(k, x)| {
        let hood = KHamming::new(n, k);
        hood.unrank(x % hood.size())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Incremental neighbor fitness equals full evaluation.
    #[test]
    fn delta_equals_full(
        m in 5usize..60,
        n in 5usize..60,
        seed in any::<u64>(),
        mv_seed in any::<u64>(),
    ) {
        let inst = PppInstance::generate(m, n, seed);
        let p = Ppp::new(inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let s = BitString::random(&mut rng, n);
        let mut st = p.init_state(&s);
        let k = (mv_seed % 4 + 1) as usize;
        let hood = KHamming::new(n, k);
        let mv = hood.unrank(mv_seed % hood.size());
        let mut s2 = s.clone();
        s2.apply(&mv);
        prop_assert_eq!(p.neighbor_fitness(&mut st, &s, &mv), p.evaluate(&s2));
    }

    /// State stays exact across arbitrary committed walks.
    #[test]
    fn state_exact_after_walks(
        mn in 5usize..40,
        seed in any::<u64>(),
        moves in prop::collection::vec(any::<u64>(), 1..20),
    ) {
        let inst = PppInstance::generate(mn, mn, seed);
        let p = Ppp::new(inst);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = BitString::random(&mut rng, mn);
        let mut st = p.init_state(&s);
        for x in moves {
            let k = (x % 4 + 1) as usize;
            let hood = KHamming::new(mn, k);
            let mv = hood.unrank(x % hood.size());
            p.apply_move(&mut st, &s, &mv);
            s.apply(&mv);
            prop_assert_eq!(p.state_fitness(&st), p.evaluate(&s));
        }
    }

    /// The planted secret always scores 0 and fitness is non-negative
    /// everywhere.
    #[test]
    fn fitness_nonnegative_and_secret_optimal(
        m in 5usize..50,
        n in 5usize..50,
        seed in any::<u64>(),
        probe in any::<u64>(),
    ) {
        let inst = PppInstance::generate(m, n, seed);
        let secret = inst.secret.clone().unwrap();
        prop_assert_eq!(full_fitness(&inst, &secret), 0);
        let mut rng = StdRng::seed_from_u64(probe);
        let v = BitString::random(&mut rng, n);
        prop_assert!(full_fitness(&inst, &v) >= 0);
    }

    /// Zero fitness is exactly multiset equality (the success criterion).
    #[test]
    fn zero_fitness_iff_solution(mn in 5usize..40, seed in any::<u64>(), flips in 0usize..3) {
        let inst = PppInstance::generate(mn, mn, seed);
        let mut v = inst.secret.clone().unwrap();
        for i in 0..flips {
            v.flip((seed as usize + i * 7) % mn);
        }
        prop_assert_eq!(full_fitness(&inst, &v) == 0, inst.is_solution(&v));
    }

    /// Instance persistence round-trips through the text format.
    #[test]
    fn save_parse_roundtrip(m in 3usize..40, n in 3usize..40, seed in any::<u64>()) {
        let inst = PppInstance::generate(m, n, seed);
        let back = PppInstance::parse(&inst.save_to_string()).unwrap();
        prop_assert_eq!(inst.a, back.a);
        prop_assert_eq!(inst.target_hist, back.target_hist);
        prop_assert_eq!(inst.secret, back.secret);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The GPU kernel agrees with the host evaluator on random instances
    /// — the bit-exactness that lets quality experiments run on either
    /// backend (heavier, fewer cases).
    #[test]
    fn gpu_kernel_equals_host(
        m in 5usize..40,
        n in 8usize..32,
        seed in any::<u64>(),
        k in 1usize..=3,
    ) {
        use lnls_core::{Explorer, SequentialExplorer};
        use lnls_ppp::{GpuExplorerConfig, PppGpuExplorer};
        let inst = PppInstance::generate(m, n, seed);
        let p = Ppp::new(inst);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = BitString::random(&mut rng, n);
        let mut st = p.init_state(&s);
        let mut gpu = PppGpuExplorer::new(&p, k, GpuExplorerConfig::default());
        let mut cpu = SequentialExplorer::new(KHamming::new(n, k));
        let mut out_gpu = Vec::new();
        let mut out_cpu = Vec::new();
        gpu.explore(&p, &s, &mut st, &mut out_gpu);
        Explorer::<Ppp>::explore(&mut cpu, &p, &s, &mut st, &mut out_cpu);
        prop_assert_eq!(out_gpu, out_cpu);
    }

    /// Arbitrary moves applied via `arb_move` keep the scratch clean
    /// (the delta histogram must always return to all-zeros).
    #[test]
    fn scratch_always_clean(mn in 6usize..30, seed in any::<u64>(), mv in arb_move(20)) {
        // n fixed to 20 by arb_move; instance must match.
        let _ = mn;
        let inst = PppInstance::generate(25, 20, seed);
        let p = Ppp::new(inst);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = BitString::random(&mut rng, 20);
        let mut st = p.init_state(&s);
        let f1 = p.neighbor_fitness(&mut st, &s, &mv);
        let f2 = p.neighbor_fitness(&mut st, &s, &mv);
        prop_assert_eq!(f1, f2, "second call differs: dirty scratch");
    }
}
