//! The PPP as an [`IncrementalEval`] problem: `O(m·k + n)` neighbor
//! evaluation instead of `O(m·n)` full re-evaluation.
//!
//! The state tracks the product vector `Y`, the candidate histogram `H'`
//! (non-negative bins), and both cost terms. Evaluating a `k`-flip
//! neighbor walks the `k` packed matrix columns once: per row,
//! `ΔY_j = Σ_c 4·(a_jc ⊕ v_c) − 2`, and the histogram-cost delta is
//! accumulated through a scratch delta-histogram (`O(touched bins)`
//! cleanup, no allocation).

use crate::instance::PppInstance;
use crate::objective::{fitness_parts, NEG_WEIGHT};
use lnls_core::{BinaryProblem, BitString, IncrementalEval};
use lnls_neighborhood::FlipMove;

/// The PPP wrapped as a minimization problem.
#[derive(Clone, Debug)]
pub struct Ppp {
    /// The instance being attacked.
    pub inst: PppInstance,
}

impl Ppp {
    /// Wrap an instance.
    pub fn new(inst: PppInstance) -> Self {
        Self { inst }
    }
}

impl lnls_core::Persist for Ppp {
    fn write(&self, out: &mut Vec<u8>) {
        // The `.ppp` text format already round-trips instances without a
        // serialization crate; embed it as one length-prefixed string.
        lnls_core::Persist::write(&self.inst.save_to_string(), out);
    }
    fn read(r: &mut lnls_core::Reader<'_>) -> Result<Self, lnls_core::PersistError> {
        let text: String = r.read()?;
        let inst = PppInstance::parse(&text).map_err(lnls_core::PersistError::new)?;
        Ok(Ppp::new(inst))
    }
}

impl lnls_core::PersistTag for Ppp {
    const TAG: &'static str = "ppp";
}

/// Incremental-evaluation state for [`Ppp`].
#[derive(Clone, Debug)]
pub struct PppState {
    /// Product vector `Y = A·x`.
    pub y: Vec<i32>,
    /// Histogram of non-negative `Y` values (`0..=n`).
    pub hist: Vec<i32>,
    /// `Σ_j (|Y_j| − Y_j)` (un-weighted).
    pub neg_cost: i64,
    /// `Σ_i |H_i − H'_i|`.
    pub hist_cost: i64,
    /// Scratch delta-histogram (always all-zero between calls).
    delta: Vec<i32>,
    /// Scratch list of touched bins (cleared between calls).
    touched: Vec<u32>,
}

impl PppState {
    /// The two cost terms combined, the paper's `f(V')`.
    #[inline]
    pub fn fitness(&self) -> i64 {
        NEG_WEIGHT * self.neg_cost + self.hist_cost
    }
}

/// `|y| − y` (0 for non-negative, `−2y` for negative).
#[inline]
fn neg_term(y: i32) -> i64 {
    if y < 0 {
        (-2 * y) as i64
    } else {
        0
    }
}

impl Ppp {
    /// Shared row walk: calls `row_fn(j, old_y, new_y)` for every row
    /// whose product changes under `mv`.
    #[inline]
    fn for_changed_rows<F: FnMut(usize, i32, i32)>(
        &self,
        y: &[i32],
        s: &BitString,
        mv: &FlipMove,
        mut row_fn: F,
    ) {
        let m = self.inst.m();
        let wpc = self.inst.a.words_per_col();
        // Per flipped column: xor-adjusted packed bits so that a set bit
        // contributes +4 to ΔY (and each column contributes −2 baseline).
        let k = mv.k();
        let mut xors: [&[u64]; 4] = [&[]; 4];
        let mut inv: [u64; 4] = [0; 4];
        for (t, &c) in mv.bits().iter().enumerate() {
            xors[t] = self.inst.a.col_words(c as usize);
            inv[t] = if s.get(c as usize) { u64::MAX } else { 0 };
        }
        let base = -2 * k as i32;
        // Index loops mirror the kernel's word/bit addressing.
        #[allow(clippy::needless_range_loop)]
        for w in 0..wpc {
            let lo = w * 64;
            let hi = m.min(lo + 64);
            let mut words = [0u64; 4];
            for t in 0..k {
                words[t] = xors[t][w] ^ inv[t];
            }
            for j in lo..hi {
                let r = (j - lo) as u32;
                let mut set = 0i32;
                for word in words.iter().take(k) {
                    set += ((word >> r) & 1) as i32;
                }
                let dy = 4 * set + base;
                if dy != 0 {
                    row_fn(j, y[j], y[j] + dy);
                }
            }
        }
    }
}

impl BinaryProblem for Ppp {
    fn dim(&self) -> usize {
        self.inst.n()
    }

    fn evaluate(&self, s: &BitString) -> i64 {
        crate::objective::full_fitness(&self.inst, s)
    }

    fn name(&self) -> String {
        format!("ppp-{}x{}", self.inst.m(), self.inst.n())
    }

    fn target_fitness(&self) -> Option<i64> {
        Some(0)
    }
}

impl IncrementalEval for Ppp {
    type State = PppState;

    fn init_state(&self, s: &BitString) -> PppState {
        let n = self.inst.n();
        let mut y = Vec::new();
        self.inst.a.product(s, &mut y);
        let mut hist = vec![0i32; n + 1];
        for &yj in &y {
            if yj >= 0 {
                hist[yj as usize] += 1;
            }
        }
        let (neg_cost, hist_cost) = fitness_parts(&self.inst, s);
        PppState { y, hist, neg_cost, hist_cost, delta: vec![0; n + 1], touched: Vec::new() }
    }

    fn state_fitness(&self, state: &PppState) -> i64 {
        state.fitness()
    }

    fn neighbor_fitness(&self, state: &mut PppState, s: &BitString, mv: &FlipMove) -> i64 {
        let mut neg_d = 0i64;
        // Split borrows: the closure mutates scratch while reading `y`.
        let PppState { y, hist, neg_cost, hist_cost, delta, touched } = state;
        debug_assert!(touched.is_empty());
        self.for_changed_rows(y, s, mv, |_, old, new| {
            neg_d += neg_term(new) - neg_term(old);
            if old >= 0 {
                delta[old as usize] -= 1;
                touched.push(old as u32);
            }
            if new >= 0 {
                delta[new as usize] += 1;
                touched.push(new as u32);
            }
        });
        let mut hist_d = 0i64;
        let target = &self.inst.target_hist;
        for &b in touched.iter() {
            let b = b as usize;
            let d = delta[b];
            if d != 0 {
                let h = target[b] as i64;
                let hp = hist[b] as i64;
                hist_d += (h - (hp + d as i64)).abs() - (h - hp).abs();
                delta[b] = 0;
            }
        }
        touched.clear();
        NEG_WEIGHT * (*neg_cost + neg_d) + (*hist_cost + hist_d)
    }

    fn apply_move(&self, state: &mut PppState, s: &BitString, mv: &FlipMove) {
        let mut neg_d = 0i64;
        let PppState { y, hist, neg_cost, hist_cost, delta, touched } = state;
        debug_assert!(touched.is_empty());
        let mut updates: Vec<(usize, i32)> = Vec::with_capacity(16);
        self.for_changed_rows(y, s, mv, |j, old, new| {
            neg_d += neg_term(new) - neg_term(old);
            if old >= 0 {
                delta[old as usize] -= 1;
                touched.push(old as u32);
            }
            if new >= 0 {
                delta[new as usize] += 1;
                touched.push(new as u32);
            }
            updates.push((j, new));
        });
        for (j, new) in updates {
            y[j] = new;
        }
        let target = &self.inst.target_hist;
        let mut hist_d = 0i64;
        for &b in touched.iter() {
            let b = b as usize;
            let d = delta[b];
            if d != 0 {
                let h = target[b] as i64;
                let hp = hist[b] as i64;
                hist_d += (h - (hp + d as i64)).abs() - (h - hp).abs();
                hist[b] += d;
                delta[b] = 0;
            }
        }
        touched.clear();
        *neg_cost += neg_d;
        *hist_cost += hist_d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnls_neighborhood::{LexMoves, Neighborhood, ThreeHamming};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_all_moves(m: usize, n: usize, k: usize, seed: u64) {
        let inst = PppInstance::generate(m, n, seed);
        let p = Ppp::new(inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let s = BitString::random(&mut rng, n);
        let mut st = p.init_state(&s);
        assert_eq!(st.fitness(), p.evaluate(&s), "state fitness at init");
        for (_, mv) in LexMoves::new(n, k) {
            let mut s2 = s.clone();
            s2.apply(&mv);
            let expect = p.evaluate(&s2);
            let got = p.neighbor_fitness(&mut st, &s, &mv);
            assert_eq!(got, expect, "m={m} n={n} {mv}");
        }
        // Scratch must be clean afterwards.
        assert!(st.delta.iter().all(|&d| d == 0));
        assert!(st.touched.is_empty());
    }

    #[test]
    fn neighbor_fitness_matches_full_eval_k1() {
        check_all_moves(15, 15, 1, 1);
        check_all_moves(21, 33, 1, 2);
    }

    #[test]
    fn neighbor_fitness_matches_full_eval_k2() {
        check_all_moves(15, 15, 2, 3);
        check_all_moves(33, 21, 2, 4);
    }

    #[test]
    fn neighbor_fitness_matches_full_eval_k3() {
        check_all_moves(13, 17, 3, 5);
    }

    #[test]
    fn apply_move_keeps_state_consistent_over_random_walk() {
        let inst = PppInstance::generate(31, 31, 9);
        let p = Ppp::new(inst);
        let mut rng = StdRng::seed_from_u64(10);
        let mut s = BitString::random(&mut rng, 31);
        let mut st = p.init_state(&s);
        let hood = ThreeHamming::new(31);
        for step in 0..200 {
            let mv = hood.unrank(rng.gen_range(0..hood.size()));
            let predicted = p.neighbor_fitness(&mut st, &s, &mv);
            p.apply_move(&mut st, &s, &mv);
            s.apply(&mv);
            assert_eq!(st.fitness(), predicted, "step {step}");
            assert_eq!(st.fitness(), p.evaluate(&s), "step {step} vs full eval");
            // Internal invariants.
            let mut hist = vec![0i32; 32];
            let mut y = Vec::new();
            p.inst.a.product(&s, &mut y);
            assert_eq!(y, st.y, "Y vector at step {step}");
            for &yj in &y {
                if yj >= 0 {
                    hist[yj as usize] += 1;
                }
            }
            assert_eq!(hist, st.hist, "histogram at step {step}");
        }
    }

    #[test]
    fn secret_state_is_zero() {
        let inst = PppInstance::generate(73, 73, 77);
        let secret = inst.secret.clone().unwrap();
        let p = Ppp::new(inst);
        let st = p.init_state(&secret);
        assert_eq!(st.fitness(), 0);
        assert_eq!(st.neg_cost, 0);
        assert_eq!(st.hist_cost, 0);
    }
}
