//! Shared-memory staged variant of the PPP evaluation kernel.
//!
//! The baseline kernel (Figs. 7/9/10) reads the base product vector `Y`
//! from global memory once per *thread* per row — `m` DRAM reads per
//! thread. Staging `Y` into per-block **shared memory** first (a
//! cooperative strided load, then a `__syncthreads` barrier — modeled
//! here as a kernel phase boundary) cuts that to `m` DRAM reads per
//! *block*, the canonical CUDA optimization the paper's §IV.C remark
//! about "covering the memory access latency" gestures at.
//!
//! The cost: `2·m` 32-bit words of shared memory per block, which on a
//! 16 KiB/SM GT200 throttles residency for large `m` — the ablation
//! (A8) exposes exactly this trade-off: a big win at small block
//! counts, shrinking (or reversing) when occupancy collapses.

use crate::kernels::PppEvalKernel;
use lnls_gpu_sim::{Kernel, ThreadCtx};

/// [`PppEvalKernel`] with `Y` staged in shared memory.
///
/// Launch with `LaunchConfig::with_shared_words(2 * m)` — the occupancy
/// calculator then accounts the residency cost honestly.
pub struct PppEvalKernelShared {
    /// The baseline kernel holding all buffers and base costs.
    pub inner: PppEvalKernel,
}

impl Kernel for PppEvalKernelShared {
    fn name(&self) -> &'static str {
        match self.inner.k {
            1 => "ppp_eval_1h_shared",
            2 => "ppp_eval_2h_shared",
            3 => "ppp_eval_3h_shared",
            _ => "ppp_eval_4h_shared",
        }
    }

    fn phases(&self) -> u32 {
        2 // stage, barrier, evaluate
    }

    fn profile_key(&self) -> u64 {
        self.inner.profile_key() ^ 0x5348 // "SH"
    }

    fn run<C: ThreadCtx>(&self, ctx: &mut C, phase: u32) {
        let k = &self.inner;
        let id = ctx.id();
        let m = k.m as usize;
        if phase == 0 {
            // Cooperative strided staging: thread t of the block loads
            // rows t, t+bs, … . Consecutive threads hit consecutive
            // banks — conflict-free.
            let bs = id.block_dim as usize;
            let mut j = id.thread as usize;
            while ctx.branch(j < m) {
                let v = ctx.ld(&k.y, j);
                ctx.sh_st(j, v as u32 as u64);
                j += bs;
            }
            return;
        }

        // Phase 1: identical to the baseline evaluation, with Y reads
        // served from shared memory.
        let tid = id.global();
        if !ctx.branch(tid < k.msize) {
            return;
        }
        let (cols, kk) = k.unrank(ctx, k.base_index + tid);
        let n = k.n as usize;

        let bins = ctx.local_alloc(n + 1);
        for b in 0..=n {
            ctx.local_st(bins + b, 0);
        }

        let mut vmask = [0u32; 4];
        for t in 0..kk {
            let c = cols[t] as usize;
            let w = ctx.ld(&k.vbits, c / 32);
            ctx.alu(3);
            vmask[t] = if (w >> (c % 32)) & 1 == 1 { u32::MAX } else { 0 };
        }

        let base = -2 * kk as i32;
        let mut neg_d = 0i64;
        let wpc = k.wpc32 as usize;
        for w in 0..wpc {
            let mut xw = [0u32; 4];
            for t in 0..kk {
                let aw = ctx.ld(&k.a_cols, cols[t] as usize * wpc + w);
                ctx.alu(2);
                xw[t] = aw ^ vmask[t];
            }
            let lo = w * 32;
            let hi = m.min(lo + 32);
            for j in lo..hi {
                let r = (j - lo) as u32;
                let mut set = 0i32;
                for x in xw.iter().take(kk) {
                    set += ((x >> r) & 1) as i32;
                }
                let dy = 4 * set + base;
                ctx.alu(3 + kk as u32);
                if !ctx.branch(dy != 0) {
                    continue;
                }
                let old = ctx.sh_ld(j) as u32 as i32;
                let new = old + dy;
                ctx.alu(4);
                if old < 0 {
                    neg_d -= (-2 * old) as i64;
                }
                if new < 0 {
                    neg_d += (-2 * new) as i64;
                }
                if ctx.branch(old >= 0) {
                    let d = ctx.local_ld(bins + old as usize);
                    ctx.local_st(bins + old as usize, d - 1);
                }
                if ctx.branch(new >= 0) {
                    let d = ctx.local_ld(bins + new as usize);
                    ctx.local_st(bins + new as usize, d + 1);
                }
            }
        }

        let mut hist_d = 0i64;
        for b in 0..=n {
            let d = ctx.local_ld(bins + b);
            if !ctx.branch(d != 0) {
                continue;
            }
            let h = ctx.ld(&k.hist_target, b) as i64;
            let hp = ctx.ld(&k.hist_cur, b) as i64;
            ctx.alu(6);
            hist_d += (h - (hp + d as i64)).abs() - (h - hp).abs();
        }

        let fitness = 30 * (k.neg_base + neg_d) + (k.hist_base + hist_d);
        ctx.alu(3);
        ctx.st(&k.out, tid as usize, fitness as i32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PppInstance;
    use crate::state::Ppp;
    use lnls_core::{BinaryProblem, BitString, IncrementalEval};
    use lnls_gpu_sim::{Device, DeviceSpec, ExecMode, LaunchConfig, MemSpace};
    use lnls_neighborhood::{KHamming, Neighborhood};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(
        m: usize,
        n: usize,
        k: usize,
        dev: &mut Device,
        s: &BitString,
    ) -> (PppEvalKernel, u64) {
        let inst = PppInstance::generate(m, n, 77);
        let p = Ppp::new(inst);
        let state = p.init_state(s);
        let hood = KHamming::new(n, k);
        let msize = hood.size();
        let wpc32 = (p.inst.a.words_per_col() * 2) as u32;
        let a_cols = dev.upload_new(&p.inst.a.cols_as_u32(), MemSpace::Texture, "a");
        let vbits: Vec<u32> =
            s.words().iter().flat_map(|&w| [w as u32, (w >> 32) as u32]).collect();
        let vbits = dev.upload_new(&vbits, MemSpace::Global, "v");
        let y = dev.upload_new(&state.y, MemSpace::Global, "y");
        let hist_target = dev.upload_new(&p.inst.target_hist, MemSpace::Texture, "ht");
        let hist_cur = dev.upload_new(&state.hist, MemSpace::Global, "hc");
        let out = dev.alloc_zeroed::<i32>(msize as usize, MemSpace::Global, "f");
        (
            PppEvalKernel {
                k: k as u8,
                n: n as u32,
                m: m as u32,
                msize,
                base_index: 0,
                wpc32,
                a_cols,
                vbits,
                y,
                hist_target,
                hist_cur,
                out,
                neg_base: state.neg_cost,
                hist_base: state.hist_cost,
            },
            msize,
        )
    }

    #[test]
    fn shared_variant_matches_baseline_values() {
        for (m, n, k) in [(21usize, 21usize, 1usize), (33, 21, 2), (17, 15, 3), (70, 37, 2)] {
            let mut rng = StdRng::seed_from_u64(8);
            let s = BitString::random(&mut rng, n);
            let mut dev = Device::new(DeviceSpec::gtx280());
            let (inner, msize) = build(m, n, k, &mut dev, &s);
            let out = inner.out.clone();
            let kernel = PppEvalKernelShared { inner };
            let cfg = LaunchConfig::cover_1d(msize, 64).with_shared_words(2 * m as u32);
            let rep = dev.launch(&kernel, cfg, ExecMode::Trace);
            assert!(rep.races.is_empty(), "{:?}", rep.races);

            // Compare against the full host evaluation.
            let inst = PppInstance::generate(m, n, 77);
            let p = Ppp::new(inst);
            let hood = KHamming::new(n, k);
            let got = dev.download(&out);
            for (idx, mv) in hood.moves() {
                let mut s2 = s.clone();
                s2.apply(&mv);
                assert_eq!(
                    got[idx as usize] as i64,
                    p.evaluate(&s2),
                    "m={m} n={n} k={k} idx={idx}"
                );
            }
        }
    }

    #[test]
    fn shared_variant_cuts_global_y_traffic() {
        let (m, n, k) = (64usize, 33usize, 2usize);
        let mut rng = StdRng::seed_from_u64(9);
        let s = BitString::random(&mut rng, n);

        let mut dev = Device::new(DeviceSpec::gtx280());
        let (base_kernel, msize) = build(m, n, k, &mut dev, &s);
        let rep_base = dev.launch(&base_kernel, LaunchConfig::cover_1d(msize, 64), ExecMode::Auto);

        let mut dev2 = Device::new(DeviceSpec::gtx280());
        let (inner, _) = build(m, n, k, &mut dev2, &s);
        let shared_kernel = PppEvalKernelShared { inner };
        let cfg = LaunchConfig::cover_1d(msize, 64).with_shared_words(2 * m as u32);
        let rep_shared = dev2.launch(&shared_kernel, cfg, ExecMode::Auto);

        let base_glb = rep_base.counters.per_thread_avg.ld_global;
        let shared_glb = rep_shared.counters.per_thread_avg.ld_global;
        assert!(
            shared_glb < base_glb * 0.5,
            "staging should halve global loads at least: {shared_glb} vs {base_glb}"
        );
        assert!(rep_shared.counters.per_thread_avg.shared > 0.0, "shared accesses must be charged");
    }

    #[test]
    fn shared_request_throttles_occupancy() {
        // A 1501-row instance needs 3002 words/block: at 16 KiB (4096
        // words) per SM only one block fits, vs several for the
        // baseline. The occupancy calculator must report that.
        use lnls_gpu_sim::occupancy;
        let spec = DeviceSpec::gtx280();
        let base = occupancy(&spec, &LaunchConfig::cover_1d(10_000, 128));
        let staged =
            occupancy(&spec, &LaunchConfig::cover_1d(10_000, 128).with_shared_words(2 * 1501));
        assert!(staged.blocks_per_sm < base.blocks_per_sm);
        assert_eq!(staged.blocks_per_sm, 1);
    }
}
