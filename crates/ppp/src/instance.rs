//! PPP instance generation (Pointcheval's construction) and persistence.
//!
//! Definition 1 of the paper: given an ε-matrix `A` (m×n) and a multiset
//! `S` of non-negative integers, find an ε-vector `V` with
//! `{{(AV)_j}} = S`. Instances are generated the standard way: draw `A`
//! and a secret `V` uniformly, then negate every row with `(AV)_j < 0` —
//! the resulting instance has all-non-negative correlations and `V` as a
//! planted solution. The paper's "popular instances of the literature"
//! are exactly such random instances at sizes 73×73, 81×81, 101×101,
//! 101×117.

use crate::matrix::EpsilonMatrix;
use lnls_core::BitString;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A PPP instance: public matrix + target multiset (as a histogram),
/// optionally remembering the planted secret (for tests and the crypto
/// example; a real verifier would not have it).
#[derive(Clone, Debug)]
pub struct PppInstance {
    /// The public ε-matrix.
    pub a: EpsilonMatrix,
    /// Histogram of the target multiset `S`: `target_hist[v]` counts rows
    /// with `(AV)_j = v`, for `v` in `0..=n`.
    pub target_hist: Vec<i32>,
    /// The planted secret, if known.
    pub secret: Option<BitString>,
}

impl PppInstance {
    /// Rows.
    pub fn m(&self) -> usize {
        self.a.m()
    }

    /// Columns = solution length.
    pub fn n(&self) -> usize {
        self.a.n()
    }

    /// Generate an instance of shape `m × n` with a planted secret.
    pub fn generate(m: usize, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = EpsilonMatrix::random(&mut rng, m, n);
        let secret = BitString::random(&mut rng, n);
        // Pointcheval: flip rows with negative correlation so S is a
        // multiset of non-negative integers and `secret` still solves it.
        for j in 0..m {
            if a.row_product(j, &secret) < 0 {
                a.negate_row(j);
            }
        }
        let mut target_hist = vec![0i32; n + 1];
        for j in 0..m {
            let y = a.row_product(j, &secret);
            debug_assert!(y >= 0);
            target_hist[y as usize] += 1;
        }
        Self { a, target_hist, secret: Some(secret) }
    }

    /// The four instances of the paper's Tables I–III.
    pub fn paper_sizes() -> [(usize, usize); 4] {
        [(73, 73), (81, 81), (101, 101), (101, 117)]
    }

    /// The size ladder of the paper's Fig. 8: `(101,117), (201,217), …,
    /// (1501,1517)`.
    pub fn fig8_sizes() -> Vec<(usize, usize)> {
        (0..15).map(|i| (101 + 100 * i, 117 + 100 * i)).collect()
    }

    /// Serialize to the `.ppp` text format (hex row words; `secret -`
    /// when unknown).
    pub fn save_to_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let (m, n) = (self.m(), self.n());
        let _ = writeln!(s, "ppp {m} {n}");
        let _ = write!(s, "rows");
        for w in self.a.row_words() {
            let _ = write!(s, " {w:x}");
        }
        let _ = writeln!(s);
        let _ = write!(s, "hist");
        for h in &self.target_hist {
            let _ = write!(s, " {h}");
        }
        let _ = writeln!(s);
        match &self.secret {
            None => {
                let _ = writeln!(s, "secret -");
            }
            Some(v) => {
                let _ = write!(s, "secret");
                for w in v.words() {
                    let _ = write!(s, " {w:x}");
                }
                let _ = writeln!(s);
            }
        }
        s
    }

    /// Parse the `.ppp` text format written by
    /// [`save_to_string`](Self::save_to_string).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty instance file")?;
        let mut it = header.split_whitespace();
        if it.next() != Some("ppp") {
            return Err("missing 'ppp' header".into());
        }
        let m: usize = it.next().ok_or("missing m")?.parse().map_err(|e| format!("bad m: {e}"))?;
        let n: usize = it.next().ok_or("missing n")?.parse().map_err(|e| format!("bad n: {e}"))?;

        let rows_line = lines.next().ok_or("missing rows line")?;
        let mut rows_it = rows_line.split_whitespace();
        if rows_it.next() != Some("rows") {
            return Err("missing 'rows' line".into());
        }
        let rows: Vec<u64> = rows_it
            .map(|t| u64::from_str_radix(t, 16).map_err(|e| format!("bad row word: {e}")))
            .collect::<Result<_, _>>()?;
        let a = EpsilonMatrix::from_row_words(m, n, &rows);

        let hist_line = lines.next().ok_or("missing hist line")?;
        let mut hist_it = hist_line.split_whitespace();
        if hist_it.next() != Some("hist") {
            return Err("missing 'hist' line".into());
        }
        let target_hist: Vec<i32> = hist_it
            .map(|t| t.parse().map_err(|e| format!("bad hist entry: {e}")))
            .collect::<Result<_, _>>()?;
        if target_hist.len() != n + 1 {
            return Err(format!("hist has {} entries, expected {}", target_hist.len(), n + 1));
        }

        let secret_line = lines.next().ok_or("missing secret line")?;
        let mut sec_it = secret_line.split_whitespace();
        if sec_it.next() != Some("secret") {
            return Err("missing 'secret' line".into());
        }
        let rest: Vec<&str> = sec_it.collect();
        let secret = if rest == ["-"] {
            None
        } else {
            let words: Vec<u64> = rest
                .iter()
                .map(|t| u64::from_str_radix(t, 16).map_err(|e| format!("bad secret word: {e}")))
                .collect::<Result<_, _>>()?;
            let mut v = BitString::zeros(n);
            for i in 0..n {
                if (words[i / 64] >> (i % 64)) & 1 == 1 {
                    v.flip(i);
                }
            }
            Some(v)
        };
        Ok(Self { a, target_hist, secret })
    }

    /// Forget the planted secret (what an attacker sees).
    pub fn public_only(mut self) -> Self {
        self.secret = None;
        self
    }

    /// Check whether `v` solves the instance (multiset equality — the
    /// success criterion behind the paper's "# solutions" column).
    pub fn is_solution(&self, v: &BitString) -> bool {
        let mut hist = vec![0i32; self.n() + 1];
        for j in 0..self.m() {
            let y = self.a.row_product(j, v);
            if y < 0 {
                return false;
            }
            hist[y as usize] += 1;
        }
        hist == self.target_hist
    }

    /// Generate with a fresh RNG from entropy (convenience for examples).
    pub fn generate_random(m: usize, n: usize) -> Self {
        Self::generate(m, n, rand::thread_rng().gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_secret_is_a_solution() {
        for (m, n) in [(15, 15), (73, 73), (31, 47)] {
            let inst = PppInstance::generate(m, n, 42);
            let secret = inst.secret.clone().unwrap();
            assert!(inst.is_solution(&secret), "{m}x{n}");
        }
    }

    #[test]
    fn target_multiset_is_nonnegative_with_m_entries() {
        let inst = PppInstance::generate(73, 73, 7);
        let total: i32 = inst.target_hist.iter().sum();
        assert_eq!(total, 73);
        // n odd → all correlations odd → even bins empty.
        for (v, &count) in inst.target_hist.iter().enumerate() {
            if v % 2 == 0 {
                assert_eq!(count, 0, "even bin {v} must be empty for odd n");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = PppInstance::generate(21, 21, 1);
        let b = PppInstance::generate(21, 21, 2);
        assert_ne!(a.a, b.a);
    }

    #[test]
    fn save_parse_roundtrip() {
        let inst = PppInstance::generate(19, 33, 5);
        let text = inst.save_to_string();
        let back = PppInstance::parse(&text).expect("parse");
        assert_eq!(inst.a, back.a);
        assert_eq!(inst.target_hist, back.target_hist);
        assert_eq!(inst.secret, back.secret);

        let public = inst.public_only();
        let text2 = public.save_to_string();
        let back2 = PppInstance::parse(&text2).expect("parse public");
        assert!(back2.secret.is_none());
        assert_eq!(public.a, back2.a);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PppInstance::parse("").is_err());
        assert!(PppInstance::parse("ppp 3").is_err());
        assert!(PppInstance::parse("ppp 3 3\nrows zz\nhist 0\nsecret -").is_err());
    }

    #[test]
    fn wrong_vector_is_not_a_solution() {
        let inst = PppInstance::generate(33, 33, 11);
        let mut v = inst.secret.clone().unwrap();
        v.flip(0);
        // One flip moves every row's product by ±2: the multiset almost
        // surely changes (and negativity may appear).
        assert!(!inst.is_solution(&v));
    }

    #[test]
    fn paper_and_fig8_sizes() {
        assert_eq!(PppInstance::paper_sizes()[3], (101, 117));
        let f8 = PppInstance::fig8_sizes();
        assert_eq!(f8.len(), 15);
        assert_eq!(f8[0], (101, 117));
        assert_eq!(f8[14], (1501, 1517));
    }
}
