//! The simulated-GPU exploration backend for the PPP: implements
//! [`Explorer`] so [`lnls_core::TabuSearch`] can run its iterations on the
//! device exactly as the paper does — upload the current solution, launch
//! `MoveIncrEvalKernel` over one thread per neighbor, read the fitness
//! array back, select on the host.

use crate::kernels::PppEvalKernel;
use crate::state::{Ppp, PppState};
use lnls_core::{BitString, Explorer};
use lnls_gpu_sim::{Device, DeviceBuffer, DeviceSpec, ExecMode, LaunchConfig, MemSpace, TimeBook};
use lnls_neighborhood::{binomial, FlipMove, KHamming, Neighborhood};
use std::time::{Duration, Instant};

/// Configuration of the GPU exploration backend.
#[derive(Clone, Debug)]
pub struct GpuExplorerConfig {
    /// Device preset to simulate.
    pub spec: DeviceSpec,
    /// Threads per block (the paper-era sweet spot is 128; ablation A2).
    pub block_size: u32,
    /// Keep the ε-matrix in texture memory (Fig. 8 "GPUTexture") or
    /// global memory.
    pub texture: bool,
    /// Execution mode (Auto profiles once, then runs fast).
    pub mode: ExecMode,
    /// Cap on host worker threads used to simulate blocks (0 = default).
    pub workers: usize,
}

impl Default for GpuExplorerConfig {
    fn default() -> Self {
        Self {
            spec: DeviceSpec::gtx280(),
            block_size: 128,
            texture: true,
            mode: ExecMode::Auto,
            workers: 0,
        }
    }
}

/// GPU-backed neighborhood explorer for the PPP.
pub struct PppGpuExplorer {
    k: usize,
    n: usize,
    m: usize,
    msize: u64,
    wpc32: u32,
    dev: Device,
    a_cols: DeviceBuffer<u32>,
    vbits: DeviceBuffer<u32>,
    y: DeviceBuffer<i32>,
    hist_target: DeviceBuffer<i32>,
    hist_cur: DeviceBuffer<i32>,
    out: DeviceBuffer<i32>,
    cfg: GpuExplorerConfig,
    hood: KHamming,
    wall: Duration,
    vbits_scratch: Vec<u32>,
    out_scratch: Vec<i32>,
}

impl PppGpuExplorer {
    /// Build a backend for the `k`-Hamming neighborhood of `problem`.
    ///
    /// Uploads the static data (ε-matrix columns, target histogram) once;
    /// per-iteration traffic is solution bits + `Y` + `H'` up,
    /// fitness array down — the same protocol as the paper's kernels.
    pub fn new(problem: &Ppp, k: usize, cfg: GpuExplorerConfig) -> Self {
        assert!((1..=4).contains(&k), "GPU kernels cover k ∈ {{1,2,3,4}}, got {k}");
        let n = problem.inst.n();
        let m = problem.inst.m();
        let msize = binomial(n as u64, k as u64);
        let mut dev = Device::with_host(cfg.spec.clone(), lnls_gpu_sim::HostSpec::xeon_3ghz());
        if cfg.workers > 0 {
            dev.set_workers(cfg.workers);
        }
        let space = if cfg.texture { MemSpace::Texture } else { MemSpace::Global };
        let a_cols = dev.upload_new(&problem.inst.a.cols_as_u32(), space, "a_cols");
        let hist_target =
            dev.upload_new(&problem.inst.target_hist, MemSpace::Texture, "hist_target");
        let vbits = dev.alloc_zeroed::<u32>(n.div_ceil(64) * 2, MemSpace::Global, "vbits");
        let y = dev.alloc_zeroed::<i32>(m, MemSpace::Global, "y");
        let hist_cur = dev.alloc_zeroed::<i32>(n + 1, MemSpace::Global, "hist_cur");
        let out = dev.alloc_zeroed::<i32>(msize as usize, MemSpace::Global, "new_fitness");
        let wpc32 = (problem.inst.a.words_per_col() * 2) as u32;
        Self {
            k,
            n,
            m,
            msize,
            wpc32,
            dev,
            a_cols,
            vbits,
            y,
            hist_target,
            hist_cur,
            out,
            hood: KHamming::new(n, k),
            cfg,
            wall: Duration::ZERO,
            vbits_scratch: Vec::new(),
            out_scratch: Vec::new(),
        }
    }

    /// The simulated device (for inspecting its ledger or spec).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Reset the modeled-time ledger (between repetitions).
    pub fn reset_book(&mut self) {
        self.dev.reset_book();
    }

    fn upload_iteration_state(&mut self, s: &BitString, state: &PppState) {
        self.vbits_scratch.clear();
        for &w in s.words() {
            self.vbits_scratch.push(w as u32);
            self.vbits_scratch.push((w >> 32) as u32);
        }
        self.dev.upload(&self.vbits, &self.vbits_scratch);
        self.dev.upload(&self.y, &state.y);
        self.dev.upload(&self.hist_cur, &state.hist);
    }

    fn kernel(&self, state: &PppState) -> PppEvalKernel {
        PppEvalKernel {
            k: self.k as u8,
            n: self.n as u32,
            m: self.m as u32,
            msize: self.msize,
            base_index: 0,
            wpc32: self.wpc32,
            a_cols: self.a_cols.clone(),
            vbits: self.vbits.clone(),
            y: self.y.clone(),
            hist_target: self.hist_target.clone(),
            hist_cur: self.hist_cur.clone(),
            out: self.out.clone(),
            neg_base: state.neg_cost,
            hist_base: state.hist_cost,
        }
    }

    /// One exploration priced with an on-device argmin reduction instead
    /// of the full fitness readback (ablation A4 / future-work §V). The
    /// returned pair is `(best fitness, best move index)`; only
    /// `gridDim`-many words cross the PCIe bus.
    pub fn explore_argmin_on_device(&mut self, s: &BitString, state: &PppState) -> (i64, u64) {
        self.upload_iteration_state(s, state);
        let kernel = self.kernel(state);
        let launch = LaunchConfig::cover_1d(self.msize, self.cfg.block_size);
        self.dev.launch(&kernel, launch, self.cfg.mode);
        // Pack (fitness, index) into order-preserving u64 keys. On real
        // hardware this is fused into the evaluation kernel's store; here
        // the keys are materialized host-side *without* transfer
        // accounting (`fill_from`), so no phantom PCIe traffic is billed.
        let keys: Vec<u64> = (0..self.msize)
            .map(|i| lnls_gpu_sim::reduce::pack_key(self.out.get(i as usize) as u32, i as u32))
            .collect();
        let keybuf = self.dev.alloc_zeroed::<u64>(keys.len(), MemSpace::Global, "argmin_keys");
        keybuf.fill_from(&keys);
        let packed = lnls_gpu_sim::reduce::device_min(
            &mut self.dev,
            &keybuf,
            self.msize,
            self.cfg.block_size.next_power_of_two().min(256),
            self.cfg.mode,
        );
        let (fit, idx) = lnls_gpu_sim::reduce::unpack_key(packed);
        (fit as i64, idx as u64)
    }
}

impl Explorer<Ppp> for PppGpuExplorer {
    fn size(&self) -> u64 {
        self.msize
    }

    fn k(&self) -> usize {
        self.k
    }

    fn unrank(&self, index: u64) -> FlipMove {
        self.hood.unrank(index)
    }

    fn dim_hint(&self) -> u32 {
        self.n as u32
    }

    fn for_each_move(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, FlipMove) -> bool) {
        self.hood.for_each_move_in(lo, hi, f);
    }

    fn explore(&mut self, _problem: &Ppp, s: &BitString, state: &mut PppState, out: &mut Vec<i64>) {
        let t0 = Instant::now();
        self.upload_iteration_state(s, state);
        let kernel = self.kernel(state);
        let launch = LaunchConfig::cover_1d(self.msize, self.cfg.block_size);
        self.dev.launch(&kernel, launch, self.cfg.mode);
        self.dev.download_into(&self.out, &mut self.out_scratch);
        out.clear();
        out.extend(self.out_scratch.iter().map(|&f| f as i64));
        self.wall += t0.elapsed();
    }

    fn book(&self) -> Option<TimeBook> {
        Some(self.dev.book().clone())
    }

    fn wall(&self) -> Duration {
        self.wall
    }

    fn backend(&self) -> String {
        format!(
            "gpu-sim[{}]/{}-Hamming/bs{}{}",
            self.dev.spec().name,
            self.k,
            self.cfg.block_size,
            if self.cfg.texture { "/tex" } else { "/glob" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PppInstance;
    use lnls_core::{IncrementalEval, SequentialExplorer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize, n: usize, seed: u64) -> (Ppp, BitString) {
        let inst = PppInstance::generate(m, n, seed);
        let p = Ppp::new(inst);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = BitString::random(&mut rng, n);
        (p, s)
    }

    #[test]
    fn gpu_explorer_matches_sequential_for_all_k() {
        let (p, s) = setup(33, 29, 3);
        for k in 1..=3usize {
            let mut state = p.init_state(&s);
            let mut gpu = PppGpuExplorer::new(&p, k, GpuExplorerConfig::default());
            let mut cpu = SequentialExplorer::new(KHamming::new(29, k));
            let mut out_gpu = Vec::new();
            let mut out_cpu = Vec::new();
            gpu.explore(&p, &s, &mut state, &mut out_gpu);
            Explorer::<Ppp>::explore(&mut cpu, &p, &s, &mut state, &mut out_cpu);
            assert_eq!(out_gpu, out_cpu, "k={k}");
        }
    }

    #[test]
    fn book_accumulates_across_iterations() {
        let (p, s) = setup(21, 21, 5);
        let mut state = p.init_state(&s);
        let mut gpu = PppGpuExplorer::new(&p, 2, GpuExplorerConfig::default());
        let mut out = Vec::new();
        gpu.explore(&p, &s, &mut state, &mut out);
        let b1 = Explorer::<Ppp>::book(&gpu).unwrap();
        gpu.explore(&p, &s, &mut state, &mut out);
        let b2 = Explorer::<Ppp>::book(&gpu).unwrap();
        assert_eq!(b1.launches + 1, b2.launches);
        assert!(b2.gpu_total_s() > b1.gpu_total_s());
        assert!(b2.host_s > b1.host_s);
    }

    #[test]
    fn argmin_on_device_agrees_with_host_scan() {
        let (p, s) = setup(25, 23, 7);
        let state = p.init_state(&s);
        let mut gpu = PppGpuExplorer::new(&p, 2, GpuExplorerConfig::default());
        let (best_f, best_idx) = gpu.explore_argmin_on_device(&s, &state);

        let mut state2 = p.init_state(&s);
        let mut out = Vec::new();
        gpu.explore(&p, &s, &mut state2, &mut out);
        let (host_idx, &host_f) = out.iter().enumerate().min_by_key(|&(i, f)| (*f, i)).unwrap();
        assert_eq!(best_f, host_f);
        assert_eq!(best_idx, host_idx as u64);
    }

    #[test]
    fn tabu_search_runs_end_to_end_on_gpu() {
        use lnls_core::{SearchConfig, TabuSearch};
        let (p, s) = setup(15, 15, 11);
        let mut gpu = PppGpuExplorer::new(&p, 2, GpuExplorerConfig::default());
        let search = TabuSearch::paper(SearchConfig::budget(60).with_seed(1), gpu.msize);
        let r = search.run(&p, &mut gpu, s);
        assert!(r.iterations > 0);
        let book = r.book.expect("gpu explorer prices its work");
        assert_eq!(book.launches, r.iterations);
        // Functional consistency: the reported best fitness must match a
        // full host-side re-evaluation of the returned solution.
        use lnls_core::BinaryProblem;
        assert_eq!(p.evaluate(&r.best), r.best_fitness);
    }

    #[test]
    fn gpu_and_cpu_searches_take_identical_trajectories() {
        use lnls_core::{SearchConfig, TabuSearch};
        let (p, s) = setup(19, 17, 13);
        let hood = KHamming::new(17, 2);

        let mut gpu = PppGpuExplorer::new(&p, 2, GpuExplorerConfig::default());
        let search = TabuSearch::paper(SearchConfig::budget(40).with_seed(2), hood.size());
        let r_gpu = search.run(&p, &mut gpu, s.clone());

        let mut cpu = SequentialExplorer::new(hood);
        let r_cpu = search.run(&p, &mut cpu, s);

        assert_eq!(r_gpu.best_fitness, r_cpu.best_fitness);
        assert_eq!(r_gpu.iterations, r_cpu.iterations);
        assert_eq!(r_gpu.best, r_cpu.best);
    }
}
