//! The ε-matrix (entries ±1) of the PPP, bit-packed in both row-major and
//! column-major form.
//!
//! Convention: bit 0 encodes +1, bit 1 encodes −1, matching
//! `BitString::sign`. With solution signs `x_c = 1 − 2·v_c`, one product
//! term is `A_jc · x_c = 1 − 2·(a_jc ⊕ v_c)`, so
//!
//! * full row product: `Y_j = n − 2·popcount(row_j ⊕ v)` — an XOR/popcount
//!   per row;
//! * flip of column `c`: `ΔY_j = 4·(a_jc ⊕ v_c) − 2` — a column-bit test
//!   per row, which is why a column-major mirror is kept.

use lnls_core::BitString;
use rand::Rng;

/// Bit-packed ±1 matrix with row- and column-major mirrors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpsilonMatrix {
    m: usize,
    n: usize,
    /// Row-major bits: `m` rows × `wpr` words.
    rows: Vec<u64>,
    /// Column-major bits: `n` columns × `wpc` words.
    cols: Vec<u64>,
    wpr: usize,
    wpc: usize,
}

impl EpsilonMatrix {
    /// All-(+1) matrix of shape `m × n`.
    pub fn plus_ones(m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0, "matrix must be non-empty");
        let wpr = n.div_ceil(64);
        let wpc = m.div_ceil(64);
        Self { m, n, rows: vec![0; m * wpr], cols: vec![0; n * wpc], wpr, wpc }
    }

    /// Uniformly random ±1 matrix.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, m: usize, n: usize) -> Self {
        let mut a = Self::plus_ones(m, n);
        for j in 0..m {
            for c in 0..n {
                if rng.gen::<bool>() {
                    a.set(j, c, -1);
                }
            }
        }
        a
    }

    /// Rows.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Columns.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(j, c)` as ±1.
    #[inline]
    pub fn get(&self, j: usize, c: usize) -> i32 {
        debug_assert!(j < self.m && c < self.n);
        let bit = (self.rows[j * self.wpr + c / 64] >> (c % 64)) & 1;
        1 - 2 * bit as i32
    }

    /// Set entry `(j, c)` to `v` (must be ±1).
    pub fn set(&mut self, j: usize, c: usize, v: i32) {
        assert!(v == 1 || v == -1, "epsilon entries are ±1, got {v}");
        let bit = v == -1;
        let rw = &mut self.rows[j * self.wpr + c / 64];
        let rmask = 1u64 << (c % 64);
        let cw = &mut self.cols[c * self.wpc + j / 64];
        let cmask = 1u64 << (j % 64);
        if bit {
            *rw |= rmask;
            *cw |= cmask;
        } else {
            *rw &= !rmask;
            *cw &= !cmask;
        }
    }

    /// Negate row `j` (the Pointcheval construction flips rows with
    /// negative correlation).
    pub fn negate_row(&mut self, j: usize) {
        for c in 0..self.n {
            let v = self.get(j, c);
            self.set(j, c, -v);
        }
    }

    /// `Y_j = (A·x)_j` for the ±1 vector encoded by `v`.
    #[inline]
    pub fn row_product(&self, j: usize, v: &BitString) -> i32 {
        debug_assert_eq!(v.len(), self.n);
        let row = &self.rows[j * self.wpr..(j + 1) * self.wpr];
        let mut diff = 0u32;
        for (rw, vw) in row.iter().zip(v.words()) {
            diff += (rw ^ vw).count_ones();
        }
        self.n as i32 - 2 * diff as i32
    }

    /// Full product `Y = A·x` into `out`.
    pub fn product(&self, v: &BitString, out: &mut Vec<i32>) {
        out.clear();
        out.extend((0..self.m).map(|j| self.row_product(j, v)));
    }

    /// Column `c` as packed bits over rows (`wpc` words).
    #[inline]
    pub fn col_words(&self, c: usize) -> &[u64] {
        &self.cols[c * self.wpc..(c + 1) * self.wpc]
    }

    /// Column bit `(j, c)` (true ⇔ entry −1).
    #[inline]
    pub fn col_bit(&self, j: usize, c: usize) -> bool {
        (self.cols[c * self.wpc + j / 64] >> (j % 64)) & 1 == 1
    }

    /// The column-major words as one slice, split into u32 little-endian
    /// halves — the layout uploaded to the simulated GPU.
    pub fn cols_as_u32(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.cols.len() * 2);
        for &w in &self.cols {
            out.push(w as u32);
            out.push((w >> 32) as u32);
        }
        out
    }

    /// Words per packed column (u64).
    #[inline]
    pub fn words_per_col(&self) -> usize {
        self.wpc
    }

    /// Row-major words (for serialization).
    pub(crate) fn row_words(&self) -> &[u64] {
        &self.rows
    }

    /// Rebuild from row-major words (inverse of [`row_words`](Self::row_words)).
    pub(crate) fn from_row_words(m: usize, n: usize, rows: &[u64]) -> Self {
        let wpr = n.div_ceil(64);
        assert_eq!(rows.len(), m * wpr, "row words length mismatch");
        let mut a = Self::plus_ones(m, n);
        for j in 0..m {
            for c in 0..n {
                if (rows[j * wpr + c / 64] >> (c % 64)) & 1 == 1 {
                    a.set(j, c, -1);
                }
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn get_set_roundtrip_and_mirrors_agree() {
        let mut a = EpsilonMatrix::plus_ones(5, 7);
        assert_eq!(a.get(0, 0), 1);
        a.set(2, 3, -1);
        assert_eq!(a.get(2, 3), -1);
        assert!(a.col_bit(2, 3));
        a.set(2, 3, 1);
        assert_eq!(a.get(2, 3), 1);
        assert!(!a.col_bit(2, 3));
    }

    #[test]
    fn row_product_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = EpsilonMatrix::random(&mut rng, 9, 73);
        let v = BitString::random(&mut rng, 73);
        for j in 0..9 {
            let naive: i32 = (0..73).map(|c| a.get(j, c) * v.sign(c)).sum();
            assert_eq!(a.row_product(j, &v), naive, "row {j}");
        }
    }

    #[test]
    fn product_over_word_boundaries() {
        // n = 130 spans three words; parity of Y must match n.
        let mut rng = StdRng::seed_from_u64(2);
        let a = EpsilonMatrix::random(&mut rng, 4, 130);
        let v = BitString::random(&mut rng, 130);
        let mut y = Vec::new();
        a.product(&v, &mut y);
        for (j, &yj) in y.iter().enumerate() {
            assert_eq!(yj.rem_euclid(2), 0, "n even -> Y even");
            let naive: i32 = (0..130).map(|c| a.get(j, c) * v.sign(c)).sum();
            assert_eq!(yj, naive, "row {j}");
        }
    }

    #[test]
    fn negate_row_negates_product() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = EpsilonMatrix::random(&mut rng, 6, 31);
        let v = BitString::random(&mut rng, 31);
        let before = a.row_product(4, &v);
        a.negate_row(4);
        assert_eq!(a.row_product(4, &v), -before);
    }

    #[test]
    fn cols_as_u32_layout() {
        let mut a = EpsilonMatrix::plus_ones(70, 2);
        a.set(69, 1, -1); // column 1, row 69 → second u64 of col 1, bit 5
        let u32s = a.cols_as_u32();
        assert_eq!(u32s.len(), 2 * 2 * 2); // 2 cols × 2 u64 × 2 halves
                                           // col 1 occupies words [4..8); row 69 = word 1 (bits 64..127),
                                           // low half, bit 5.
        assert_eq!(u32s[6] >> 5 & 1, 1);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = EpsilonMatrix::random(&mut rng, 11, 33);
        let b = EpsilonMatrix::from_row_words(11, 33, a.row_words());
        assert_eq!(a, b);
    }
}
