//! The cryptographic context of the PPP (paper §I, §IV.A): Pointcheval's
//! identification scheme bases its security on the hardness of recovering
//! the ε-vector `V` from `(A, S)`. This module provides a *schematic*
//! zero-knowledge-style identification protocol sufficient to demonstrate
//! the attack in the `ppp_crack` example: an attacker who recovers any
//! vector with multiset `S` passes identification.
//!
//! It is **not** a production cryptosystem — the commitment is a plain
//! 64-bit hash and the permutation logic is simplified; the point is to
//! exercise the instance/solution machinery end-to-end, exactly as far as
//! the paper's motivation goes.

use crate::instance::PppInstance;
use lnls_core::{zobrist_table, BitString};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Public key: the PPP instance (matrix + multiset histogram).
#[derive(Clone, Debug)]
pub struct PublicKey {
    /// The public instance (secret stripped).
    pub inst: PppInstance,
}

/// Secret key: an ε-vector whose correlation multiset is `S`.
#[derive(Clone, Debug)]
pub struct SecretKey {
    /// The witness vector.
    pub v: BitString,
}

/// Generate a key pair of shape `m × n`.
pub fn keygen(m: usize, n: usize, seed: u64) -> (PublicKey, SecretKey) {
    let inst = PppInstance::generate(m, n, seed);
    let v = inst.secret.clone().expect("generate always plants a secret");
    (PublicKey { inst: inst.public_only() }, SecretKey { v })
}

/// One commit–challenge–response round. The prover commits to a blinded
/// transformation of its witness; the verifier flips a coin:
///
/// * challenge 0 — prover opens the blinding; verifier checks the
///   commitment binds;
/// * challenge 1 — prover reveals the blinded witness; verifier checks it
///   solves the instance *and* matches the commitment.
///
/// A cheater without a witness can prepare for one challenge but not
/// both, so each round catches them with probability ~1/2.
#[derive(Clone, Debug)]
pub struct Round {
    commitment: u64,
    blind: u64,
    blinded_witness: Option<BitString>,
}

fn commit_hash(pk: &PublicKey, blind: u64, witness: &BitString) -> u64 {
    let table = zobrist_table(witness.len(), blind ^ 0x1D3);
    witness.zobrist(&table) ^ blind.rotate_left(17) ^ (pk.inst.m() as u64) << 48
}

/// Prover side of one round.
pub fn prove_commit(pk: &PublicKey, sk: &SecretKey, rng: &mut StdRng) -> Round {
    let blind: u64 = rng.gen();
    Round { commitment: commit_hash(pk, blind, &sk.v), blind, blinded_witness: Some(sk.v.clone()) }
}

/// Prover's response to challenge `c` (0 or 1).
pub enum Response {
    /// Opens the blinding factor.
    OpenBlind(u64),
    /// Reveals the (blinded) witness.
    RevealWitness(BitString, u64),
}

/// Answer a challenge.
pub fn respond(round: &Round, challenge: u8) -> Response {
    match challenge {
        0 => Response::OpenBlind(round.blind),
        _ => Response::RevealWitness(
            round.blinded_witness.clone().expect("prover keeps its witness"),
            round.blind,
        ),
    }
}

/// Verifier check for one round. `commitment` is what the prover sent
/// before the challenge.
pub fn verify(pk: &PublicKey, commitment: u64, challenge: u8, resp: &Response) -> bool {
    match (challenge, resp) {
        (0, Response::OpenBlind(_blind)) => {
            // Binding is only fully checkable with the witness; opening
            // the blind proves the prover fixed it before the challenge.
            true
        }
        (1, Response::RevealWitness(w, blind)) => {
            pk.inst.is_solution(w) && commit_hash(pk, *blind, w) == commitment
        }
        _ => false,
    }
}

/// Run `rounds` identification rounds; returns the number that verified.
/// An honest prover (or a successful attacker) passes all of them.
pub fn identification_session(pk: &PublicKey, sk: &SecretKey, rounds: usize, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ok = 0;
    for _ in 0..rounds {
        let round = prove_commit(pk, sk, &mut rng);
        let challenge: u8 = rng.gen_range(0..=1);
        let resp = respond(&round, challenge);
        if verify(pk, round.commitment, challenge, &resp) {
            ok += 1;
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_prover_always_passes() {
        let (pk, sk) = keygen(25, 25, 7);
        assert_eq!(identification_session(&pk, &sk, 20, 1), 20);
    }

    #[test]
    fn recovered_equivalent_key_passes() {
        // Any solution of the instance identifies successfully — this is
        // precisely why the tabu attack of the paper breaks the scheme.
        let (pk, sk) = keygen(25, 25, 8);
        let forged = SecretKey { v: sk.v.clone() };
        assert_eq!(identification_session(&pk, &forged, 10, 2), 10);
    }

    #[test]
    fn wrong_witness_fails_witness_challenges() {
        let (pk, sk) = keygen(25, 25, 9);
        let mut bad = sk.v.clone();
        bad.flip(0);
        let cheat = SecretKey { v: bad };
        let mut rng = StdRng::seed_from_u64(3);
        let round = prove_commit(&pk, &cheat, &mut rng);
        let resp = respond(&round, 1);
        assert!(!verify(&pk, round.commitment, 1, &resp));
    }

    #[test]
    fn tampered_commitment_fails() {
        let (pk, sk) = keygen(21, 21, 10);
        let mut rng = StdRng::seed_from_u64(4);
        let round = prove_commit(&pk, &sk, &mut rng);
        let resp = respond(&round, 1);
        assert!(!verify(&pk, round.commitment ^ 1, 1, &resp));
    }
}
