//! The `MoveIncrEvalKernel` of the paper's Figs. 7/9/10: one GPU thread
//! per neighbor — compute the thread's move from its id (the §III
//! mappings), evaluate the neighbor incrementally against the base
//! state, store the fitness in `new_fitness[move_index]`.
//!
//! Data placement mirrors the paper's GTX 280 configuration:
//!
//! * ε-matrix columns: **texture** memory (the "GPUTexture" series of
//!   Fig. 8) or plain global memory (ablation A3);
//! * target histogram `H`: texture (read-only, shared by all threads);
//! * base product vector `Y`, candidate histogram `H'`, solution bits:
//!   global memory, re-uploaded by the host every iteration (the kernels
//!   take `const int* V` fresh each launch, exactly like the listings);
//! * per-thread delta histogram: **local** memory (physically DRAM on
//!   GT200 — a real cost the timing model charges).

use lnls_gpu_sim::{DeviceBuffer, Kernel, ThreadCtx};
use lnls_neighborhood::combinadic::unrank_combinadic;
use lnls_neighborhood::mapping2d::unrank2;
use lnls_neighborhood::mapping3d::unrank3;

/// Neighbor-evaluation kernel for the `k`-Hamming neighborhood.
/// `k ∈ {1, 2, 3}` are the paper's kernels (Figs. 7/9/10); `k = 4` is the
/// "larger neighborhoods" extension of §V, unranked with the combinadic
/// generalization.
pub struct PppEvalKernel {
    /// Hamming distance of the neighborhood (1..=4).
    pub k: u8,
    /// Solution length.
    pub n: u32,
    /// Rows of the ε-matrix.
    pub m: u32,
    /// Number of moves this launch evaluates (the full neighborhood for
    /// single-device runs; one partition for multi-GPU, paper §V).
    pub msize: u64,
    /// First global move index of this launch's partition (0 for
    /// single-device runs). Thread `t` evaluates move `base_index + t`
    /// and stores to `out[t]`.
    pub base_index: u64,
    /// u32 words per packed matrix column.
    pub wpc32: u32,
    /// Column-packed ε-matrix bits (`n × wpc32` words), texture or global.
    pub a_cols: DeviceBuffer<u32>,
    /// Packed current solution (`⌈n/32⌉` words).
    pub vbits: DeviceBuffer<u32>,
    /// Base product vector `Y` (`m` words).
    pub y: DeviceBuffer<i32>,
    /// Target histogram `H` (`n+1` words), texture.
    pub hist_target: DeviceBuffer<i32>,
    /// Candidate histogram `H'` of the base solution (`n+1` words).
    pub hist_cur: DeviceBuffer<i32>,
    /// Output fitness per move index (`msize` words).
    pub out: DeviceBuffer<i32>,
    /// Base negativity cost `Σ(|Y_j| − Y_j)` of the current solution.
    pub neg_base: i64,
    /// Base histogram cost `Σ|H_i − H'_i|` of the current solution.
    pub hist_base: i64,
}

impl PppEvalKernel {
    /// Decode this thread's move (paper §III.B). Costs are charged to the
    /// context: the 2-Hamming unranking uses one square root (SFU), the
    /// 3-Hamming one adds the cube-root plan search of Algorithm 1.
    #[inline]
    pub(crate) fn unrank<C: ThreadCtx>(&self, ctx: &mut C, index: u64) -> ([u32; 4], usize) {
        match self.k {
            1 => {
                ctx.alu(1);
                ([index as u32, 0, 0, 0], 1)
            }
            2 => {
                ctx.sfu(1); // sqrtf
                ctx.alu(10); // index arithmetic of Fig. 9
                let (i, j) = unrank2(self.n as u64, index);
                ([i as u32, j as u32, 0, 0], 2)
            }
            3 => {
                ctx.sfu(2); // cbrt seed + Newton step (Fig. 10 newtonGPU)
                ctx.alu(30); // plan arithmetic of App. C
                let (a, b, c) = unrank3(self.n as u64, index);
                ([a as u32, b as u32, c as u32, 0], 3)
            }
            4 => {
                ctx.alu(60); // combinadic coordinate walk
                let mut out = [0u32; 4];
                unrank_combinadic(self.n as u64, index, &mut out);
                (out, 4)
            }
            _ => unreachable!("k must be 1..=4"),
        }
    }
}

impl Kernel for PppEvalKernel {
    fn name(&self) -> &'static str {
        match self.k {
            1 => "ppp_eval_1h",
            2 => "ppp_eval_2h",
            3 => "ppp_eval_3h",
            _ => "ppp_eval_4h",
        }
    }

    fn profile_key(&self) -> u64 {
        ((self.k as u64) << 48) ^ ((self.n as u64) << 24) ^ self.m as u64
    }

    fn run<C: ThreadCtx>(&self, ctx: &mut C, _phase: u32) {
        let tid = ctx.id().global();
        if !ctx.branch(tid < self.msize) {
            return;
        }
        let (cols, k) = self.unrank(ctx, self.base_index + tid);

        let n = self.n as usize;
        let m = self.m as usize;

        // Per-thread delta histogram in local memory, zeroed explicitly.
        let bins = ctx.local_alloc(n + 1);
        for b in 0..=n {
            ctx.local_st(bins + b, 0);
        }

        // Solution bits of the flipped columns.
        let mut vmask = [0u32; 4];
        for t in 0..k {
            let c = cols[t] as usize;
            let w = ctx.ld(&self.vbits, c / 32);
            ctx.alu(3);
            vmask[t] = if (w >> (c % 32)) & 1 == 1 { u32::MAX } else { 0 };
        }

        // Row sweep: 32 rows per packed column word.
        let base = -2 * k as i32;
        let mut neg_d = 0i64;
        let wpc = self.wpc32 as usize;
        for w in 0..wpc {
            let mut xw = [0u32; 4];
            for t in 0..k {
                let aw = ctx.ld(&self.a_cols, cols[t] as usize * wpc + w);
                ctx.alu(2);
                xw[t] = aw ^ vmask[t];
            }
            let lo = w * 32;
            let hi = m.min(lo + 32);
            for j in lo..hi {
                let r = (j - lo) as u32;
                let mut set = 0i32;
                for x in xw.iter().take(k) {
                    set += ((x >> r) & 1) as i32;
                }
                let dy = 4 * set + base;
                ctx.alu(3 + k as u32);
                if !ctx.branch(dy != 0) {
                    continue;
                }
                let old = ctx.ld(&self.y, j);
                let new = old + dy;
                // |y|−y terms.
                ctx.alu(4);
                if old < 0 {
                    neg_d -= (-2 * old) as i64;
                }
                if new < 0 {
                    neg_d += (-2 * new) as i64;
                }
                // Delta histogram (non-negative bins only).
                if ctx.branch(old >= 0) {
                    let d = ctx.local_ld(bins + old as usize);
                    ctx.local_st(bins + old as usize, d - 1);
                }
                if ctx.branch(new >= 0) {
                    let d = ctx.local_ld(bins + new as usize);
                    ctx.local_st(bins + new as usize, d + 1);
                }
            }
        }

        // Histogram-cost delta: scan the bins once.
        let mut hist_d = 0i64;
        for b in 0..=n {
            let d = ctx.local_ld(bins + b);
            if !ctx.branch(d != 0) {
                continue;
            }
            let h = ctx.ld(&self.hist_target, b) as i64;
            let hp = ctx.ld(&self.hist_cur, b) as i64;
            ctx.alu(6);
            hist_d += (h - (hp + d as i64)).abs() - (h - hp).abs();
        }

        let fitness = 30 * (self.neg_base + neg_d) + (self.hist_base + hist_d);
        ctx.alu(3);
        ctx.st(&self.out, tid as usize, fitness as i32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PppInstance;
    use crate::state::Ppp;
    use lnls_core::{BinaryProblem, BitString, IncrementalEval};
    use lnls_gpu_sim::{Device, DeviceSpec, ExecMode, LaunchConfig, MemSpace};
    use lnls_neighborhood::{KHamming, Neighborhood};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn launch_and_check(m: usize, n: usize, k: usize, texture: bool) {
        let inst = PppInstance::generate(m, n, 99);
        let p = Ppp::new(inst);
        let mut rng = StdRng::seed_from_u64(5);
        let s = BitString::random(&mut rng, n);
        let state = p.init_state(&s);
        let hood = KHamming::new(n, k);
        let msize = hood.size();

        let mut dev = Device::new(DeviceSpec::gtx280());
        let space = if texture { MemSpace::Texture } else { MemSpace::Global };
        let wpc64 = p.inst.a.words_per_col();
        let a_cols = dev.upload_new(&p.inst.a.cols_as_u32(), space, "a_cols");
        let vbits: Vec<u32> =
            s.words().iter().flat_map(|&w| [w as u32, (w >> 32) as u32]).collect();
        let vbits = dev.upload_new(&vbits, MemSpace::Global, "vbits");
        let y = dev.upload_new(&state.y, MemSpace::Global, "y");
        let hist_target = dev.upload_new(&p.inst.target_hist, MemSpace::Texture, "hist_t");
        let hist_cur = dev.upload_new(&state.hist, MemSpace::Global, "hist_c");
        let out = dev.alloc_zeroed::<i32>(msize as usize, MemSpace::Global, "fitness");

        let kernel = PppEvalKernel {
            k: k as u8,
            n: n as u32,
            m: m as u32,
            msize,
            base_index: 0,
            wpc32: (wpc64 * 2) as u32,
            a_cols,
            vbits,
            y,
            hist_target,
            hist_cur,
            out: out.clone(),
            neg_base: state.neg_cost,
            hist_base: state.hist_cost,
        };
        let report = dev.launch(&kernel, LaunchConfig::cover_1d(msize, 128), ExecMode::Trace);
        assert!(report.races.is_empty(), "kernel must be race-free: {:?}", report.races);

        let got = dev.download(&out);
        for (idx, mv) in hood.moves() {
            let mut s2 = s.clone();
            s2.apply(&mv);
            let expect = p.evaluate(&s2);
            assert_eq!(got[idx as usize] as i64, expect, "k={k} idx={idx} {mv}");
        }
    }

    #[test]
    fn kernel_matches_full_eval_k1() {
        launch_and_check(21, 21, 1, true);
        launch_and_check(33, 21, 1, false);
    }

    #[test]
    fn kernel_matches_full_eval_k2() {
        launch_and_check(21, 21, 2, true);
    }

    #[test]
    fn kernel_matches_full_eval_k3() {
        launch_and_check(17, 15, 3, true);
    }

    #[test]
    fn kernel_matches_full_eval_k4_extension() {
        launch_and_check(15, 13, 4, true);
    }

    #[test]
    fn kernel_spans_word_boundaries() {
        // m > 64 exercises multi-word columns; n > 32 exercises vbits
        // beyond the first word.
        launch_and_check(70, 37, 2, true);
    }

    #[test]
    fn partitioned_launches_cover_the_neighborhood() {
        // Two launches with base_index splitting the move range must
        // reproduce the single-launch fitness array (multi-GPU, §V).
        let (m, n, k) = (21, 17, 2);
        let inst = PppInstance::generate(m, n, 123);
        let p = Ppp::new(inst);
        let mut rng = StdRng::seed_from_u64(9);
        let s = BitString::random(&mut rng, n);
        let state = p.init_state(&s);
        let hood = KHamming::new(n, k);
        let msize = hood.size();
        let split = msize / 2;

        let mut dev = Device::new(DeviceSpec::gtx280());
        let a_cols = dev.upload_new(&p.inst.a.cols_as_u32(), MemSpace::Texture, "a_cols");
        let vbits: Vec<u32> =
            s.words().iter().flat_map(|&w| [w as u32, (w >> 32) as u32]).collect();
        let vbits = dev.upload_new(&vbits, MemSpace::Global, "vbits");
        let y = dev.upload_new(&state.y, MemSpace::Global, "y");
        let hist_target = dev.upload_new(&p.inst.target_hist, MemSpace::Texture, "hist_t");
        let hist_cur = dev.upload_new(&state.hist, MemSpace::Global, "hist_c");
        let wpc32 = (p.inst.a.words_per_col() * 2) as u32;

        let mut combined = Vec::new();
        for (base, count) in [(0, split), (split, msize - split)] {
            let out = dev.alloc_zeroed::<i32>(count as usize, MemSpace::Global, "part");
            let kernel = PppEvalKernel {
                k: k as u8,
                n: n as u32,
                m: m as u32,
                msize: count,
                base_index: base,
                wpc32,
                a_cols: a_cols.clone(),
                vbits: vbits.clone(),
                y: y.clone(),
                hist_target: hist_target.clone(),
                hist_cur: hist_cur.clone(),
                out: out.clone(),
                neg_base: state.neg_cost,
                hist_base: state.hist_cost,
            };
            dev.launch(&kernel, LaunchConfig::cover_1d(count, 64), ExecMode::Auto);
            combined.extend(dev.download(&out));
        }
        for (idx, mv) in hood.moves() {
            let mut s2 = s.clone();
            s2.apply(&mv);
            assert_eq!(combined[idx as usize] as i64, p.evaluate(&s2), "idx={idx}");
        }
    }

    #[test]
    fn texture_and_global_variants_agree_functionally() {
        // Placement changes timing, never values — checked by running
        // both through launch_and_check (assertions inside).
        launch_and_check(21, 15, 2, true);
        launch_and_check(21, 15, 2, false);
    }
}
