//! The Knudsen–Meier objective (paper §IV.A):
//!
//! ```text
//! f(V') = 30 · Σ_{j=1..m} (|Y'_j| − Y'_j)  +  Σ_{i} |H_i − H'_i|
//! ```
//!
//! with `Y' = A·V'`, `H` the histogram of the target multiset `S` and
//! `H'` the histogram of `Y'`. `f = 0` ⇔ `V'` solves the PPP.
//!
//! Interpretation notes (DESIGN.md §6): the paper sums the histogram term
//! over `i = 1..n`; negative candidate values have no bin there, so they
//! are penalized only by the first term. We histogram values in `0..=n`
//! (bin 0 is unreachable for odd `n`) and leave negative values binless,
//! which matches that reading exactly.

use crate::instance::PppInstance;
use lnls_core::BitString;

/// Weight of the negativity term (the paper's constant 30).
pub const NEG_WEIGHT: i64 = 30;

/// Full (from scratch) objective evaluation.
pub fn full_fitness(inst: &PppInstance, v: &BitString) -> i64 {
    let n = inst.n();
    let mut hist = vec![0i32; n + 1];
    let mut neg = 0i64;
    for j in 0..inst.m() {
        let y = inst.a.row_product(j, v);
        if y < 0 {
            neg += (-2 * y) as i64; // |y| − y = −2y for y < 0
        } else {
            hist[y as usize] += 1;
        }
    }
    let hist_cost: i64 =
        inst.target_hist.iter().zip(&hist).map(|(&h, &hp)| (h - hp).abs() as i64).sum();
    NEG_WEIGHT * neg + hist_cost
}

/// Decompose the objective into its two terms (used by the incremental
/// state and its tests).
pub fn fitness_parts(inst: &PppInstance, v: &BitString) -> (i64, i64) {
    let n = inst.n();
    let mut hist = vec![0i32; n + 1];
    let mut neg = 0i64;
    for j in 0..inst.m() {
        let y = inst.a.row_product(j, v);
        if y < 0 {
            neg += (-2 * y) as i64;
        } else {
            hist[y as usize] += 1;
        }
    }
    let hist_cost: i64 =
        inst.target_hist.iter().zip(&hist).map(|(&h, &hp)| (h - hp).abs() as i64).sum();
    (neg, hist_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secret_scores_zero() {
        let inst = PppInstance::generate(73, 73, 1);
        let secret = inst.secret.clone().unwrap();
        assert_eq!(full_fitness(&inst, &secret), 0);
    }

    #[test]
    fn zero_fitness_iff_solution() {
        let inst = PppInstance::generate(25, 25, 3);
        let secret = inst.secret.clone().unwrap();
        let mut v = secret.clone();
        assert_eq!(full_fitness(&inst, &v) == 0, inst.is_solution(&v));
        v.flip(7);
        assert_eq!(full_fitness(&inst, &v) == 0, inst.is_solution(&v));
        assert!(full_fitness(&inst, &v) > 0);
    }

    #[test]
    fn negativity_weight_is_thirty() {
        // Hand-built 1×1 instance: A = [+1], secret +1 ⇒ S = {1},
        // candidate −1 ⇒ Y' = −1: neg term = 2, hist misses bin 1 and
        // adds nothing (negative binless) ⇒ f = 30·2 + 1 = 61.
        let inst = PppInstance {
            a: crate::matrix::EpsilonMatrix::plus_ones(1, 1),
            target_hist: vec![0, 1],
            secret: None,
        };
        let mut v = BitString::zeros(1);
        assert_eq!(full_fitness(&inst, &v), 0);
        v.flip(0);
        assert_eq!(full_fitness(&inst, &v), 61);
    }

    #[test]
    fn parts_sum_to_fitness() {
        let inst = PppInstance::generate(31, 47, 9);
        let mut v = inst.secret.clone().unwrap();
        v.flip(3);
        v.flip(11);
        let (neg, hist) = fitness_parts(&inst, &v);
        assert_eq!(full_fitness(&inst, &v), NEG_WEIGHT * neg + hist);
    }

    #[test]
    fn fitness_is_symmetric_under_global_negation_of_secret() {
        // PPP instances generated with all-nonnegative S: negating V
        // negates every Y, so the negated secret is maximally penalized —
        // a sanity check that sign conventions are consistent.
        let inst = PppInstance::generate(21, 21, 4);
        let secret = inst.secret.clone().unwrap();
        let mut neg_secret = secret.clone();
        for i in 0..21 {
            neg_secret.flip(i);
        }
        let f = full_fitness(&inst, &neg_secret);
        // Every row flips to negative: neg = Σ 2·Y_j ≥ 2·m (odd products).
        assert!(f >= NEG_WEIGHT * 2 * 21, "f = {f}");
    }
}
