//! # lnls-ppp — the Permuted Perceptron Problem
//!
//! The application of Luong, Melab & Talbi (LSPP @ IPDPS 2010, §IV): an
//! NP-complete problem underlying Pointcheval's identification scheme.
//! Given an ε-matrix `A` (entries ±1, shape m×n) and a multiset `S` of
//! non-negative integers, find an ε-vector `V` with `{{(AV)_j}} = S`.
//!
//! This crate supplies everything the paper's experiments need:
//!
//! * [`PppInstance`] — Pointcheval-construction instances (the paper's
//!   73×73 … 101×117 plus the Fig. 8 ladder), text persistence;
//! * [`Ppp`] — the problem wrapped for `lnls-core` with the
//!   Knudsen–Meier objective ([`objective`]) and `O(m·k + n)` incremental
//!   evaluation ([`PppState`]);
//! * [`PppEvalKernel`] — the `MoveIncrEvalKernel` of Figs. 7/9/10 for the
//!   simulated GPU, with texture- or global-memory ε-matrix;
//! * [`PppGpuExplorer`] — the device-side exploration backend pluggable
//!   into [`lnls_core::TabuSearch`];
//! * [`crypto`] — a schematic identification protocol for the attack
//!   example.
//!
//! ```
//! use lnls_core::prelude::*;
//! use lnls_neighborhood::{Neighborhood, TwoHamming};
//! use lnls_ppp::{Ppp, PppInstance};
//!
//! let inst = PppInstance::generate(25, 25, 42);
//! let problem = Ppp::new(inst);
//! let hood = TwoHamming::new(25);
//! let mut explorer = SequentialExplorer::new(hood);
//! let search = TabuSearch::paper(SearchConfig::budget(200).with_seed(1), hood.size());
//! let init = BitString::zeros(25);
//! let result = search.run(&problem, &mut explorer, init);
//! assert!(result.best_fitness >= 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attack;
pub mod crypto;
pub mod gpu;
pub mod instance;
pub mod kernels;
pub mod kernels_shared;
pub mod matrix;
pub mod objective;
pub mod state;

pub use attack::{AttackOutcome, ConsensusAttack};
pub use gpu::{GpuExplorerConfig, PppGpuExplorer};
pub use instance::PppInstance;
pub use kernels::PppEvalKernel;
pub use kernels_shared::PppEvalKernelShared;
pub use matrix::EpsilonMatrix;
pub use state::{Ppp, PppState};
