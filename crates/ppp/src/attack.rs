//! Cryptanalytic search heuristics on top of the plain tabu attack —
//! the paper's closing perspective: "the quality of the solutions would
//! be drastically enhanced by (1) increasing the number of running
//! iterations and (2) introducing appropriate cryptanalysis heuristics."
//!
//! The heuristic implemented here is the majority-vote (consensus)
//! restart of Knudsen & Meier's PPP cryptanalysis: independent searches
//! land in different local optima, but on solvable instances the optima
//! agree on many coordinates of the planted secret; restarting from the
//! bitwise majority of the best optima concentrates later searches in
//! the right subspace.

use crate::state::Ppp;
use lnls_core::{BinaryProblem, BitString, SearchConfig, SequentialExplorer, TabuSearch};
use lnls_neighborhood::{KHamming, Neighborhood};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the consensus attack.
#[derive(Clone, Debug)]
pub struct ConsensusAttack {
    /// Searches per voting round.
    pub searches_per_round: usize,
    /// Tabu iterations per search.
    pub budget_per_search: u64,
    /// Voting rounds before giving up.
    pub rounds: usize,
    /// Hamming radius of the tabu neighborhood (the paper's best is 3,
    /// the default here 2 to keep rounds cheap).
    pub k: usize,
    /// Best solutions (per round) that get a vote.
    pub voters: usize,
    /// Bits flipped when perturbing the consensus into starting points.
    pub perturbation: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ConsensusAttack {
    fn default() -> Self {
        Self {
            searches_per_round: 6,
            budget_per_search: 400,
            rounds: 5,
            k: 2,
            voters: 3,
            perturbation: 4,
            seed: 0xC0DE,
        }
    }
}

/// Result of a consensus attack.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// A solving vector, if one was found.
    pub solution: Option<BitString>,
    /// Best fitness reached overall.
    pub best_fitness: i64,
    /// Voting rounds executed.
    pub rounds_used: usize,
    /// Total tabu iterations spent.
    pub total_iterations: u64,
}

impl ConsensusAttack {
    /// Run the attack against `problem`.
    pub fn run(&self, problem: &Ppp) -> AttackOutcome {
        let n = problem.dim();
        let hood = KHamming::new(n, self.k);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut consensus = BitString::random(&mut rng, n);
        let mut best_overall: Option<(i64, BitString)> = None;
        let mut total_iterations = 0u64;

        for round in 0..self.rounds {
            // Independent searches from perturbed consensus starts.
            let mut finishers: Vec<(i64, BitString)> = Vec::new();
            for s in 0..self.searches_per_round {
                let seed = self.seed.wrapping_add((round as u64) << 32).wrapping_add(s as u64 + 1);
                let mut srng = StdRng::seed_from_u64(seed);
                let mut init = consensus.clone();
                // Round 0 starts cold: fully random initial points vote
                // without bias; later rounds perturb the consensus.
                if round == 0 {
                    init = BitString::random(&mut srng, n);
                } else {
                    for _ in 0..self.perturbation {
                        init.flip(srng.gen_range(0..n));
                    }
                }
                let search = TabuSearch::paper(
                    SearchConfig::budget(self.budget_per_search).with_seed(seed),
                    hood.size(),
                );
                let mut explorer = SequentialExplorer::new(hood);
                let r = search.run(problem, &mut explorer, init);
                total_iterations += r.iterations;
                if r.success {
                    return AttackOutcome {
                        solution: Some(r.best.clone()),
                        best_fitness: 0,
                        rounds_used: round + 1,
                        total_iterations,
                    };
                }
                finishers.push((r.best_fitness, r.best));
            }

            finishers.sort_by_key(|(f, _)| *f);
            if best_overall.as_ref().is_none_or(|(bf, _)| finishers[0].0 < *bf) {
                best_overall = Some(finishers[0].clone());
            }

            // Bitwise majority over the `voters` best finishers.
            let voters = &finishers[..self.voters.min(finishers.len())];
            let mut next = BitString::zeros(n);
            for i in 0..n {
                let ones: usize = voters.iter().filter(|(_, v)| v.get(i)).count();
                if 2 * ones > voters.len() {
                    next.set(i, true);
                } else if 2 * ones == voters.len() && rng.gen::<bool>() {
                    next.set(i, true); // break ties randomly
                }
            }
            consensus = next;
        }

        let (best_fitness, best) = best_overall.expect("at least one round ran");
        AttackOutcome {
            solution: None,
            best_fitness,
            rounds_used: self.rounds,
            total_iterations: {
                let _ = best;
                total_iterations
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PppInstance;

    #[test]
    fn cracks_a_small_instance() {
        let inst = PppInstance::generate(23, 23, 5);
        let p = Ppp::new(inst);
        let attack = ConsensusAttack { seed: 9, ..Default::default() };
        let out = attack.run(&p);
        assert!(out.solution.is_some(), "fitness reached {}", out.best_fitness);
        let v = out.solution.unwrap();
        assert!(p.inst.is_solution(&v));
        assert!(out.total_iterations > 0);
    }

    #[test]
    fn reports_best_fitness_when_failing() {
        // A starved budget cannot solve; the outcome must still carry
        // meaningful statistics.
        let inst = PppInstance::generate(31, 31, 6);
        let p = Ppp::new(inst);
        let attack = ConsensusAttack {
            searches_per_round: 2,
            budget_per_search: 3,
            rounds: 2,
            ..Default::default()
        };
        let out = attack.run(&p);
        if out.solution.is_none() {
            assert!(out.best_fitness > 0);
            assert_eq!(out.rounds_used, 2);
            assert_eq!(out.total_iterations, 2 * 2 * 3);
        }
    }

    #[test]
    fn consensus_beats_single_shot_at_equal_budget() {
        // Statistical claim on a fixed seed set: the attack with voting
        // reaches a fitness at least as good as one long tabu run of the
        // same total iteration count.
        let inst = PppInstance::generate(27, 27, 77);
        let p = Ppp::new(inst);
        let attack = ConsensusAttack {
            searches_per_round: 4,
            budget_per_search: 250,
            rounds: 3,
            seed: 3,
            ..Default::default()
        };
        let out = attack.run(&p);
        let attack_best = out.best_fitness;

        let hood = KHamming::new(27, 2);
        let search = TabuSearch::paper(SearchConfig::budget(3_000).with_seed(3), hood.size());
        let mut ex = SequentialExplorer::new(hood);
        let mut rng = StdRng::seed_from_u64(3);
        let init = BitString::random(&mut rng, 27);
        let single = search.run(&p, &mut ex, init);

        assert!(
            attack_best <= single.best_fitness,
            "consensus {attack_best} vs single-shot {}",
            single.best_fitness
        );
    }
}
